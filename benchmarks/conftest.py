"""Shared benchmark fixtures.

Scale control: set ``REPRO_BENCH_SCALE`` (fraction of the paper's 1M-record
dataset, default 0.003) and ``REPRO_BENCH_PAGE_BYTES`` (default 512; the
paper used 4096) to trade fidelity for runtime.  Each experiment writes its
rendered table to ``benchmarks/results/`` for inclusion in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import BenchSettings

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.003"))


@pytest.fixture(scope="session")
def settings() -> BenchSettings:
    return BenchSettings(
        page_bytes=int(os.environ.get("REPRO_BENCH_PAGE_BYTES", "512")),
    )


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture()
def record_table():
    """Write a rendered experiment table under benchmarks/results/."""
    def _record(name: str, table) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(table.render())
        print()
        print(table.render())
    return _record
