"""A2 — aggregation-in-a-page (section 4.2.1) on/off.

Expected shape: physical mode splits every fully-covered record per
insertion (Theta(b) record creations), so it creates far more records and
far more pages than logical mode, at identical query answers (the
equivalence itself is asserted by the test suite; here we check cost).
"""

from repro.bench.experiments import ablation_logical_split


def test_logical_split_saves_records_and_space(benchmark, settings, scale,
                                               record_table):
    table = benchmark.pedantic(
        lambda: ablation_logical_split(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("ablation_logical_split", table)

    rows = {row["mode"]: row for row in table.rows}
    logical, physical = rows["logical"], rows["physical"]

    assert logical["records_created"] < physical["records_created"] / 3
    assert logical["pages"] < physical["pages"]
    assert logical["update_ios_per_op"] <= physical["update_ios_per_op"]
