"""Process-per-shard versus in-process threads: the multi-core bench.

The thread backend (:class:`~repro.serve.sharded.ShardedWarehouse`)
executes every shard's aggregate walks under one GIL, so four driver
threads share roughly one core of index computation.  The process
backend (:class:`~repro.serve.procpool.ProcessShardedWarehouse`) gives
each shard its own worker process; the same four driver threads then
block in RPC waits while four workers compute concurrently.

Two checks:

* **Byte-identical answers** — both backends share
  :class:`~repro.serve.sharded.ShardRouter`'s gather arithmetic, and this
  bench proves it end to end: the same fixed-seed workload (bulk-loaded
  through each backend's own LOAD path) must produce identical
  ``repr``\\ s for every aggregate over every rectangle.  Enforced
  everywhere, always.
* **>= 2x read QPS** at 4 shards / 4 driver threads on the read-hot mix
  with caches **off** (a result cache answers in the parent and would
  measure cache hits, not execution).  On hosts with fewer than four
  cores the speedup is physically impossible — the bench then **fails
  loudly** (nonzero exit) instead of silently self-disabling, unless the
  operator acknowledges a report-only run with ``REPRO_MULTICORE_GATE=0``;
  ``=1`` forces the gate regardless.  The resolved state lands in the
  envelope as ``"gate": "enforced"`` / ``"skipped/<reason>"``.

Writes ``benchmarks/results/BENCH_multicore.json`` in the consolidated
envelope (see :mod:`repro.bench.envelope`).
"""

from __future__ import annotations

import os
import random
import threading
import time
from pathlib import Path

from repro.bench.envelope import write_report
from repro.bench.reporting import Table
from repro.core.model import Interval, KeyRange
from repro.serve.procpool import ProcessShardedWarehouse
from repro.serve.sharded import ShardedWarehouse

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2026
SHARDS = 4
WORKERS = 4
HOT_RECTANGLES = 16
HOT_FRACTION = 0.9


def _duration() -> float:
    return float(os.environ.get("REPRO_MULTICORE_SECONDS", "2.0"))


def _gate_state() -> tuple[bool, str]:
    """(enforced, reason) for the >=2x speedup assertion.

    A machine with fewer than four cores cannot physically show the
    speedup, but silently self-disabling the gate hid that from CI — a
    2-core runner reported green with the headline number unchecked.  The
    bench now *fails* there unless the operator explicitly acknowledges
    report-only mode with ``REPRO_MULTICORE_GATE=0``; the skip and its
    reason are recorded in the envelope either way.
    """
    override = os.environ.get("REPRO_MULTICORE_GATE")
    if override == "1":
        return True, "enforced/REPRO_MULTICORE_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_MULTICORE_GATE=0"
    cores = os.cpu_count() or 1
    if cores >= 4:
        return True, "enforced"
    raise AssertionError(
        f"bench_multicore needs >= 4 cores to enforce its >= 2x gate "
        f"(cpu_count={cores}); set REPRO_MULTICORE_GATE=0 to acknowledge "
        "a report-only run, or =1 to force the gate")


def _events(keys: int, seed: int):
    """A chronological fixed-seed event stream: inserts plus some churn."""
    rng = random.Random(seed)
    events = []
    t = 1
    for key in range(1, keys + 1):
        events.append(("insert", key, float(rng.randint(1, 100)), t))
        if rng.random() < 0.3:
            t += 1
    alive = list(range(1, keys + 1))
    rng.shuffle(alive)
    for key in alive[: keys // 10]:
        t += 1
        events.append(("delete", key, 0.0, t))
    return events, t


def _rectangles(keys: int, now: int, count: int, seed: int):
    """``(method, KeyRange, Interval)`` rectangles shared by both drives."""
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        method = rng.choice(("sum", "count", "avg", "min", "max"))
        lo = rng.randint(1, keys)
        hi = rng.randint(lo + 1, keys + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 1)
        rects.append((method, KeyRange(lo, hi), Interval(t0, t1)))
    return rects


def _answers(warehouse, rects):
    """Every rectangle's answer, repr-stringified for exact comparison."""
    return [repr(getattr(warehouse, method)(key_range, interval))
            for method, key_range, interval in rects]


def _drive_qps(warehouse, keys: int, now: int, duration: float,
               workers: int, seed: int) -> float:
    """Closed-loop read-hot drive: ``workers`` threads, completed/s."""
    hot = _rectangles(keys, now, HOT_RECTANGLES, seed)
    counts = [0] * workers
    start = time.perf_counter()
    deadline = start + duration

    def run(slot: int) -> None:
        rng = random.Random(seed + 1000 + slot)
        while time.perf_counter() < deadline:
            if rng.random() < HOT_FRACTION:
                method, key_range, interval = rng.choice(hot)
            else:
                method, key_range, interval = _rectangles(
                    keys, now, 1, rng.randrange(1 << 30))[0]
            getattr(warehouse, method)(key_range, interval)
            counts[slot] += 1

    pool = [threading.Thread(target=run, args=(slot,), daemon=True)
            for slot in range(workers)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed if elapsed > 0 else 0.0


def test_process_backend_speedup(scale, record_table):
    # Resolve the gate first: a host that can't enforce it fails loudly
    # here (nonzero exit) instead of burning the drive time and passing.
    enforced, gate = _gate_state()
    keys = max(200, int(50_000 * scale))
    duration = _duration()
    events, now = _events(keys, SEED)
    rects = _rectangles(keys, now, 60, SEED + 1)

    thread_backend = ShardedWarehouse(
        shards=SHARDS, key_space=(1, keys + 1), thread_safe=True)
    process_backend = ProcessShardedWarehouse(
        shards=SHARDS, key_space=(1, keys + 1))
    try:
        # Bulk load through each backend's own LOAD path — sequential per
        # shard on threads, concurrent worker fan-out on processes.
        thread_report = thread_backend.load_events(events)
        process_report = process_backend.load_events(events)
        assert thread_report.events == process_report.events == len(events)

        thread_answers = _answers(thread_backend, rects)
        process_answers = _answers(process_backend, rects)
        assert thread_answers == process_answers, (
            "scatter-gather answers differ between backends")

        thread_qps = _drive_qps(thread_backend, keys, now, duration,
                                WORKERS, SEED + 2)
        process_qps = _drive_qps(process_backend, keys, now, duration,
                                 WORKERS, SEED + 2)
    finally:
        process_backend.close()

    speedup = process_qps / max(thread_qps, 1e-9)

    table = Table(
        title=(f"Process vs thread backend, {SHARDS} shards / {WORKERS} "
               f"drivers, {keys} keys, read-hot, cache off "
               f"({duration:.1f}s per side)"),
        columns=("backend", "qps", "speedup"),
    )
    table.add(backend="thread", qps=round(thread_qps), speedup=1.0)
    table.add(backend="process", qps=round(process_qps),
              speedup=round(speedup, 2))
    table.note(f"cpu_count={os.cpu_count()}; the >=2x gate is "
               f"{'enforced' if enforced else 'reported only'} here — "
               "process-per-shard cannot beat the GIL without cores")
    record_table("multicore", table)

    write_report(
        RESULTS_DIR / "BENCH_multicore.json", "multicore",
        {"shards": SHARDS, "workers": WORKERS, "keys": keys,
         "events": len(events), "duration_s": duration,
         "mix": "read-hot", "cache": False,
         "cpu_count": os.cpu_count() or 1, "gate": gate},
        {"thread_qps": thread_qps, "process_qps": process_qps,
         "speedup": speedup, "byte_identical": True,
         "gate_enforced": enforced},
        {"gate": gate,
         "thread": {"qps": thread_qps, "load": vars(thread_report)},
         "process": {"qps": process_qps, "load": vars(process_report)},
         "rectangles": len(rects)})

    if enforced:
        assert speedup >= 2.0, (
            f"process backend only {speedup:.2f}x over threads at "
            f"{SHARDS} shards / {WORKERS} drivers")


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
