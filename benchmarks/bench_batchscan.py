"""The vectorized batch-read path: one MVSBT sweep per scan batch.

Three drives over the PR-10 read path:

* **Twin byte-identity** — every drive first proves the batch kernel is
  invisible: ``aggregate_batch`` answers over a mixed five-aggregate
  workload (MIN/MAX and selective mvbt-scan rectangles included) must
  equal the serial ``aggregate`` loop ``repr``-for-``repr`` — enforced
  everywhere, always.
* **Kernel QPS A/B** — a read-hot overlapping mix (zipf-skewed repeats
  over a small working set of full-keyspace windows, the co-arrival
  pattern of a dashboard fleet) is answered twice on a cache-off MVCC
  warehouse: serially, and in scan batches of ``BATCH``.  The batch pass
  dedups identical queries and probes, fetches every page once per
  batch, and validates the shard epoch once per batch; the **>= 2x**
  QPS gate needs four cores — below that the bench fails loudly unless
  ``REPRO_BATCHSCAN_GATE=0`` acknowledges a report-only run (``=1``
  forces the gate), the ``bench_mvcc`` pattern.
* **Epoch accounting** — always enforced: the batch pass records exactly
  one epoch validation per batch and zero MVCC fallbacks
  (write-quiet), the honesty counters behind "one seqlock hop for N
  queries".
* **Server shared-scan twin** — two thread-backend servers answer the
  same fixed-seed statement stream from concurrent clients, one with
  ``scan_batch=BATCH`` (reads drain through the shared-scan queue into
  vectorized sweeps), the control with ``scan_batch=1`` (the serial
  path).  Byte-identity is enforced; the QPS ratio and the
  ``repro_batchscan_*`` gauges are recorded.

Writes ``benchmarks/results/BENCH_batchscan.json`` in the consolidated
envelope (see :mod:`repro.bench.envelope`).
"""

from __future__ import annotations

import os
import random
import threading
import time
from pathlib import Path

from repro.bench.envelope import write_report
from repro.bench.reporting import Table
from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.sharded import ShardedWarehouse

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2101
SHARDS = 4
#: Scan-batch size for both the kernel and the server drives; the
#: acceptance gate requires >= 16, and 32 amortizes the per-batch
#: plan/sweep setup further.
BATCH = 32
#: Distinct rectangles in the read-hot working set — small on purpose,
#: so co-batched queries overlap and the per-batch probe and query
#: dedup have something to collapse.
HOT_RECTANGLES = 12
AGGREGATES = (SUM, COUNT, AVG, MIN, MAX)


def _gate_state() -> tuple[bool, str]:
    """(enforced, reason) for the >= 2x batch-QPS gate.

    Same contract as ``bench_mvcc``: fewer than four cores cannot show
    the speedup, and silently self-disabling would let CI report green
    with the headline unchecked — so the bench *fails* there unless
    ``REPRO_BATCHSCAN_GATE=0`` acknowledges a report-only run; ``=1``
    forces the gate regardless.
    """
    override = os.environ.get("REPRO_BATCHSCAN_GATE")
    if override == "1":
        return True, "enforced/REPRO_BATCHSCAN_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_BATCHSCAN_GATE=0"
    cores = os.cpu_count() or 1
    if cores >= 4:
        return True, "enforced"
    raise AssertionError(
        f"bench_batchscan needs >= 4 cores to enforce its >= 2x gate "
        f"(cpu_count={cores}); set REPRO_BATCHSCAN_GATE=0 to acknowledge "
        "a report-only run, or =1 to force the gate")


def _seed_warehouse(keys: int) -> tuple[ShardedWarehouse, int]:
    warehouse = ShardedWarehouse(
        shards=SHARDS, key_space=(1, keys + 1), thread_safe=True,
        mvcc=True)
    rng = random.Random(SEED)
    t = 1
    for key in range(1, keys + 1):
        warehouse.insert(key, float(rng.randint(1, 100)), t)
        # Dense version chains: ~keys/20 distinct versions keeps every
        # full-keyspace window's tuple count high enough that the
        # planner sends the additive aggregates to the MVSBT sweep.
        if rng.random() < 0.05:
            t += 1
    return warehouse, t


def _hot_queries(keys: int, now: int, count: int):
    """The read-hot overlapping mix behind the QPS gate: ``count``
    additive-aggregate queries drawn zipf-style (weight ``1/rank``) from
    a :data:`HOT_RECTANGLES`-sized working set of full-keyspace time
    windows — the co-arrival shape of a dashboard fleet refreshing the
    same handful of panels."""
    rng = random.Random(SEED + 1)
    working_set = []
    for _ in range(HOT_RECTANGLES):
        t0 = rng.randint(1, now - 1)
        t1 = rng.randint(t0 + 1, now + 1)
        working_set.append((KeyRange(1, keys + 1), Interval(t0, t1)))
    weights = [1.0 / (rank + 1) for rank in range(HOT_RECTANGLES)]
    additive = (SUM, COUNT, AVG)
    return [rng.choices(working_set, weights)[0] + (rng.choice(additive),)
            for _ in range(count)]


def _mixed_queries(keys: int, now: int, count: int):
    """A five-aggregate mix over partial rectangles for the byte-identity
    twin — MIN/MAX and selective ranges exercise the mvbt-scan slots the
    batch path must answer identically alongside the sweep."""
    rng = random.Random(SEED + 3)
    working_set = []
    for _ in range(HOT_RECTANGLES):
        lo = rng.randint(1, max(keys // 2, 1))
        hi = rng.randint(lo + keys // 4 + 1, keys + 1)
        t0 = rng.randint(1, max(now // 2, 1))
        t1 = rng.randint(t0 + 1, now + 1)
        working_set.append((KeyRange(lo, hi), Interval(t0, t1)))
    return [
        (working_set[rng.randrange(HOT_RECTANGLES)]
         + (AGGREGATES[rng.randrange(len(AGGREGATES))],))
        for _ in range(count)
    ]


def _kernel_ab(warehouse: ShardedWarehouse, queries):
    """Serial vs batched answers + wall time over the same query list."""
    # Warm the buffer pool so both passes pay the same I/O.
    for key_range, interval, aggregate in queries[:BATCH]:
        warehouse.aggregate(key_range, interval, aggregate)

    started = time.perf_counter()
    serial = [repr(warehouse.aggregate(*q)) for q in queries]
    serial_s = time.perf_counter() - started

    before = warehouse.batch_snapshot()
    mvcc_before = warehouse.mvcc_stats.as_dict()
    started = time.perf_counter()
    batched = []
    for i in range(0, len(queries), BATCH):
        batched.extend(
            repr(x) for x in warehouse.aggregate_batch(queries[i:i + BATCH]))
    batch_s = time.perf_counter() - started
    after = warehouse.batch_snapshot()
    mvcc_after = warehouse.mvcc_stats.as_dict()

    assert batched == serial, (
        "batched answers diverge from the serial control")
    delta = {name: after.get(name, 0) - before.get(name, 0)
             for name in after}
    return {
        "serial_qps": len(queries) / max(serial_s, 1e-9),
        "batch_qps": len(queries) / max(batch_s, 1e-9),
        "speedup": serial_s / max(batch_s, 1e-9),
        "batch_stats": delta,
        "mvcc_fallbacks": (mvcc_after["fallbacks"]
                           - mvcc_before["fallbacks"]),
    }


def _seed_server(host: str, port: int, keys: int) -> int:
    rng = random.Random(SEED)
    events = []
    t = 1
    for key in range(1, keys + 1):
        events.append(("insert", key, float(rng.randint(1, 100)), t))
        if rng.random() < 0.3:
            t += 1
    with Client(host, port) as client:
        client.load(events)
    return t


def _hot_statements(keys: int, now: int, count: int):
    rng = random.Random(SEED + 2)
    working_set = []
    for _ in range(HOT_RECTANGLES):
        agg = rng.choice(("SUM(value)", "COUNT(*)", "AVG(value)",
                          "MIN(value)", "MAX(value)"))
        lo = rng.randint(1, max(keys // 2, 1))
        hi = rng.randint(lo + keys // 4 + 1, keys + 1)
        t0 = rng.randint(1, max(now // 2, 1))
        t1 = rng.randint(t0 + 1, now + 1)
        working_set.append(
            f"SELECT {agg} WHERE key IN [{lo}, {hi}) "
            f"AND TIME DURING [{t0}, {t1})")
    return [working_set[rng.randrange(HOT_RECTANGLES)]
            for _ in range(count)]


def _drive_reads(host: str, port: int, stmts, threads: int) -> float:
    """Closed-loop concurrent reads; returns QPS (errors re-raised)."""
    errors: list = []

    def run(mine) -> None:
        try:
            with Client(host, port) as client:
                client.repin()
                for tql in mine:
                    client.execute(tql)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(stmts[w::threads],),
                             daemon=True) for w in range(threads)]
    started = time.perf_counter()
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return len(stmts) / max(elapsed, 1e-9)


def _metric(registry, name: str) -> float:
    family = registry.get(name) or {}
    return float(sum(entry.get("value", 0.0)
                     for entry in family.get("series", [])))


def _server_twin(keys: int, threads: int = 8):
    """scan_batch=BATCH vs scan_batch=1 servers over one statement
    stream: byte-identity always, QPS ratio and batch gauges reported."""
    stmts = None
    results = {}
    for tag, scan_batch in (("batch", BATCH), ("serial", 1)):
        handle = serve_in_thread(ServerConfig(
            shards=SHARDS, key_space=(1, keys + 1), cache=False,
            scan_batch=scan_batch, readers=threads))
        try:
            now = _seed_server(handle.host, handle.port, keys)
            if stmts is None:
                stmts = _hot_statements(keys, now, 50 * threads)
            qps = _drive_reads(handle.host, handle.port, stmts, threads)
            with Client(handle.host, handle.port) as client:
                client.repin()
                answers = [repr(client.execute(tql))
                           for tql in stmts[:len(stmts) // threads]]
                registry = client.metrics()
            results[tag] = {"qps": qps, "answers": answers,
                            "registry": registry}
        finally:
            handle.stop()
    assert results["batch"]["answers"] == results["serial"]["answers"], (
        "batched server answers diverge from the serial control")
    registry = results["batch"]["registry"]
    batches = _metric(registry, "repro_batchscan_batches")
    groups = _metric(registry, "repro_batchscan_server_groups")
    assert batches > 0, "no batch sweeps formed on the scan_batch server"
    assert groups > 0, "no shared-scan groups drained by the server"
    return {
        "batch_qps": results["batch"]["qps"],
        "serial_qps": results["serial"]["qps"],
        "speedup": results["batch"]["qps"]
        / max(results["serial"]["qps"], 1e-9),
        "batch_sweeps": batches,
        "server_groups": groups,
        "epoch_validations": _metric(registry,
                                     "repro_batchscan_epoch_validations"),
        "epoch_fallbacks": _metric(registry,
                                   "repro_batchscan_epoch_fallbacks"),
        "statements": len(stmts),
        "threads": threads,
    }


def test_batchscan(scale, record_table):
    enforced, gate = _gate_state()
    keys = max(3000, int(100_000 * scale))
    warehouse, now = _seed_warehouse(keys)

    # Five-aggregate byte-identity twin over partial rectangles (MIN/MAX
    # and selective scans included) — enforced before the QPS drive.
    twin = _mixed_queries(keys, now, 6 * BATCH)
    serial_twin = [repr(warehouse.aggregate(*q)) for q in twin]
    batched_twin = []
    for i in range(0, len(twin), BATCH):
        batched_twin.extend(
            repr(x) for x in warehouse.aggregate_batch(twin[i:i + BATCH]))
    assert batched_twin == serial_twin, (
        "batched five-aggregate answers diverge from the serial control")

    queries = _hot_queries(keys, now, 24 * BATCH)
    kernel = _kernel_ab(warehouse, queries)
    stats = kernel["batch_stats"]

    # One seqlock hop per batch, zero torn reads under write-quiet load:
    # the counters behind the batch MVCC contract — always enforced.
    # A scan batch splits into one sweep per shard it touches, so the
    # sweep count lands between one and SHARDS per router batch.
    batches = stats["batches"]
    router_batches = (len(queries) + BATCH - 1) // BATCH
    assert router_batches <= batches <= router_batches * SHARDS, (
        f"expected 1..{SHARDS} sweeps per scan batch "
        f"({router_batches} batches), saw {batches}")
    assert stats["epoch_validations"] == batches, (
        f"{stats['epoch_validations']} epoch validations for {batches} "
        "batches — the batch read path must validate once per batch")
    assert stats["epoch_fallbacks"] == 0, (
        f"{stats['epoch_fallbacks']} batch queries fell back to "
        "per-query MVCC reads under write-quiet load")
    assert kernel["mvcc_fallbacks"] == 0, (
        "batched reads took extra MVCC fallbacks")
    assert stats["probes_deduped"] > 0, (
        "read-hot co-batched queries deduplicated no probes")
    assert stats["pages_saved"] > 0, (
        "the batch sweep saved no page fetches over per-probe descents")

    # The server twin seeds two full servers over the wire; a smaller
    # keyspace keeps that drive about concurrency, not seeding time.
    server_keys = max(300, int(10_000 * scale))
    server = _server_twin(server_keys)

    table = Table(
        title=(f"Vectorized scan batches, {SHARDS} shards, {keys} keys, "
               f"batch={BATCH} ({len(queries)} hot queries)"),
        columns=("path", "read_qps", "speedup"),
    )
    table.add(path="serial", read_qps=round(kernel["serial_qps"]),
              speedup=1.0)
    table.add(path=f"batch={BATCH}", read_qps=round(kernel["batch_qps"]),
              speedup=round(kernel["speedup"], 2))
    table.add(path="server scan_batch=1",
              read_qps=round(server["serial_qps"]), speedup=1.0)
    table.add(path=f"server scan_batch={BATCH}",
              read_qps=round(server["batch_qps"]),
              speedup=round(server["speedup"], 2))
    table.note(
        f"cpu_count={os.cpu_count()}; probes deduped "
        f"{stats['probes_deduped']}/{stats['probes']}, pages saved "
        f"{stats['pages_saved']} (fetched {stats['pages_fetched']}); "
        f"epoch validations {stats['epoch_validations']} for "
        f"{batches} batches, fallbacks {stats['epoch_fallbacks']}; "
        f"the >=2x gate is "
        f"{'enforced' if enforced else 'reported only'} here")
    record_table("batchscan", table)

    write_report(
        RESULTS_DIR / "BENCH_batchscan.json", "batchscan",
        {"shards": SHARDS, "keys": keys, "server_keys": server_keys,
         "batch": BATCH,
         "queries": len(queries), "hot_rectangles": HOT_RECTANGLES,
         "cpu_count": os.cpu_count() or 1, "gate": gate},
        {"serial_qps": kernel["serial_qps"],
         "batch_qps": kernel["batch_qps"],
         "batch_speedup": kernel["speedup"],
         "byte_identical": True,
         "batches": batches,
         "epoch_validations": stats["epoch_validations"],
         "epoch_fallbacks": stats["epoch_fallbacks"],
         "mvcc_fallbacks": kernel["mvcc_fallbacks"],
         "probes": stats["probes"],
         "probes_deduped": stats["probes_deduped"],
         "pages_fetched": stats["pages_fetched"],
         "pages_saved": stats["pages_saved"],
         "server_batch_qps": server["batch_qps"],
         "server_serial_qps": server["serial_qps"],
         "server_speedup": server["speedup"],
         "server_groups": server["server_groups"],
         "gate_enforced": enforced},
        {"gate": gate, "kernel": {k: v for k, v in kernel.items()
                                  if k != "batch_stats"},
         "batch_stats": stats, "server": server})

    if enforced:
        assert kernel["speedup"] >= 2.0, (
            f"batch kernel only {kernel['speedup']:.2f}x over the serial "
            f"read path at batch={BATCH}")


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
