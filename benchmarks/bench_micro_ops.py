"""Micro-benchmarks: wall-clock latency of the core single operations.

Unlike the figure reproductions (which report the paper's estimated-time
metric), these use pytest-benchmark's timing loop directly, so regressions
in the CPU cost of an MVSBT insertion, an MVSBT point query, a full RTA
query, and an MVBT insertion show up in the benchmark history.
"""

import itertools

import pytest

from repro.bench.harness import (
    BenchSettings,
    build_mvbt_baseline,
    build_rta_index,
    measure_updates,
)
from repro.core.model import Interval, KeyRange
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset


@pytest.fixture(scope="module")
def loaded():
    """A dataset replayed into both competitors once per module."""
    settings = BenchSettings()
    dataset = generate_dataset(paper_config("uniform-long", scale=0.002))
    rta = build_rta_index(settings, dataset)
    mvbt = build_mvbt_baseline(settings, dataset)
    measure_updates(rta, dataset.events, settings)
    measure_updates(mvbt, dataset.events, settings)
    return settings, dataset, rta, mvbt


def test_mvsbt_insert_op(benchmark):
    pool = BufferPool(InMemoryDiskManager(), capacity=256)
    tree = MVSBT(pool, MVSBTConfig(capacity=24), key_space=(1, 10**9))
    counter = itertools.count(1)

    def op():
        i = next(counter)
        tree.insert((i * 7919) % (10**9 - 1) + 1, i, 1.0)

    benchmark(op)


def test_mvsbt_point_query_op(benchmark, loaded):
    _, dataset, rta, _ = loaded
    (lkst, _lklt) = rta.trees()["SUM"]
    t_end = dataset.config.time_space[1]
    counter = itertools.count(1)

    def op():
        i = next(counter)
        lkst.query((i * 104729) % (10**9) + 1, (i * 31) % (t_end - 1) + 1)

    benchmark(op)


def test_rta_query_op(benchmark, loaded):
    _, dataset, rta, _ = loaded
    k_hi = dataset.config.key_space[1]
    t_hi = dataset.config.time_space[1]

    def op():
        rta.sum(KeyRange(k_hi // 4, 3 * k_hi // 4),
                Interval(t_hi // 4, 3 * t_hi // 4))

    benchmark(op)


def test_mvbt_insert_op(benchmark):
    settings = BenchSettings()
    dataset = generate_dataset(paper_config("uniform-long", scale=0.002))
    mvbt = build_mvbt_baseline(settings, dataset)
    t_hi = dataset.config.time_space[1]
    counter = itertools.count(1)

    def op():
        i = next(counter)
        mvbt.insert((i * 7919) % (10**9 - 1) + 1, 1.0, t_hi + i)

    benchmark(op)
