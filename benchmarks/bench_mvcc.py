"""Concurrent writers and non-blocking readers: the MVCC bench.

Three drives over the PR-9 write path:

* **Group-commit write throughput** — twin servers apply the *same*
  fixed-seed DML stream: the multi drive runs ``--writers 4`` with four
  concurrent client threads (same-shard statements coalesce into commit
  groups, one WAL write per group), the control runs ``--writers 1``
  with one client (the legacy one-op-one-flush path).  Answers over a
  shared rectangle set must be **byte-identical** afterwards — enforced
  everywhere, always.  The **>= 2x** throughput gate needs four cores;
  below that the bench fails loudly unless ``REPRO_MVCC_GATE=0``
  acknowledges a report-only run (``=1`` forces the gate) — the
  PR-6 pattern, so CI can't silently skip the headline number.
* **Reader isolation** — a :class:`ShardedWarehouse` with the seqlock
  read path (``mvcc=True``) serves reads while writer threads churn in
  bursts.  Epoch-validated readers never touch the write lock in the
  happy path: the drive asserts ``fallbacks == 0`` *always*, and (under
  the gate) that read p99 under writes stays within
  ``READER_P99_FACTOR`` of the idle p99.
* **RPC framing A/B** — the procpool's cached struct packers versus the
  pickle path they replaced (forced by disabling the packer), round-trip
  inserts against one worker.  Recorded in the envelope notes as the
  before/after for the 0.51x single-core RPC overhead finding.

Writes ``benchmarks/results/BENCH_mvcc.json`` in the consolidated
envelope (see :mod:`repro.bench.envelope`).
"""

from __future__ import annotations

import os
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.envelope import write_report
from repro.bench.reporting import Table
from repro.core.model import Interval, KeyRange
from repro.serve import procpool
from repro.serve.client import Client
from repro.serve.procpool import ProcessShardedWarehouse
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.sharded import ShardedWarehouse

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2026
SHARDS = 4
WRITERS = 4
#: Reader p99 under write bursts must stay within this factor of idle
#: p99 (gated).  Generous on purpose: it catches readers *blocking* on
#: the write lock (tens of ms per commit group), not GIL scheduling.
READER_P99_FACTOR = 20.0


def _duration() -> float:
    return float(os.environ.get("REPRO_MVCC_SECONDS", "2.0"))


def _gate_state() -> tuple[bool, str]:
    """(enforced, reason) for the >= 2x write-throughput gate.

    Same contract as ``bench_multicore``: fewer than four cores cannot
    show the speedup, and silently self-disabling would let CI report
    green with the headline unchecked — so the bench *fails* there
    unless ``REPRO_MVCC_GATE=0`` acknowledges report-only mode; ``=1``
    forces the gate regardless.
    """
    override = os.environ.get("REPRO_MVCC_GATE")
    if override == "1":
        return True, "enforced/REPRO_MVCC_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_MVCC_GATE=0"
    cores = os.cpu_count() or 1
    if cores >= 4:
        return True, "enforced"
    raise AssertionError(
        f"bench_mvcc needs >= 4 cores to enforce its >= 2x gate "
        f"(cpu_count={cores}); set REPRO_MVCC_GATE=0 to acknowledge "
        "a report-only run, or =1 to force the gate")


INSERT_PHASES = 6


def _write_ops(keys: int, writers: int, seed: int):
    """Per-writer deterministic DML as barrier-separated phases.

    Keys are disjoint *strided* sets, so every writer keeps touching
    every shard — that's what lets concurrent same-shard statements
    coalesce into commit groups (contiguous slices would pin each writer
    to one shard and defeat the grouping).  The warehouse clock must
    never run backwards per shard, so each phase uses one fixed
    timestamp and the drive barriers between phases; any in-phase
    interleaving then commits the same final state.  Returns
    ``(slices, now)`` with ``slices[w]`` a list of phases (TQL lists).
    """
    rng = random.Random(seed)
    values = {key: float(rng.randint(1, 100))
              for key in range(1, keys + 1)}
    slices = []
    for w in range(writers):
        mine = list(range(w + 1, keys + 1, writers))
        per = (len(mine) + INSERT_PHASES - 1) // INSERT_PHASES
        phases = [
            [f"INSERT KEY {key} VALUE {values[key]} AT {p + 1}"
             for key in mine[p * per:(p + 1) * per]]
            for p in range(INSERT_PHASES)
        ]
        t_del = INSERT_PHASES + 1
        phases.append([f"DELETE KEY {key} AT {t_del}"
                       for key in mine[: len(mine) // 10]])
        slices.append(phases)
    return slices, INSERT_PHASES + 1


def _rectangles(keys: int, now: int, count: int, seed: int):
    """Fixed-seed SELECT statements shared by both servers."""
    rng = random.Random(seed)
    stmts = []
    for _ in range(count):
        agg = rng.choice(("SUM(value)", "COUNT(*)", "AVG(value)",
                          "MIN(value)", "MAX(value)"))
        lo = rng.randint(1, keys)
        hi = rng.randint(lo + 1, keys + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 1)
        stmts.append(f"SELECT {agg} WHERE key IN [{lo}, {hi}) "
                     f"AND TIME DURING [{t0}, {t1})")
    return stmts


def _drive_writes(host: str, port: int, slices) -> float:
    """Apply every slice (a list of phases), one client thread per
    slice, with a barrier between phases; returns ops/s."""
    errors: list = []
    barrier = threading.Barrier(len(slices))

    def run(phases) -> None:
        try:
            with Client(host, port, retries=0) as client:
                for phase in phases:
                    for tql in phase:
                        client.execute(tql)
                    barrier.wait()
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            barrier.abort()
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(phases,), daemon=True)
               for phases in slices]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return (sum(len(phase) for phases in slices for phase in phases)
            / max(elapsed, 1e-9))


def _answers(host: str, port: int, stmts) -> list:
    with Client(host, port) as client:
        client.repin()
        return [repr(client.execute(tql)) for tql in stmts]


def _p99(samples) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]


def test_group_commit_write_throughput(scale, record_table, tmp_path):
    enforced, gate = _gate_state()
    keys = max(200, int(8_000 * scale))
    keys -= keys % WRITERS
    slices, now = _write_ops(keys, WRITERS, SEED)
    stmts = _rectangles(keys, now, 40, SEED + 1)

    def boot(writers: int, tag: str):
        # Process executor: commit groups then fan out to per-shard
        # worker processes, so the multi drive's gain is real multicore
        # apply + amortized RPC/WAL, not just latency overlap.
        return serve_in_thread(ServerConfig(
            shards=SHARDS, key_space=(1, keys + 1), writers=writers,
            durable_dir=str(tmp_path / tag), readers=WRITERS,
            executor="process",
            max_inflight=4 * WRITERS, max_queue=8 * WRITERS))

    multi = boot(WRITERS, "multi")
    try:
        multi_qps = _drive_writes(multi.host, multi.port, slices)
        multi_answers = _answers(multi.host, multi.port, stmts)
        with Client(multi.host, multi.port) as client:
            registry = client.metrics()
    finally:
        multi.stop()

    single = boot(1, "single")
    try:
        # One client applies every phase in order: the 1-writer twin.
        merged = [[tql for w in range(WRITERS) for tql in slices[w][p]]
                  for p in range(len(slices[0]))]
        single_qps = _drive_writes(single.host, single.port, [merged])
        single_answers = _answers(single.host, single.port, stmts)
    finally:
        single.stop()

    assert multi_answers == single_answers, (
        "multi-writer answers diverge from the single-writer control")
    groups = _metric(registry, "repro_commit_groups")
    grouped = _metric(registry, "repro_commit_group_records")
    assert groups > 0, "no commit groups formed under 4 writers"
    speedup = multi_qps / max(single_qps, 1e-9)

    table = Table(
        title=(f"Group-commit write path, {SHARDS} shards, {keys} keys "
               f"({WRITERS} writers vs 1)"),
        columns=("writers", "write_qps", "speedup"),
    )
    table.add(writers=1, write_qps=round(single_qps), speedup=1.0)
    table.add(writers=WRITERS, write_qps=round(multi_qps),
              speedup=round(speedup, 2))
    table.note(f"cpu_count={os.cpu_count()}; commit groups={groups}, "
               f"records grouped={grouped}; the >=2x gate is "
               f"{'enforced' if enforced else 'reported only'} here")
    record_table("mvcc", table)

    rpc = _rpc_framing_ab(keys)
    reader = _reader_isolation(keys, enforced)

    write_report(
        RESULTS_DIR / "BENCH_mvcc.json", "mvcc",
        {"shards": SHARDS, "writers": WRITERS, "keys": keys,
         "ops": sum(len(phase) for phases in slices for phase in phases),
         "cpu_count": os.cpu_count() or 1, "gate": gate,
         "reader_p99_factor": READER_P99_FACTOR},
        {"multi_write_qps": multi_qps, "single_write_qps": single_qps,
         "write_speedup": speedup, "byte_identical": True,
         "commit_groups": groups, "commit_group_records": grouped,
         "reader_idle_p99_ms": reader["idle_p99_ms"],
         "reader_under_write_p99_ms": reader["under_write_p99_ms"],
         "reader_fallbacks": reader["fallbacks"],
         "rpc_pickle_qps": rpc["pickle_qps"],
         "rpc_struct_qps": rpc["struct_qps"],
         "rpc_frame_speedup": rpc["speedup"],
         "gate_enforced": enforced},
        {"gate": gate, "reader": reader, "rpc_framing": rpc,
         "notes": ("rpc_framing is the before/after for the pickle-light "
                   "RPC trim: 'pickle_qps' forces the legacy pickle "
                   "frames, 'struct_qps' uses the cached per-op struct "
                   "packers now on by default"),
         "rectangles": len(stmts)})

    if enforced:
        assert speedup >= 2.0, (
            f"group commit only {speedup:.2f}x over the single-writer "
            f"control at {WRITERS} writers")
        ratio = reader["under_write_p99_ms"] / max(
            reader["idle_p99_ms"], 1e-9)
        assert ratio <= READER_P99_FACTOR, (
            f"read p99 degraded {ratio:.1f}x under writes "
            f"(bound {READER_P99_FACTOR}x)")


def _metric(registry, name: str) -> float:
    """Sum a metric family's sample values from the ``metrics`` op."""
    family = registry.get(name) or {}
    return float(sum(entry.get("value", 0.0)
                     for entry in family.get("series", [])))


def _reader_isolation(keys: int, enforced: bool):
    """Idle read p99 versus p99 under bursty writes, plus the honesty
    counter: optimistic readers must never fall back to the read lock."""
    warehouse = ShardedWarehouse(
        shards=SHARDS, key_space=(1, keys + 1), thread_safe=True,
        mvcc=True)
    # Ride out a full write burst before falling back: the bench asserts
    # the happy path stays lock-free, so the retry budget must exceed
    # one burst's validation failures.
    warehouse.read_retries = 50
    rng = random.Random(SEED + 7)
    t = 1
    for key in range(1, keys + 1):
        warehouse.insert(key, float(rng.randint(1, 100)), t)
        if rng.random() < 0.3:
            t += 1
    now = t
    rects = []
    for _ in range(16):
        lo = rng.randint(1, keys)
        hi = rng.randint(lo + 1, keys + 1)
        t0 = rng.randint(1, now)
        rects.append((KeyRange(lo, hi),
                      Interval(t0, rng.randint(t0 + 1, now + 1))))

    def read_pass(count: int):
        samples = []
        for i in range(count):
            key_range, interval = rects[i % len(rects)]
            started = time.perf_counter()
            warehouse.sum(key_range, interval)
            samples.append((time.perf_counter() - started) * 1e3)
        return samples

    idle = read_pass(400)
    baseline = warehouse.mvcc_stats.as_dict()

    stop = threading.Event()

    def churn() -> None:
        wt = now + 1
        wrng = random.Random(SEED + 11)
        while not stop.is_set():
            for _ in range(20):  # one burst
                warehouse.update(wrng.randint(1, keys),
                                 float(wrng.randint(1, 100)), wt)
                wt += 1
            stop.wait(0.005)

    writer = threading.Thread(target=churn, daemon=True)
    writer.start()
    try:
        under_write = read_pass(400)
    finally:
        stop.set()
        writer.join()
    stats = warehouse.mvcc_stats.as_dict()
    fallbacks = stats["fallbacks"] - baseline["fallbacks"]
    assert fallbacks == 0, (
        f"{fallbacks} optimistic reads fell back to the read lock "
        "under bursty writes — the happy path must stay lock-free")
    assert stats["optimistic"] > baseline["optimistic"]
    return {
        "idle_p99_ms": _p99(idle),
        "under_write_p99_ms": _p99(under_write),
        "retries": stats["retries"] - baseline["retries"],
        "fallbacks": fallbacks,
        "optimistic": stats["optimistic"] - baseline["optimistic"],
        "enforced": enforced,
    }


def _rpc_framing_ab(keys: int, ops: int = 2000):
    """Round-trip inserts against one worker, pickle vs struct frames."""
    del keys
    warmup = 300
    results = {}
    for mode in ("pickle", "struct"):
        warehouse = ProcessShardedWarehouse(
            shards=1, key_space=(1, ops + warmup + 1))
        original = procpool._pack_request
        if mode == "pickle":
            procpool._pack_request = lambda *a: None  # legacy framing
        try:
            client = warehouse._clients[0]
            for i in range(warmup):  # absorb worker cold start
                client.call("insert", ops + i + 1, 1.0, 1)
            start = time.perf_counter()
            for i in range(ops):
                client.call("insert", i + 1, 1.0, 1)
            results[mode] = ops / max(time.perf_counter() - start, 1e-9)
            if mode == "struct":
                assert client.packed_requests >= ops, (
                    "struct packer missed hot-path inserts")
        finally:
            procpool._pack_request = original
            warehouse.close()
    return {"pickle_qps": results["pickle"],
            "struct_qps": results["struct"],
            "speedup": results["struct"] / max(results["pickle"], 1e-9),
            "ops": ops}


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
