"""E5 — the paper's four dataset families (uniform/normal x long/short).

The paper reports results for uniformly and normally distributed keys and
for mainly long- and short-lived intervals (Figure 4 shows the
uniform/long-lived family; the text says the others behave alike).
Reproduced claim: the two-MVSBT advantage holds across all four families.
"""

from repro.bench.experiments import dataset_families


def test_all_families_show_the_same_story(benchmark, settings, scale,
                                          record_table):
    table = benchmark.pedantic(
        lambda: dataset_families(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("dataset_families", table)

    assert len(table.rows) == 4
    for row in table.rows:
        # Space overhead is a bounded constant factor in every family.
        # Long-lived families sit near the paper's ~2.5x; short-lived ones
        # pay more (every tuple's deletion feeds the LKLT trees while the
        # MVBT just closes an entry in place).
        limit = 6.0 if row["family"].endswith("long") else 16.0
        assert 1.5 <= row["space_ratio"] <= limit, row
        # At QRS=100% the MVSBT advantage holds in every family ...
        assert row["speedup_full"] > 10.0, row
    # ... and at QRS=1% it already holds for the long-lived families the
    # paper plots (short-lived rectangles hold few tuples, so the naive
    # plan stays competitive until rectangles grow).
    long_rows = [r for r in table.rows if r["family"].endswith("long")]
    assert all(r["speedup"] > 1.0 for r in long_rows)
