"""A4 — page disposal (section 4.2.3) under same-instant update bursts.

Expected shape: with many updates sharing an instant, pages created and
killed within that instant are freed — disposal saves pages and the
disposal counter is busy; without it the intermediate pages linger.
"""

from repro.bench.experiments import ablation_disposal


def test_disposal_saves_space_under_bursts(benchmark, settings, scale,
                                           record_table):
    table = benchmark.pedantic(
        lambda: ablation_disposal(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("ablation_disposal", table)

    rows = {row["disposal"]: row for row in table.rows}
    assert rows[True]["disposals"] > 0
    assert rows[True]["pages"] < rows[False]["pages"]
