"""A7 — range MIN/MAX for insert-only workloads (toward open problem (ii)).

The paper leaves range-temporal MIN/MAX open; this library contributes the
insert-only case via a segment-of-SB-trees index.  Expected shape: the
retrieval fallbacks (MVBT rectangle query, heap scan) degrade with QRS
while the index's cost stays flat — the Figure 4b story transplanted to a
non-invertible aggregate.
"""

from repro.bench.experiments import minmax_open_problem


def test_minmax_index_flat_vs_retrieval(benchmark, settings, scale,
                                        record_table):
    table = benchmark.pedantic(
        lambda: minmax_open_problem(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("minmax_open_problem", table)

    index_ios = table.column("index_ios")
    mvbt_ios = table.column("mvbt_ios")
    mvbt_est = table.column("mvbt_est_s")
    index_est = table.column("index_est_s")

    # Retrieval degrades with QRS ...
    assert mvbt_ios == sorted(mvbt_ios)
    assert mvbt_ios[-1] > 5 * mvbt_ios[0]
    # ... the index does not (flat within a small band).
    assert max(index_ios) <= 3 * max(min(index_ios), 1)
    # At full-space rectangles the index wins decisively.
    assert index_est[-1] < mvbt_est[-1] / 5
