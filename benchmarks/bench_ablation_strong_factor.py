"""A1 — strong factor sweep (the paper uses f=0.9; tuning f is open
problem (i) of section 6).

Measured shape: *smaller* f leaves more free slots after every time split,
so pages absorb more insertions before the next split — fewer alive-record
copies, hence less space and fewer update I/Os.  The price is slightly
slower queries (records spread across more, emptier pages).  The paper's
f=0.9 sits at the query-optimized end of that trade-off.
"""

from repro.bench.experiments import ablation_strong_factor

FACTORS = (0.3, 0.5, 0.7, 0.9, 1.0)


def test_strong_factor_space_query_tradeoff(benchmark, settings, scale,
                                            record_table):
    table = benchmark.pedantic(
        lambda: ablation_strong_factor(settings, scale=scale,
                                       factors=FACTORS),
        rounds=1, iterations=1,
    )
    record_table("ablation_strong_factor", table)

    pages = dict(zip(table.column("f"), table.column("pages")))
    updates = dict(zip(table.column("f"), table.column("update_ios_per_op")))
    queries = dict(zip(table.column("f"), table.column("query_est_s")))

    # Space and update cost: small f (slack after splits) is cheaper.
    assert pages[0.3] < pages[0.9]
    assert updates[0.3] < updates[0.9]

    # Query cost: the paper's f=0.9 is at least as fast as f=0.3.
    assert queries[0.9] <= queries[0.3]

    # The whole trade-off is bounded: no f choice is catastrophic.
    assert max(pages.values()) <= 2 * min(pages.values())
    assert max(queries.values()) <= 3 * min(queries.values())
