"""A8 — operational mix: interleaved updates and RTA queries.

The deployment-level question the per-phase figures don't answer: given
that the two-MVSBT approach pays more per update and far less per query,
at what query rate does it win overall?  Expected shape: the MVSBT's total
advantage grows with the query rate, winning clearly at realistic
analytics rates.
"""

from repro.bench.experiments import operational_mix

RATES = (1, 10, 100)


def test_mixed_workload_crossover(benchmark, settings, scale, record_table):
    table = benchmark.pedantic(
        lambda: operational_mix(settings, scale=scale,
                                queries_per_1000_updates=RATES),
        rounds=1, iterations=1,
    )
    record_table("operational_mix", table)

    rows = {row["queries_per_1000_updates"]: row for row in table.rows}

    # At a busy analytics rate the two-MVSBT approach must win overall.
    assert rows[100]["winner"] == "two-MVSBT"

    # The MVSBT's relative position improves monotonically with the rate.
    advantages = [
        rows[rate]["mvbt_s"] / rows[rate]["two_mvsbt_s"] for rate in RATES
    ]
    assert advantages == sorted(advantages)
