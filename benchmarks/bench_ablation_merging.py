"""A3 — record merging (section 4.2.2) on/off.

Expected shape: merging never *hurts* space; on workloads with cancelling
or boundary-aligned updates it compacts records.  The effect on the default
uniform workload is modest (few cancellations arise), so the assertion is
one-sided.
"""

from repro.bench.experiments import ablation_merging


def test_merging_never_costs_space(benchmark, settings, scale, record_table):
    table = benchmark.pedantic(
        lambda: ablation_merging(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("ablation_merging", table)

    rows = {row["merging"]: row for row in table.rows}
    assert rows[True]["pages"] <= rows[False]["pages"] * 1.02
    assert rows[True]["records_created"] <= rows[False]["records_created"]
