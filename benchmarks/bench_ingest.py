"""Batched versus event-at-a-time ingestion across the three competitors.

Expected shape: the :class:`~repro.core.ingest.BatchLoader` replays the
same chronological stream through the same trees, so logical I/O is
identical; the win is pure CPU — the batch kernels keep each touched
page's alive mirror instead of re-deriving search state per event.  The
two-MVSBT index (four trees per update in the SUM+COUNT config, two here)
gains the most and must clear 2x; the heap baseline's updates are already
O(1) appends, so it is reported but not gated.

Writes ``benchmarks/results/BENCH_ingest.json`` with the raw numbers for
machine consumption alongside the usual rendered table.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.reporting import Table
from repro.bench.harness import (
    build_heap_baseline,
    build_mvbt_baseline,
    build_rta_index,
    measure_batched_updates,
    measure_updates,
)
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: CPU-time rounds per (competitor, mode); the minimum is reported, which
#: filters scheduler noise without inflating the smoke-benchmark runtime.
ROUNDS = 3

COMPETITORS = (
    ("two-MVSBT", build_rta_index),
    ("MVBT", build_mvbt_baseline),
    ("heap-scan", build_heap_baseline),
)


def _replay_cost(build, dataset, settings, batched: bool):
    """Minimum-of-ROUNDS replay cost for one competitor and mode."""
    best = None
    for _ in range(ROUNDS):
        index = build(settings, dataset)
        measure = measure_batched_updates if batched else measure_updates
        cost = measure(index, dataset.events, settings)
        if best is None or cost.cpu_s < best.cpu_s:
            best = cost
    return best


def test_batched_ingest_speedup(benchmark, settings, scale, record_table):
    dataset = generate_dataset(paper_config("uniform-long", scale=scale))

    table = Table(
        title=(f"Batched vs sequential ingestion, scale={scale}, "
               f"{len(dataset.events)} events (min of {ROUNDS} rounds)"),
        columns=("method", "seq_cpu_s", "batch_cpu_s", "cpu_speedup",
                 "seq_logical_ios", "batch_logical_ios", "seq_writes",
                 "batch_writes"),
    )
    payload = {
        "scale": scale,
        "page_bytes": settings.page_bytes,
        "buffer_pages": settings.buffer_pages,
        "events": len(dataset.events),
        "rounds": ROUNDS,
        "competitors": {},
    }

    def run():
        results = {}
        for name, build in COMPETITORS:
            seq = _replay_cost(build, dataset, settings, batched=False)
            bat = _replay_cost(build, dataset, settings, batched=True)
            results[name] = (seq, bat)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, (seq, bat) in results.items():
        speedup = seq.cpu_s / max(bat.cpu_s, 1e-9)
        table.add(
            method=name,
            seq_cpu_s=seq.cpu_s,
            batch_cpu_s=bat.cpu_s,
            cpu_speedup=speedup,
            seq_logical_ios=seq.stats.logical_reads,
            batch_logical_ios=bat.stats.logical_reads,
            seq_writes=seq.stats.writes,
            batch_writes=bat.stats.writes,
        )
        payload["competitors"][name] = {
            "sequential": {"cpu_s": seq.cpu_s,
                           "logical_reads": seq.stats.logical_reads,
                           "physical_reads": seq.stats.reads,
                           "writes": seq.stats.writes},
            "batched": {"cpu_s": bat.cpu_s,
                        "logical_reads": bat.stats.logical_reads,
                        "physical_reads": bat.stats.reads,
                        "writes": bat.stats.writes,
                        "coalesced_writes": bat.stats.coalesced_writes},
            "cpu_speedup": speedup,
        }
    table.note("heap-scan updates are O(1) appends, so only pool-level "
               "write coalescing applies there (reported, not gated)")
    record_table("ingest_batched_vs_sequential", table)

    from repro.bench.envelope import write_report
    write_report(
        RESULTS_DIR / "BENCH_ingest.json", "ingest",
        {k: payload[k] for k in ("scale", "page_bytes", "buffer_pages",
                                 "events", "rounds")},
        {f"cpu_speedup[{name}]": entry["cpu_speedup"]
         for name, entry in payload["competitors"].items()},
        payload)

    for name, (seq, bat) in results.items():
        # The loader replays the identical record-level mutation sequence,
        # so logical I/O must match exactly for every competitor.
        assert bat.stats.logical_reads == seq.stats.logical_reads, name
        assert bat.operations == seq.operations == len(dataset.events), name

    rta_seq, rta_bat = results["two-MVSBT"]
    assert rta_seq.cpu_s / max(rta_bat.cpu_s, 1e-9) >= 2.0
    mvbt_seq, mvbt_bat = results["MVBT"]
    assert mvbt_seq.cpu_s / max(mvbt_bat.cpu_s, 1e-9) >= 1.5
