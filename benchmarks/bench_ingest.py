"""Batched, buffered and event-at-a-time ingestion across the competitors.

Expected shape: the :class:`~repro.core.ingest.BatchLoader` replays the
same chronological stream through the same trees, so logical I/O is
identical; the win is pure CPU — the batch kernels keep each touched
page's alive mirror instead of re-deriving search state per event.  The
two-MVSBT index (four trees per update in the SUM+COUNT config, two here)
gains the most and must clear 2x; the heap baseline's updates are already
O(1) appends, so it is reported but not gated.

The *buffered* mode (``BatchLoader(mode="buffered")``) goes further: a
buffer-tree ingest window absorbs updates into bounded in-page buffers,
routes them downward in sorted batches, and streams one columnar
write-back at window close.  Its logical I/O is deliberately *lower* than
the direct path (routing through resident sealed pages skips per-event
root-to-leaf pool traffic — the amortization itself), so the buffered
replay is exempt from the logical-read equality that the batch kernels
must obey.  The ``>= 2x`` buffered-vs-sequential gate is enforced at
paper scale (``>= 1M`` events, or ``REPRO_INGEST_GATE=1``); smoke runs
record the speedup plus an explicit ``"gate": "skipped/<reason>"``.

The HTAP drive proves reads stay live during buffered ingest: a buffered
index and a direct twin are fed the same stream chunk by chunk, and at
every checkpoint a batch of random rectangles must answer identically on
both — mid-window, without closing the window.

Writes ``benchmarks/results/BENCH_ingest.json`` with the raw numbers for
machine consumption alongside the usual rendered tables.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

from repro.bench.reporting import Table
from repro.bench.harness import (
    build_heap_baseline,
    build_mvbt_baseline,
    build_rta_index,
    measure_batched_updates,
    measure_buffered_updates,
    measure_updates,
)
from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.ingest import BatchLoader
from repro.core.model import Interval, KeyRange
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset

RESULTS_DIR = Path(__file__).parent / "results"

#: CPU-time rounds per (competitor, mode); the minimum is reported, which
#: filters scheduler noise without inflating the smoke-benchmark runtime.
ROUNDS = 3

#: Below this many events the buffered >=2x gate is reported, not
#: asserted — the window's setup cost needs volume to amortize.  The ISSUE
#: acceptance run (and the CI ingest-smoke job with REPRO_INGEST_GATE=1)
#: enforce it; ``REPRO_INGEST_GATE=0`` forces report-only at any scale.
GATE_MIN_EVENTS = 1_000_000

#: HTAP drive shape: pause the buffered load this many times and compare
#: this many random rectangles against the direct twin at each pause.
HTAP_CHECKPOINTS = 8
HTAP_PROBES = 12

COMPETITORS = (
    ("two-MVSBT", build_rta_index),
    ("MVBT", build_mvbt_baseline),
    ("heap-scan", build_heap_baseline),
)


def _replay_cost(build, dataset, settings, measure):
    """Minimum-of-ROUNDS replay cost for one competitor and mode."""
    best = None
    for _ in range(ROUNDS):
        index = build(settings, dataset)
        cost = measure(index, dataset.events, settings)
        if best is None or cost.cpu_s < best.cpu_s:
            best = cost
    return best


def _buffered_gate(events: int) -> tuple[bool, str]:
    """(enforced, reason) for the buffered >=2x speedup assertion."""
    override = os.environ.get("REPRO_INGEST_GATE")
    if override == "1":
        return True, "enforced/REPRO_INGEST_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_INGEST_GATE=0"
    if events >= GATE_MIN_EVENTS:
        return True, "enforced"
    return False, f"skipped/events<{GATE_MIN_EVENTS}"


def _random_rectangle(rng, key_space, now):
    lo = rng.randrange(key_space[0], key_space[1])
    hi = rng.randrange(lo + 1, key_space[1] + 1)
    t0 = rng.randint(1, now)
    t1 = rng.randint(t0 + 1, now + 1)
    return KeyRange(lo, hi), Interval(t0, t1)


def _htap_drive(settings, dataset):
    """Mixed read/write drive over an open buffered window.

    Feeds the same chronological stream to a buffered index and a direct
    twin; at every checkpoint, random rectangles (all five aggregates)
    must answer identically on both *while the window is open* — queries
    force-flush only the buffers on their search path.
    """
    direct = build_rta_index(settings, dataset, aggregates=(SUM, COUNT))
    buffered = build_rta_index(settings, dataset, aggregates=(SUM, COUNT))
    events = dataset.events
    step = max(1, len(events) // HTAP_CHECKPOINTS)
    rng = random.Random(9)
    key_space = dataset.config.key_space
    compared = 0
    checkpoints = 0
    loader = BatchLoader(buffered, mode="buffered")
    with loader:
        for start in range(0, len(events), step):
            for event in events[start:start + step]:
                if event.op == "insert":
                    direct.insert(event.key, event.value, event.time)
                    buffered.insert(event.key, event.value, event.time)
                else:
                    direct.delete(event.key, event.time)
                    buffered.delete(event.key, event.time)
            now = events[min(start + step, len(events)) - 1].time
            checkpoints += 1
            for _ in range(HTAP_PROBES):
                key_range, interval = _random_rectangle(rng, key_space, now)
                for aggregate in (SUM, COUNT, AVG):
                    want = direct.query(key_range, interval, aggregate)
                    got = buffered.query(key_range, interval, aggregate)
                    assert repr(got) == repr(want), (
                        f"mid-window {aggregate.name} diverged on "
                        f"{key_range} x {interval}: {got!r} != {want!r}")
                    compared += 1
    # Window closed: the frontier is materialized; answers must still match.
    now = events[-1].time
    for _ in range(HTAP_PROBES):
        key_range, interval = _random_rectangle(rng, key_space, now)
        want = direct.query(key_range, interval, SUM)
        got = buffered.query(key_range, interval, SUM)
        assert repr(got) == repr(want), "post-window answers diverged"
        compared += 1
    return {"checkpoints": checkpoints, "queries": compared,
            "identical": True}


def test_batched_ingest_speedup(benchmark, settings, scale, record_table):
    dataset = generate_dataset(paper_config("uniform-long", scale=scale))
    gate_enforced, gate = _buffered_gate(len(dataset.events))

    table = Table(
        title=(f"Batched vs sequential ingestion, scale={scale}, "
               f"{len(dataset.events)} events (min of {ROUNDS} rounds)"),
        columns=("method", "seq_cpu_s", "batch_cpu_s", "cpu_speedup",
                 "seq_logical_ios", "batch_logical_ios", "seq_writes",
                 "batch_writes"),
    )
    payload = {
        "scale": scale,
        "page_bytes": settings.page_bytes,
        "buffer_pages": settings.buffer_pages,
        "events": len(dataset.events),
        "rounds": ROUNDS,
        "gate": gate,
        "competitors": {},
    }

    def run():
        results = {}
        for name, build in COMPETITORS:
            seq = _replay_cost(build, dataset, settings, measure_updates)
            bat = _replay_cost(build, dataset, settings,
                               measure_batched_updates)
            results[name] = (seq, bat)
        buffered = _replay_cost(build_rta_index, dataset, settings,
                                measure_buffered_updates)
        htap = _htap_drive(settings, dataset)
        return results, buffered, htap

    results, buffered, htap = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, (seq, bat) in results.items():
        speedup = seq.cpu_s / max(bat.cpu_s, 1e-9)
        table.add(
            method=name,
            seq_cpu_s=seq.cpu_s,
            batch_cpu_s=bat.cpu_s,
            cpu_speedup=speedup,
            seq_logical_ios=seq.stats.logical_reads,
            batch_logical_ios=bat.stats.logical_reads,
            seq_writes=seq.stats.writes,
            batch_writes=bat.stats.writes,
        )
        payload["competitors"][name] = {
            "sequential": {"cpu_s": seq.cpu_s,
                           "logical_reads": seq.stats.logical_reads,
                           "physical_reads": seq.stats.reads,
                           "writes": seq.stats.writes},
            "batched": {"cpu_s": bat.cpu_s,
                        "logical_reads": bat.stats.logical_reads,
                        "physical_reads": bat.stats.reads,
                        "writes": bat.stats.writes,
                        "coalesced_writes": bat.stats.coalesced_writes},
            "cpu_speedup": speedup,
        }
    table.note("heap-scan updates are O(1) appends, so only pool-level "
               "write coalescing applies there (reported, not gated)")
    record_table("ingest_batched_vs_sequential", table)

    rta_seq, _ = results["two-MVSBT"]
    buffered_speedup = rta_seq.cpu_s / max(buffered.cpu_s, 1e-9)
    payload["competitors"]["two-MVSBT"]["buffered"] = {
        "cpu_s": buffered.cpu_s,
        "logical_reads": buffered.stats.logical_reads,
        "physical_reads": buffered.stats.reads,
        "writes": buffered.stats.writes,
        "coalesced_writes": buffered.stats.coalesced_writes,
        "cpu_speedup": buffered_speedup,
    }
    payload["htap"] = htap

    buffered_table = Table(
        title=(f"Buffer-tree ingest vs sequential (two-MVSBT), "
               f"{len(dataset.events)} events, gate={gate}"),
        columns=("mode", "cpu_s", "speedup", "logical_ios", "writes"),
    )
    buffered_table.add(mode="sequential", cpu_s=rta_seq.cpu_s, speedup=1.0,
                       logical_ios=rta_seq.stats.logical_reads,
                       writes=rta_seq.stats.writes)
    buffered_table.add(mode="buffered", cpu_s=buffered.cpu_s,
                       speedup=buffered_speedup,
                       logical_ios=buffered.stats.logical_reads,
                       writes=buffered.stats.writes)
    buffered_table.note(
        f"HTAP drive: {htap['queries']} mid-window rectangle answers "
        f"identical to the direct twin across {htap['checkpoints']} "
        "checkpoints; buffered logical I/O is legitimately lower (the "
        "buffer-tree amortization), so no equality assertion applies")
    record_table("ingest_buffered_vs_sequential", buffered_table)

    from repro.bench.envelope import write_report
    write_report(
        RESULTS_DIR / "BENCH_ingest.json", "ingest",
        {k: payload[k] for k in ("scale", "page_bytes", "buffer_pages",
                                 "events", "rounds", "gate")},
        {**{f"cpu_speedup[{name}]": entry["cpu_speedup"]
            for name, entry in payload["competitors"].items()},
         "cpu_speedup[two-MVSBT buffered]": buffered_speedup,
         "buffered_gate_enforced": gate_enforced,
         "htap_queries": htap["queries"],
         "htap_identical": htap["identical"]},
        payload)

    for name, (seq, bat) in results.items():
        # The loader replays the identical record-level mutation sequence,
        # so logical I/O must match exactly for every competitor.  The
        # buffered replay is exempt by design: its routing resolves
        # resident sealed pages without pool fetches.
        assert bat.stats.logical_reads == seq.stats.logical_reads, name
        assert bat.operations == seq.operations == len(dataset.events), name
    assert buffered.operations == len(dataset.events)
    assert htap["identical"]

    rta_seq, rta_bat = results["two-MVSBT"]
    assert rta_seq.cpu_s / max(rta_bat.cpu_s, 1e-9) >= 2.0
    mvbt_seq, mvbt_bat = results["MVBT"]
    assert mvbt_seq.cpu_s / max(mvbt_bat.cpu_s, 1e-9) >= 1.5
    if gate_enforced:
        assert buffered_speedup >= 2.0, (
            f"buffer-tree ingest only {buffered_speedup:.2f}x over "
            f"sequential at {len(dataset.events)} events ({gate})")
