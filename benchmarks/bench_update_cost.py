"""E4 — amortized update cost (the paper's "similar behavior" remark).

Reproduced claim: per-update cost of the two-MVSBT approach exceeds the
single MVBT's by a small constant factor (mirroring the space comparison),
and both stay logarithmic — i.e. a handful of I/Os per operation.
"""

from repro.bench.experiments import update_cost


def test_update_cost(benchmark, settings, scale, record_table):
    table = benchmark.pedantic(
        lambda: update_cost(settings, scale=scale), rounds=1, iterations=1,
    )
    record_table("update_cost", table)

    rows = {row["method"]: row for row in table.rows}
    mvsbt = rows["two-MVSBT"]
    mvbt = rows["MVBT"]

    # The MVSBT maintains two structures: costlier, but by a constant
    # factor, not asymptotically.
    assert mvbt["ios_per_op"] < mvsbt["ios_per_op"] <= 10 * max(
        mvbt["ios_per_op"], 0.01
    )
    # Logarithmic structures: a few physical I/Os per update at most.
    assert mvsbt["ios_per_op"] < 5.0
    assert mvbt["ios_per_op"] < 5.0
