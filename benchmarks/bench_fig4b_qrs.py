"""E2 — Figure 4b: RTA query speedup of two-MVSBT over MVBT vs QRS.

Reproduced claim: the two-MVSBT query cost is essentially independent of
the query-rectangle size while the naive MVBT plan degrades with it, so the
speedup grows monotonically and becomes enormous at QRS=100% (paper:
>5000x; exact magnitude scales with the dataset).
"""

from repro.bench.experiments import fig4b_speedup

QRS_POINTS = (0.0001, 0.001, 0.01, 0.1, 0.5, 1.0)


def test_fig4b_speedup_grows_with_qrs(benchmark, settings, scale,
                                      record_table):
    table = benchmark.pedantic(
        lambda: fig4b_speedup(settings, scale=scale, qrs_points=QRS_POINTS),
        rounds=1, iterations=1,
    )
    record_table("fig4b_qrs", table)

    speedups = table.column("speedup")
    mvbt_ios = table.column("mvbt_ios")
    mvsbt_ios = table.column("mvsbt_ios")

    # The naive plan's I/O grows with QRS ...
    assert mvbt_ios == sorted(mvbt_ios)
    assert mvbt_ios[-1] > 20 * mvbt_ios[0]
    # ... while the MVSBT plan stays within a small flat band
    # (buffer effects only; compare against its own maximum).
    assert max(mvsbt_ios) < 3 * max(mvsbt_ios[0], 1) + max(mvsbt_ios)

    # Headline: the speedup rises steeply and ends up very large.
    assert speedups[-1] > 100, speedups
    assert speedups[-1] > speedups[0] * 50
    # By QRS=1% the MVSBT plan is already ahead (paper's crossover is
    # below that).
    by_qrs = dict(zip(table.column("qrs"), speedups))
    assert by_qrs[0.01] > 1.0


def test_fig4b_shape_sensitivity(benchmark, settings, scale, record_table):
    """Secondary sweep: a skewed R/I shape must not change the story."""
    table = benchmark.pedantic(
        lambda: fig4b_speedup(settings, scale=scale,
                              qrs_points=(0.01, 0.25, 1.0), shape=4.0),
        rounds=1, iterations=1,
    )
    record_table("fig4b_qrs_shape4", table)
    speedups = table.column("speedup")
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 50
