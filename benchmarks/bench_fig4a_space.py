"""E1 — Figure 4a: space of MVBT vs two-MVSBT as the warehouse grows.

Reproduced claim: the two-MVSBT approach uses a small constant factor more
space than the single MVBT (paper: ~2.5x) and both grow linearly in the
number of updates.
"""

from repro.bench.experiments import fig4a_space


def test_fig4a_space(benchmark, settings, scale, record_table):
    table = benchmark.pedantic(
        lambda: fig4a_space(settings, scale=scale), rounds=1, iterations=1,
    )
    record_table("fig4a_space", table)

    ratios = table.column("ratio")
    mvbt_pages = table.column("mvbt_pages")
    rta_pages = table.column("two_mvsbt_pages")
    updates = table.column("updates")

    # Both curves grow monotonically with the update count.
    assert mvbt_pages == sorted(mvbt_pages)
    assert rta_pages == sorted(rta_pages)

    # Overhead is a small constant factor (paper: ~2.5x; our record widths
    # and b differ, so accept a band rather than a point).
    assert all(1.5 <= ratio <= 6.0 for ratio in ratios), ratios

    # Near-linear growth: pages per update stays flat within 30%.
    per_update = [pages / n for pages, n in zip(rta_pages, updates)]
    assert max(per_update) / min(per_update) < 1.3
