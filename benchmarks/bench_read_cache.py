"""Warm-cache read path versus the uncached baseline.

Two identically seeded warehouses answer the same read-hot statement
stream (the load generator's repeated-rectangle mix, half the queries
``AS OF`` historical times).  The uncached twin is the baseline; the
cached twin runs the stream twice — the first pass fills the result
cache and MVSBT point memos, the second pass measures the steady state
a server reaches on repeated aggregates.  Gates:

* every pass produces byte-identical results (the caches may only
  change *when* work happens, never *what* is answered);
* warm QPS >= 3x the uncached baseline on the direct read path.

A cold-vs-warm TCP load-generator run (cache off vs on, same mix) is
recorded alongside for the serving-layer view; the network and JSON
floor bounds that speedup well below the direct-path ratio, so it is
reported but gated only as warm >= cold (the CI ``cache-smoke`` job's
assertion).  Writes ``benchmarks/results/BENCH_cache.json``.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import List, Tuple

from repro.bench.reporting import Table
from repro.core.aggregates import Aggregate, AVG, COUNT, SUM
from repro.core.cache import CacheConfig
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.serve.loadgen import hot_rectangles

RESULTS_DIR = Path(__file__).parent / "results"

HOT_RECTANGLES = 16
HOT_FRACTION = 0.9
SEED = 1234

_AGGS = {"SUM(value)": SUM, "COUNT(*)": COUNT, "AVG(value)": AVG}


def _seed_warehouse(warehouse: TemporalWarehouse, keys: int,
                    seed: int) -> int:
    """The load generator's population: inserts plus a 10% delete tail."""
    rng = random.Random(seed)
    t = 1
    for key in range(1, keys + 1):
        warehouse.insert(key, float(rng.randint(1, 100)), t)
        if rng.random() < 0.3:
            t += 1
    for key in rng.sample(range(1, keys + 1), keys // 10):
        t += 1
        warehouse.delete(key, t)
    return t


def _query_stream(keys: int, now: int, count: int, seed: int
                  ) -> List[Tuple[Aggregate, KeyRange, Interval]]:
    """Read-hot mix: 90% repeated rectangles, half ``AS OF`` history."""
    rng = random.Random(seed)
    hot = hot_rectangles(keys, HOT_RECTANGLES, seed)
    stream = []
    for _ in range(count):
        if rng.random() < HOT_FRACTION:
            agg, lo, hi = rng.choice(hot)
        else:
            agg = rng.choice(tuple(_AGGS))
            lo = rng.randint(1, max(keys - 1, 1))
            hi = rng.randint(lo + 1, keys + 1)
        as_of = now if rng.random() < 0.5 else rng.randint(now // 2, now)
        stream.append((_AGGS[agg], KeyRange(lo, hi), Interval(1, as_of + 1)))
    return stream


def _run_stream(warehouse: TemporalWarehouse, stream) -> Tuple[list, float]:
    results = []
    started = time.perf_counter()
    for aggregate, key_range, interval in stream:
        results.append(warehouse.aggregate(key_range, interval, aggregate))
    return results, time.perf_counter() - started


def _loadgen_cold_vs_warm(keys: int) -> dict:
    """Cold (``--no-cache``) vs warm (cached + warm-up) TCP loadgen runs."""
    from repro.serve.loadgen import run_load
    from repro.serve.server import ServerConfig, serve_in_thread

    out = {}
    for label, cache in (("cold", False), ("warm", True)):
        handle = serve_in_thread(ServerConfig(
            port=0, shards=4, key_space=(1, keys + 1), cache=cache))
        try:
            report = run_load(handle.host, handle.port, workers=4,
                              duration=1.0, seed_keys=keys, seed=SEED,
                              warmup=0.5, mix="read-hot")
        finally:
            handle.stop()
        out[label] = {"cache": cache, "totals": report["totals"],
                      "latency_ms": report["latency_ms"]}
    out["speedup"] = (out["warm"]["totals"]["qps"]
                      / max(out["cold"]["totals"]["qps"], 1e-9))
    return out


def test_warm_cache_speedup(scale, record_table):
    keys = max(300, int(100_000 * scale))
    count = max(800, int(300_000 * scale))

    uncached = TemporalWarehouse(key_space=(1, keys + 1), buffer_pages=32)
    cached = TemporalWarehouse(key_space=(1, keys + 1), buffer_pages=32,
                               buffer_policy="2q")
    now = _seed_warehouse(uncached, keys, SEED)
    assert _seed_warehouse(cached, keys, SEED) == now
    cached.enable_cache(CacheConfig())

    stream = _query_stream(keys, now, count, SEED)
    base_results, base_s = _run_stream(uncached, stream)
    first_results, first_s = _run_stream(cached, stream)   # fills caches
    warm_results, warm_s = _run_stream(cached, stream)     # steady state

    # Twin-run check: caching must never change an answer, byte for byte.
    baseline = json.dumps(base_results)
    assert json.dumps(first_results) == baseline
    assert json.dumps(warm_results) == baseline

    base_qps = count / base_s
    first_qps = count / first_s
    warm_qps = count / warm_s
    speedup = warm_qps / base_qps
    snapshot = cached.cache_snapshot().as_dict()

    table = Table(
        title=(f"Read-path cache, {keys} keys, {count} queries "
               f"(read-hot mix, {HOT_RECTANGLES} hot rectangles)"),
        columns=("mode", "qps", "vs_uncached"),
    )
    table.add(mode="uncached", qps=round(base_qps), vs_uncached=1.0)
    table.add(mode="cached, first pass", qps=round(first_qps),
              vs_uncached=round(first_qps / base_qps, 2))
    table.add(mode="cached, warm", qps=round(warm_qps),
              vs_uncached=round(speedup, 2))
    table.note("warm pass repeats the identical stream: closed entries are "
               "pinned, open entries stay epoch-valid (no writes), so the "
               "result cache answers nearly every query")
    record_table("read_cache", table)

    loadgen = _loadgen_cold_vs_warm(keys)

    payload = {
        "scale": scale,
        "keys": keys,
        "queries": count,
        "hot_rectangles": HOT_RECTANGLES,
        "hot_fraction": HOT_FRACTION,
        "direct": {
            "uncached_qps": base_qps,
            "cached_first_pass_qps": first_qps,
            "warm_qps": warm_qps,
            "speedup": speedup,
            "byte_identical": True,
            "cache": snapshot,
        },
        "loadgen": loadgen,
    }
    from repro.bench.envelope import write_report
    write_report(
        RESULTS_DIR / "BENCH_cache.json", "cache",
        {k: payload[k] for k in ("scale", "keys", "queries",
                                 "hot_rectangles", "hot_fraction")},
        {"warm_speedup": speedup, "warm_qps": warm_qps,
         "uncached_qps": base_qps, "byte_identical": True,
         "loadgen_speedup": loadgen["speedup"]},
        payload)

    assert speedup >= 3.0, f"warm cache only {speedup:.2f}x over uncached"
    assert snapshot["result"]["hits"] > 0
