"""A5 — empirical check of Theorem 2 / Corollary 1.

Query ``O(log_b n)`` I/Os, update ``O(log_b K)`` I/Os, space
``O((n/b) log_b K)`` pages: the measured-over-bound ratios must stay
bounded as the dataset grows.
"""

from repro.bench.experiments import theorem2_bounds


def test_measured_costs_track_the_bounds(benchmark, settings, record_table):
    table = benchmark.pedantic(
        lambda: theorem2_bounds(settings), rounds=1, iterations=1,
    )
    record_table("theorem2_bounds", table)

    for row in table.rows:
        # An RTA query is ~6 point queries; each O(log_b n) page touches.
        assert row["query_ios_per_q"] <= 6 * (row["log_b_n"] + 2) * 2, row
        # An update touches O(log_b K) pages (x2 trees, x constant for
        # splits and write-backs).
        assert row["update_ios_per_op"] <= 8 * (row["log_b_K"] + 2), row
        # Space stays within a constant factor of (n/b) log_b K.
        assert row["pages"] <= 16 * max(row["space_bound_pages"], 1), row

    # Per-query I/O grows (at most) logarithmically: from the smallest to
    # the largest n it must not grow anywhere near linearly.
    per_q = table.column("query_ios_per_q")
    ns = table.column("n")
    assert per_q[-1] / per_q[0] < (ns[-1] / ns[0]) ** 0.5
