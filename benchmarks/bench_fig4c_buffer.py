"""E3 — Figure 4c: query cost at QRS=1% across LRU buffer sizes.

Reproduced claim: the two-MVSBT approach beats the MVBT plan at every
buffer size; the MVBT plan benefits from larger buffers (rescans get
absorbed) while the MVSBT plan's tiny working set is near-insensitive.
"""

from repro.bench.experiments import fig4c_buffer

BUFFER_SIZES = (8, 16, 32, 64, 128, 256)


def test_fig4c_buffer_sweep(benchmark, settings, scale, record_table):
    table = benchmark.pedantic(
        lambda: fig4c_buffer(settings, scale=scale,
                             buffer_sizes=BUFFER_SIZES),
        rounds=1, iterations=1,
    )
    record_table("fig4c_buffer", table)

    mvsbt = table.column("mvsbt_est_s")
    mvbt = table.column("mvbt_est_s")
    speedups = table.column("speedup")

    # Two-MVSBT superior across ALL buffer sizes (the paper's claim).
    assert all(s > 1.0 for s in speedups), speedups

    # The MVBT plan improves as the buffer grows.
    assert mvbt[-1] < mvbt[0]

    # The MVSBT plan's absolute variation across buffer sizes is small
    # compared to the MVBT plan's.
    assert (max(mvsbt) - min(mvsbt)) < (max(mvbt) - min(mvbt))
