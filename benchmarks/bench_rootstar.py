"""A9 — root* representation: paged B+-tree vs the in-memory array.

Theorem 2's query bound is ``O(log_b n)`` because locating the right root
costs a B+-tree descent; the paper notes a main-memory array of roots
reduces queries to ``O(log_b K)``.  Expected shape: the paged mode costs
more logical reads — by a bounded, logarithmic amount — and slightly more
space (the directory pages).
"""

from repro.bench.experiments import rootstar_overhead


def test_paged_rootstar_costs_a_bounded_log_term(benchmark, settings,
                                                 scale, record_table):
    table = benchmark.pedantic(
        lambda: rootstar_overhead(settings, scale=scale),
        rounds=1, iterations=1,
    )
    record_table("rootstar_overhead", table)

    rows = {row["rootstar"]: row for row in table.rows}
    memory = rows["in-memory array"]
    paged = rows["paged B+-tree"]

    # The directory adds reads... but never more than a small multiple.
    assert paged["query_logical_reads"] >= memory["query_logical_reads"]
    assert paged["query_logical_reads"] <= 3 * memory["query_logical_reads"]
    # And a little space for the directory pages.
    assert paged["pages"] >= memory["pages"]
