"""Telemetry plane: does observability pay for itself at defaults?

PR 7 threads request telemetry through every request — latency
histograms split queue-wait vs execution, a probabilistic trace sampler,
a slow-query ring, a Prometheus ``/metrics`` endpoint.  All of it is
branch-guarded so the off-path costs one pointer check; this bench
proves the *on*-path is also affordable and actually works end to end.

Two drives against process-executor servers seeded identically:

* **baseline** — telemetry defaults (no sampling, no metrics port, no
  slow-query log): the PR-5 serving configuration.
* **telemetry** — ``--trace-sample-rate 0.1`` with a rotating JSONL
  sink, ``--metrics-port 0``, and a slow-query threshold.  After the
  drive the bench verifies the plane delivered: the ``/metrics`` scrape
  contains per-op histograms **and** the aggregated per-worker
  ``repro_procpool_*`` registries; the trace file holds request roots
  whose ``worker.*`` child spans carry the same trace ID (proof the ID
  crossed the process boundary); the slowlog is non-empty.

The gate: telemetry QPS within **5%** of baseline.  Short drives on a
shared host are noisy — no-op config changes swing +-4% run to run, and
whichever side runs *second* in a pair inherits the host's warmed (or
trashed) state.  The bench therefore runs ``REPRO_TELEMETRY_ROUNDS``
(default 6) paired rounds, *alternating which side drives first*, and
gates on the **median** of the per-round QPS ratios: alternation cancels
position bias, pairing cancels slow host drift, and the median discards
the transient stalls that wreck any single round.
``REPRO_TELEMETRY_GATE=0`` acknowledges a report-only run on hosts too
noisy even for that; ``=1`` forces the gate.
``REPRO_TELEMETRY_SECONDS`` (default 2.0) sets the per-round drive time.

Writes ``benchmarks/results/BENCH_telemetry.json`` in the consolidated
envelope (see :mod:`repro.bench.envelope`); the telemetry drive carries
SLO accounting so ``python -m repro.analyze bench`` can rank it.
"""

from __future__ import annotations

import json
import os
import tempfile
import urllib.request
from pathlib import Path

from repro.bench.envelope import write_report
from repro.bench.reporting import Table
from repro.serve.client import Client
from repro.serve.loadgen import run_load
from repro.serve.server import ServerConfig, serve_in_thread

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2026
SHARDS = 4
WORKERS = 4
SAMPLE_RATE = 0.1
SLOW_MS = 50.0
SLO_MS = 250.0
SLO_TARGET = 0.99
OVERHEAD_LIMIT = 0.05


def _duration() -> float:
    return float(os.environ.get("REPRO_TELEMETRY_SECONDS", "2.0"))


def _rounds() -> int:
    return max(1, int(os.environ.get("REPRO_TELEMETRY_ROUNDS", "6")))


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _gate_state() -> "tuple[bool, str]":
    """(enforced, reason) for the <= 5% overhead assertion."""
    override = os.environ.get("REPRO_TELEMETRY_GATE")
    if override == "1":
        return True, "enforced/REPRO_TELEMETRY_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_TELEMETRY_GATE=0"
    return True, "enforced"


def _drive(config: ServerConfig, keys: int, duration: float,
           slo: bool) -> dict:
    """Spawn a server, seed it, run the measured load, tear it down."""
    handle = serve_in_thread(config)
    try:
        report = run_load(
            handle.host, handle.port, WORKERS, duration, keys, SEED,
            warmup=min(0.5, duration / 4), mix="read-hot",
            slo_ms=SLO_MS if slo else None, slo_target=SLO_TARGET)
        if slo:
            # One deliberately slow request so the slowlog check below
            # cannot depend on the tail of a short drive.
            with Client(handle.host, handle.port) as client:
                client.sleep(SLOW_MS / 1000.0 * 3)
                report["slowlog"] = client.slowlog()
                report["metrics_text"] = client.metrics_text()
            address = handle.server.metrics_address
            assert address is not None, "metrics HTTP endpoint not bound"
            url = f"http://{address[0]}:{address[1]}/metrics"
            with urllib.request.urlopen(url, timeout=10) as response:
                report["scrape"] = response.read().decode("utf-8")
    finally:
        handle.stop()
    return report


def _verify_scrape(scrape: str) -> None:
    """The HTTP exposition carries router and worker-side series."""
    for needle in ("repro_serve_op_latency_seconds_bucket",
                   "repro_serve_op_phase_seconds",
                   "repro_procpool_requests",
                   'shard="0"'):
        assert needle in scrape, f"/metrics scrape lacks {needle!r}"


def _verify_traces(path: Path) -> "tuple[int, int]":
    """(request roots, cross-process worker spans with matching IDs)."""
    roots = 0
    worker_spans = 0
    with open(path) as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("name") != "request":
                continue
            roots += 1
            trace_id = record["attrs"].get("trace_id")
            assert trace_id, "sampled request root lacks a trace ID"
            for child in record.get("children", ()):
                if not child["name"].startswith("worker."):
                    continue
                assert child["attrs"].get("trace_id") == trace_id, (
                    "worker span did not inherit the request trace ID")
                worker_spans += 1
    assert roots > 0, f"no sampled request roots in {path}"
    assert worker_spans > 0, (
        "no worker.* child spans crossed the process boundary")
    return roots, worker_spans


def test_telemetry_overhead(scale, record_table):
    enforced, gate = _gate_state()
    keys = max(200, int(10_000 * scale))
    duration = _duration()
    rounds = _rounds()

    def config(**telemetry) -> ServerConfig:
        return ServerConfig(shards=SHARDS, key_space=(1, keys + 1),
                            executor="process", **telemetry)

    base_rounds = []
    telem_rounds = []
    trace_roots = worker_spans = 0
    baseline = telemetry = slowlog = None
    with tempfile.TemporaryDirectory(prefix="bench-telemetry-") as tmp:
        for round_no in range(rounds):
            trace_path = Path(tmp) / f"traces-{round_no}.jsonl"
            telemetry_config = config(
                trace_sample_rate=SAMPLE_RATE, trace_path=str(trace_path),
                metrics_port=0, slow_ms=SLOW_MS)
            # Alternate which side drives first: the second drive of a
            # pair inherits the host's warmed (or trashed) state, and
            # alternation spreads that bias evenly across both sides.
            if round_no % 2 == 0:
                baseline = _drive(config(), keys, duration, slo=False)
                telemetry = _drive(telemetry_config, keys, duration,
                                   slo=True)
            else:
                telemetry = _drive(telemetry_config, keys, duration,
                                   slo=True)
                baseline = _drive(config(), keys, duration, slo=False)
            base_rounds.append(baseline["totals"]["qps"])
            telem_rounds.append(telemetry["totals"]["qps"])

            _verify_scrape(telemetry.pop("scrape"))
            _verify_scrape(telemetry.pop("metrics_text"))
            slowlog = telemetry.pop("slowlog")
            assert slowlog["total"] >= 1 and slowlog["entries"], (
                "slow-query log stayed empty despite a deliberate "
                "slow request")
            roots, spans = _verify_traces(trace_path)
            trace_roots += roots
            worker_spans += spans

    # Gate on the median of per-round paired ratios: pairing cancels
    # slow host drift, the median discards transient stalls, and the
    # alternating order above cancels position bias.
    ratios = [t / max(b, 1e-9)
              for b, t in zip(base_rounds, telem_rounds)]
    overhead = 1.0 - _median(ratios)
    base_qps = max(base_rounds)
    telem_qps = max(telem_rounds)
    slo = telemetry["slo"]

    table = Table(
        title=(f"Telemetry overhead, {SHARDS}-shard process executor, "
               f"{WORKERS} drivers, read-hot, median of {rounds} "
               f"order-alternated {duration:.1f}s paired rounds"),
        columns=("side", "best_qps", "overhead", "sampled", "slow"),
    )
    table.add(side="baseline", best_qps=round(base_qps), overhead="-",
              sampled="-", slow="-")
    table.add(side="telemetry", best_qps=round(telem_qps),
              overhead=f"{overhead * 100.0:+.1f}%",
              sampled=f"{trace_roots} traces / {worker_spans} worker spans",
              slow=slowlog["total"])
    table.note(f"sample rate {SAMPLE_RATE}, slow-query threshold "
               f"{SLOW_MS:.0f}ms, SLO {SLO_MS:.0f}ms@{SLO_TARGET}: "
               f"burn {slo['burn']:.2f}x "
               f"({'met' if slo['met'] else 'missed'}); the <= "
               f"{OVERHEAD_LIMIT:.0%} gate is "
               f"{'enforced' if enforced else 'reported only'}")
    record_table("telemetry_overhead", table)

    write_report(
        RESULTS_DIR / "BENCH_telemetry.json", "telemetry",
        {"shards": SHARDS, "workers": WORKERS, "keys": keys,
         "duration_s": duration, "rounds": rounds, "mix": "read-hot",
         "executor": "process", "trace_sample_rate": SAMPLE_RATE,
         "slow_ms": SLOW_MS, "slo_ms": SLO_MS, "slo_target": SLO_TARGET,
         "gate": gate},
        {"baseline_qps": base_qps, "telemetry_qps": telem_qps,
         "overhead_frac": overhead, "trace_roots": trace_roots,
         "worker_spans": worker_spans, "slow_entries": slowlog["total"],
         "slo_attained": slo["attained"], "slo_burn": slo["burn"],
         "slo_met": slo["met"], "gate_enforced": enforced},
        {"gate": gate, "round_qps": {"baseline": base_rounds,
                                     "telemetry": telem_rounds},
         "round_ratios": ratios,
         "baseline": baseline, "telemetry": telemetry})

    if enforced:
        assert overhead <= OVERHEAD_LIMIT, (
            f"telemetry lost {overhead:.1%} QPS vs baseline (median of "
            f"{rounds} paired rounds, limit {OVERHEAD_LIMIT:.0%}); rerun "
            "with REPRO_TELEMETRY_GATE=0 to acknowledge a noisy host")


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
