"""The elastic-cluster bench: failover, autosplit recovery, replicas.

Three claims of the cluster plane (:mod:`repro.serve.cluster`), each
measured end to end and recorded in one consolidated envelope:

* **Zero-error failover** — with one WAL-shipped replica per group, a
  ``kill -9`` of a primary mid-drive is invisible to clients: reads
  rotate to the caught-up replica while the primary respawns.  The
  control run is the PR-5 process backend (no replicas, no heal): the
  same kill there surfaces as client-visible ``SHARD_DOWN`` errors, so
  the comparison isolates what the cluster plane adds.
* **Autosplit throughput recovery** — a hot key range served by one
  worker is single-core bound.  Once the planner splits the hot group,
  point-ish reads land on two workers and closed-loop QPS over the same
  range must recover to **>= 1.5x** the pre-split rate.  Like
  ``bench_multicore``, the gate needs cores to be physically winnable:
  hosts with fewer than four fail loudly unless the operator
  acknowledges a report-only run with ``REPRO_CLUSTER_GATE=0`` (``=1``
  forces it).
* **Byte-identical replica reads** — a version-pinned read against a
  caught-up replica must ``repr``-match the primary exactly (partial
  persistence: pinned reads touch only closed versions).

Writes ``benchmarks/results/BENCH_cluster.json`` in the consolidated
envelope (see :mod:`repro.bench.envelope`).
"""

from __future__ import annotations

import os
import random
import signal
import tempfile
import threading
import time
from pathlib import Path

from repro.bench.envelope import write_report
from repro.bench.reporting import Table
from repro.core.model import Interval, KeyRange
from repro.serve.cluster import ClusterWarehouse
from repro.serve.loadgen import run_load
from repro.serve.server import ServerConfig, serve_in_thread

RESULTS_DIR = Path(__file__).parent / "results"

SEED = 2026
DRIVERS = 4


def _duration() -> float:
    return float(os.environ.get("REPRO_CLUSTER_SECONDS", "3.0"))


def _gate_state() -> tuple[bool, str]:
    """(enforced, reason) for the >= 1.5x recovery assertion."""
    override = os.environ.get("REPRO_CLUSTER_GATE")
    if override == "1":
        return True, "enforced/REPRO_CLUSTER_GATE=1"
    if override == "0":
        return False, "skipped/REPRO_CLUSTER_GATE=0"
    cores = os.cpu_count() or 1
    if cores >= 4:
        return True, "enforced"
    raise AssertionError(
        f"bench_cluster needs >= 4 cores to enforce its >= 1.5x recovery "
        f"gate (cpu_count={cores}); set REPRO_CLUSTER_GATE=0 to "
        "acknowledge a report-only run, or =1 to force the gate")


def _seed_events(keys: int):
    events = [("insert", key, float(key % 97 + 1), 1 + key % 7)
              for key in range(1, keys + 1)]
    events.sort(key=lambda event: event[3])
    return events


# -- experiment 1: SIGKILL a primary under open-loop load ----------------------------


def _drive_with_kill(config: ServerConfig, keys: int, rate: float,
                     duration: float, kill) -> dict:
    """Open-loop loadgen against ``config``; ``kill(warehouse)`` fires
    mid-drive from a timer thread.  Returns the loadgen report."""
    handle = serve_in_thread(config)
    try:
        timer = threading.Timer(
            0.5 + duration / 2, kill, args=(handle.server.warehouse,))
        timer.daemon = True
        timer.start()
        report = run_load(handle.host, handle.port, workers=DRIVERS,
                          duration=duration, seed_keys=keys, seed=SEED,
                          warmup=0.5, mix="read-hot",
                          arrivals="poisson", rate=rate)
        timer.cancel()
        return report
    finally:
        handle.stop()


def _kill_first_primary(warehouse) -> None:
    if hasattr(warehouse, "topology_info"):
        gid = warehouse.topology_info()["groups"][0]["gid"]
        os.kill(warehouse.shard_pid(gid), signal.SIGKILL)
    else:
        os.kill(warehouse.shard_pid(0), signal.SIGKILL)


def _failover_experiment(keys: int, duration: float) -> dict:
    rate = float(os.environ.get("REPRO_CLUSTER_RATE", "200"))
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as root:
        replicated = _drive_with_kill(
            ServerConfig(shards=2, key_space=(1, keys + 1),
                         executor="process", durable_dir=root,
                         replicas=1, planner_interval=0.2),
            keys, rate, duration, _kill_first_primary)
    control = _drive_with_kill(
        ServerConfig(shards=2, key_space=(1, keys + 1),
                     executor="process"),
        keys, rate, duration, _kill_first_primary)
    return {"replicated": replicated, "control": control}


# -- experiment 2: autosplit recovers hot-range throughput ---------------------------


def _hot_drive(warehouse, span: tuple[int, int], now: int,
               duration: float, seed: int) -> float:
    """Closed-loop point-ish reads inside ``span``: completed/s.

    Each query covers a small random subrange, so after a split the
    drivers fan across both children instead of every request landing on
    the one worker that owns the whole span.
    """
    lo, hi = span
    counts = [0] * DRIVERS
    start = time.perf_counter()
    deadline = start + duration

    def run(slot: int) -> None:
        rng = random.Random(seed + slot)
        interval = Interval(1, now + 1)
        while time.perf_counter() < deadline:
            a = rng.randint(lo, hi - 2)
            b = min(hi, a + rng.randint(1, 16))
            warehouse.sum(KeyRange(a, b), interval)
            counts[slot] += 1

    pool = [threading.Thread(target=run, args=(slot,), daemon=True)
            for slot in range(DRIVERS)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    elapsed = time.perf_counter() - start
    return sum(counts) / elapsed if elapsed > 0 else 0.0


def _autosplit_experiment(keys: int, duration: float, root: str) -> dict:
    warehouse = ClusterWarehouse(
        shards=2, key_space=(1, keys + 1), durable_dir=root,
        replicas=0, autosplit=True, split_qps=float("inf"),
        split_min_share=0.45, split_cooldown=0.5, planner_interval=0.25,
        max_groups=4)
    try:
        warehouse.load_events(_seed_events(keys))
        now = warehouse.now
        hot_gid = warehouse.topology_info()["groups"][0]["gid"]
        group = warehouse._groups_by_gid[hot_gid]
        hot_span = (group.lo, group.hi)

        qps_pre = _hot_drive(warehouse, hot_span, now, duration, SEED)

        # Arm the planner at a threshold the hot drive clears easily,
        # then keep driving until it splits the hot group.
        warehouse._planner.split_qps = max(qps_pre * 0.25, 1.0)
        deadline = time.monotonic() + 30.0
        while warehouse.splits < 1 and time.monotonic() < deadline:
            _hot_drive(warehouse, hot_span, now, 0.5, SEED + 7)
        assert warehouse.splits >= 1, (
            "planner never autosplit the hot group (qps threshold "
            f"{warehouse._planner.split_qps:.1f})")

        qps_post = _hot_drive(warehouse, hot_span, now, duration,
                              SEED + 13)
        return {"qps_pre": qps_pre, "qps_post": qps_post,
                "splits": warehouse.splits,
                "groups": len(warehouse.topology_info()["groups"]),
                "recovery": qps_post / max(qps_pre, 1e-9)}
    finally:
        warehouse.close()


# -- experiment 3: replica reads are byte-identical ----------------------------------


def _replica_experiment(keys: int, root: str) -> dict:
    warehouse = ClusterWarehouse(
        shards=2, key_space=(1, keys + 1), durable_dir=root, replicas=1)
    try:
        warehouse.load_events(_seed_events(keys))
        interval = Interval(1, warehouse.now + 1)
        checked = 0
        for info in warehouse.topology_info()["groups"]:
            gid = info["gid"]
            warehouse.sync_replicas(gid)
            span = KeyRange(*warehouse._groups_by_gid[gid].wh_key_space)
            for method in ("sum", "count", "aggregate_all", "tuples_in"):
                primary = warehouse.primary_probe(gid, method, span,
                                                  interval)
                replica = warehouse.replica_probe(gid, 0, method, span,
                                                  interval)
                assert repr(primary) == repr(replica), (
                    f"replica answer diverged: group {gid} {method}")
                checked += 1
        return {"byte_identical": True, "comparisons": checked}
    finally:
        warehouse.close()


# -- the bench -----------------------------------------------------------------------


def test_cluster_plane(scale, record_table):
    enforced, gate = _gate_state()
    keys = max(400, int(20_000 * scale))
    duration = _duration()

    failover = _failover_experiment(keys, duration)
    replicated_errors = sum(
        failover["replicated"]["totals"]["errors"].values())
    control_errors = sum(failover["control"]["totals"]["errors"].values())

    with tempfile.TemporaryDirectory(prefix="bench-autosplit-") as root:
        autosplit = _autosplit_experiment(keys, duration, root)
    with tempfile.TemporaryDirectory(prefix="bench-replica-") as root:
        replica = _replica_experiment(keys, root)

    table = Table(
        title=(f"Cluster plane, {keys} keys, SIGKILL mid-drive, "
               f"{DRIVERS} drivers ({duration:.1f}s per drive)"),
        columns=("experiment", "value"),
    )
    table.add(experiment="failover errors (1 replica)",
              value=replicated_errors)
    table.add(experiment="failover errors (control, no replicas)",
              value=control_errors)
    table.add(experiment="transparent retries (replicated)",
              value=failover["replicated"]["totals"].get("retries", 0))
    table.add(experiment="hot-shard qps pre-split",
              value=round(autosplit["qps_pre"]))
    table.add(experiment="hot-shard qps post-split",
              value=round(autosplit["qps_post"]))
    table.add(experiment="recovery ratio",
              value=round(autosplit["recovery"], 2))
    table.add(experiment="autosplit events", value=autosplit["splits"])
    table.add(experiment="replica comparisons (byte-identical)",
              value=replica["comparisons"])
    table.note(f"cpu_count={os.cpu_count()}; the >=1.5x recovery gate is "
               f"{'enforced' if enforced else 'reported only'} here")
    record_table("cluster", table)

    write_report(
        RESULTS_DIR / "BENCH_cluster.json", "cluster",
        {"keys": keys, "shards": 2, "replicas": 1, "drivers": DRIVERS,
         "duration_s": duration, "cpu_count": os.cpu_count() or 1,
         "gate": gate},
        {"failover_errors": replicated_errors,
         "failover_errors_control": control_errors,
         "failover_retries": failover["replicated"]["totals"].get(
             "retries", 0),
         "zero_error_failover": replicated_errors == 0,
         "autosplit_events": autosplit["splits"],
         "hot_qps_pre_split": autosplit["qps_pre"],
         "hot_qps_post_split": autosplit["qps_post"],
         "split_recovery_ratio": autosplit["recovery"],
         "replica_byte_identical": replica["byte_identical"],
         "gate_enforced": enforced},
        {"gate": gate, "failover": failover, "autosplit": autosplit,
         "replica": replica})

    # Hard claims, never gated: the replicated kill is invisible, the
    # control kill is not, the planner split at least once, and replica
    # reads are exact.
    assert replicated_errors == 0, (
        f"client-visible errors during replicated failover: "
        f"{failover['replicated']['totals']['errors']}")
    assert control_errors > 0, (
        "control run absorbed the kill; the comparison is meaningless")
    assert autosplit["splits"] >= 1
    assert replica["byte_identical"]

    if enforced:
        assert autosplit["recovery"] >= 1.5, (
            f"hot-shard throughput only recovered "
            f"{autosplit['recovery']:.2f}x after the autosplit")


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "-p", "no:cacheprovider"]))
