"""A6 — scalar temporal aggregation context (paper section 2).

Reproduced narrative: [KS95]'s aggregation tree degenerates under sorted
insertions (linear depth); [MLI00]'s balanced tree stays logarithmic;
the SB-tree matches that balance while living on disk.
"""

import math

from repro.bench.experiments import scalar_context


def test_prior_work_narrative(benchmark, settings, record_table):
    table = benchmark.pedantic(
        lambda: scalar_context(settings), rounds=1, iterations=1,
    )
    record_table("scalar_context", table)

    rows = {row["method"]: row for row in table.rows}
    ks95 = rows["aggregation tree [KS95]"]
    mli00 = rows["balanced tree [MLI00]"]
    sbtree = rows["SB-tree [YW01]"]

    # [KS95] degenerates on sorted input; [MLI00] stays logarithmic.
    assert ks95["depth"] > 20 * mli00["depth"]
    assert mli00["depth"] <= 2 * math.log2(3000 * 2) + 4

    # The SB-tree is the only disk-based method and stays shallow.
    assert sbtree["disk_based"] and not ks95["disk_based"]
    assert sbtree["depth"] <= 6
