"""Tests for the benchmark harness and CLI."""

import pytest

from repro.bench.harness import (
    BenchSettings,
    build_heap_baseline,
    build_mvbt_baseline,
    build_rta_index,
    measure_queries,
    measure_updates,
    space_pages,
)
from repro.core.aggregates import COUNT, SUM
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(paper_config("uniform-long", scale=0.001))


class TestBenchSettings:
    def test_paper_page_size_gives_paper_fanouts(self):
        settings = BenchSettings(page_bytes=4096)
        assert settings.mvsbt_capacity == 203   # (4096-32)/20
        assert settings.mvbt_capacity == 254    # (4096-32)/16

    def test_default_page_size_preserves_ratio(self):
        settings = BenchSettings()
        ratio_default = settings.mvbt_capacity / settings.mvsbt_capacity
        paper = BenchSettings(page_bytes=4096)
        ratio_paper = paper.mvbt_capacity / paper.mvsbt_capacity
        assert ratio_default == pytest.approx(ratio_paper, rel=0.05)

    def test_cost_model_latency(self):
        assert BenchSettings().cost_model.io_latency_s == 0.010


class TestMeasurement:
    def test_measure_updates_counts_operations(self, dataset):
        settings = BenchSettings()
        index = build_rta_index(settings, dataset)
        cost = measure_updates(index, dataset.events, settings)
        assert cost.operations == len(dataset.events)
        assert cost.ios > 0
        assert cost.estimated_s >= cost.cpu_s

    def test_measure_queries_cold_buffer(self, dataset):
        settings = BenchSettings()
        index = build_rta_index(settings, dataset)
        measure_updates(index, dataset.events, settings)
        rects = generate_query_rectangles(QueryRectangleConfig(
            qrs=0.01, count=10, key_space=dataset.config.key_space,
            time_space=dataset.config.time_space,
        ))
        first = measure_queries(index, rects, settings, SUM)
        again = measure_queries(index, rects, settings, SUM)
        # Cold start each time: physical reads happen on both batches.
        assert first.stats.reads > 0
        assert again.stats.reads > 0

    def test_warm_buffer_option(self, dataset):
        settings = BenchSettings()
        index = build_rta_index(settings, dataset)
        measure_updates(index, dataset.events, settings)
        rects = generate_query_rectangles(QueryRectangleConfig(
            qrs=0.01, count=10, key_space=dataset.config.key_space,
            time_space=dataset.config.time_space,
        ))
        measure_queries(index, rects, settings, SUM)           # warm it up
        warm = measure_queries(index, rects, settings, SUM,
                               cold_buffer=False)
        assert warm.stats.reads <= 2  # everything needed is resident

    def test_per_operation_metrics(self, dataset):
        settings = BenchSettings()
        index = build_mvbt_baseline(settings, dataset)
        cost = measure_updates(index, dataset.events, settings)
        assert cost.per_operation_ios == pytest.approx(
            cost.ios / cost.operations)
        assert cost.per_operation_s == pytest.approx(
            cost.estimated_s / cost.operations)

    def test_space_pages_matches_disk(self, dataset):
        settings = BenchSettings()
        index = build_heap_baseline(settings, dataset)
        measure_updates(index, dataset.events, settings)
        assert space_pages(index) == index.pool.disk.live_page_count

    def test_competitors_have_isolated_pools(self, dataset):
        settings = BenchSettings()
        a = build_rta_index(settings, dataset)
        b = build_mvbt_baseline(settings, dataset)
        assert a.pool is not b.pool
        assert a.pool.disk is not b.pool.disk

    def test_count_aggregate_queries(self, dataset):
        settings = BenchSettings()
        index = build_rta_index(settings, dataset, aggregates=(SUM, COUNT))
        measure_updates(index, dataset.events, settings)
        rects = generate_query_rectangles(QueryRectangleConfig(
            qrs=0.1, count=5, key_space=dataset.config.key_space,
            time_space=dataset.config.time_space,
        ))
        cost = measure_queries(index, rects, settings, COUNT)
        assert cost.operations == 5


class TestCli:
    def test_cli_runs_selected_experiments(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        code = main(["--scale", "0.001", "--only", "fig4a",
                     "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "fig4a_space.txt").exists()
        out = capsys.readouterr().out
        assert "Figure 4a" in out
        assert "done in" in out

    def test_cli_rejects_unknown_experiment(self, tmp_path):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--only", "figZZ", "--out", str(tmp_path)])

    def test_cli_no_scale_experiment(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        code = main(["--only", "scalar-context", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "scalar_context.txt").exists()
