"""Tests for experiment tables and ASCII charts."""

import pytest

from repro.bench.ascii_chart import bar_chart
from repro.bench.reporting import Table


@pytest.fixture()
def table():
    t = Table(title="Demo", columns=("x", "y", "z"))
    t.add(x=1, y=10.0, z="a")
    t.add(x=2, y=0.5, z="b")
    return t


class TestTable:
    def test_add_and_column(self, table):
        assert table.column("x") == [1, 2]
        assert table.column("y") == [10.0, 0.5]

    def test_missing_column_rejected(self, table):
        with pytest.raises(ValueError):
            table.add(x=3, y=1.0)  # z missing

    def test_render_contains_everything(self, table):
        table.note("a remark")
        text = table.render()
        assert "Demo" in text
        assert "x" in text and "y" in text and "z" in text
        assert "10" in text and "0.5" in text
        assert "note: a remark" in text

    def test_render_alignment_consistent(self, table):
        lines = table.render().splitlines()
        header = next(l for l in lines if l.startswith("x"))
        separator = lines[lines.index(header) + 1]
        assert len(separator) >= len("x  y  z")

    def test_float_formatting(self):
        t = Table(title="F", columns=("v",))
        t.add(v=123456.789)
        t.add(v=0.000123)
        t.add(v=0.0)
        text = t.render()
        assert "1.23e+05" in text
        assert "0.000123" in text

    def test_empty_table_renders(self):
        t = Table(title="Empty", columns=("a", "b"))
        assert "Empty" in t.render()


class TestBarChart:
    def test_linear_scale(self, table):
        chart = bar_chart(table, "x", ("y",))
        lines = [l for l in chart.splitlines() if "|" in l]
        assert len(lines) == 2
        # Larger value gets the longer bar.
        assert lines[0].count("#") > lines[1].count("#")

    def test_log_scale_for_wide_ranges(self):
        t = Table(title="Wide", columns=("x", "y"))
        t.add(x="a", y=1.0)
        t.add(x="b", y=100000.0)
        chart = bar_chart(t, "x", ("y",))
        lines = [l for l in chart.splitlines() if "|" in l]
        # Log scale: the small value still gets a visible bar.
        assert lines[0].count("#") >= 1
        assert lines[1].count("#") > lines[0].count("#")

    def test_zero_values_get_empty_bars(self):
        t = Table(title="Z", columns=("x", "y"))
        t.add(x="a", y=0.0)
        t.add(x="b", y=5.0)
        chart = bar_chart(t, "x", ("y",))
        zero_line = next(l for l in chart.splitlines() if l.startswith("a"))
        assert "#" not in zero_line

    def test_multi_series_grouping(self, table):
        chart = bar_chart(table, "x", ("y", "y"))
        # Two series per row -> blank separators between groups.
        assert "" in chart.splitlines()

    def test_all_zero_table(self):
        t = Table(title="Z", columns=("x", "y"))
        t.add(x="a", y=0.0)
        chart = bar_chart(t, "x", ("y",))
        assert "a" in chart
