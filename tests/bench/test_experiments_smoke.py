"""Smoke tests: every experiment function runs at tiny scale and returns a
well-formed table.  The benchmarks assert shapes at a larger scale; these
protect plain `pytest tests/` runs against breakage in the experiment
code paths."""

import pytest

from repro.bench import experiments
from repro.bench.harness import BenchSettings

TINY = 0.001


@pytest.fixture(scope="module")
def settings():
    return BenchSettings()


SCALED = [
    ("fig4a_space", dict(points=2)),
    ("fig4b_speedup", dict(qrs_points=(0.01, 1.0), count=10)),
    ("fig4c_buffer", dict(buffer_sizes=(8, 16), count=10)),
    ("update_cost", {}),
    ("dataset_families", dict(count=10)),
    ("ablation_strong_factor", dict(factors=(0.5, 0.9))),
    ("ablation_logical_split", {}),
    ("ablation_merging", {}),
    ("ablation_disposal", dict(burst=32)),
    ("minmax_open_problem", dict(qrs_points=(0.01, 1.0), count=10)),
    ("operational_mix", dict(queries_per_1000_updates=(10,))),
    ("rootstar_overhead", dict(count=10)),
]


@pytest.mark.parametrize("name,kwargs", SCALED, ids=[n for n, _ in SCALED])
def test_experiment_returns_table(settings, name, kwargs):
    func = getattr(experiments, name)
    table = func(settings, scale=TINY, **kwargs)
    assert table.rows, f"{name} produced an empty table"
    assert table.title
    for row in table.rows:
        assert set(table.columns) <= set(row)
    assert table.render()


def test_theorem2_bounds_smoke(settings):
    table = experiments.theorem2_bounds(settings, scales=(0.001,))
    assert len(table.rows) == 1


def test_scalar_context_smoke(settings):
    table = experiments.scalar_context(settings, n_intervals=300,
                                       n_queries=20)
    assert len(table.rows) == 3
    methods = {row["method"] for row in table.rows}
    assert any("SB-tree" in m for m in methods)
