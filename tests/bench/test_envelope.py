"""The consolidated BENCH_*.json envelope and its legacy sniffing."""

from __future__ import annotations

import json

import pytest

from repro.analyze import main as analyze_main
from repro.bench.envelope import (
    SCHEMA_VERSION,
    envelope,
    load_all,
    load_report,
    normalize,
    write_report,
)

LEGACY_INGEST = {
    "scale": 0.003,
    "events": 3000,
    "competitors": {
        "two-MVSBT": {"cpu_speedup": 2.7,
                      "sequential": {"cpu_s": 1.0}, "batched": {"cpu_s": 0.4}},
        "MVBT": {"cpu_speedup": 2.4,
                 "sequential": {"cpu_s": 1.0}, "batched": {"cpu_s": 0.42}},
    },
}

LEGACY_SERVE = {
    "config": {"workers": 8, "duration_s": 5.0},
    "totals": {"requests": 2966, "qps": 1481.4, "errors": {},
               "elapsed_s": 2.0},
    "latency_ms": {"p50": 4.9, "p95": 9.1, "p99": 11.1, "mean": 5.3,
                   "max": 20.0},
}

LEGACY_CACHE = {
    "scale": 0.003,
    "keys": 300,
    "direct": {"speedup": 135.4, "warm_qps": 371793.0,
               "uncached_qps": 2744.0, "byte_identical": True},
    "loadgen": {"speedup": 1.86},
}


class TestNormalize:
    def test_ingest_shape_sniffed(self):
        report = normalize(LEGACY_INGEST)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["bench"] == "ingest"
        assert report["metrics"]["cpu_speedup[two-MVSBT]"] == 2.7
        assert report["config"]["events"] == 3000
        assert report["raw"] == LEGACY_INGEST

    def test_serve_shape_sniffed(self):
        report = normalize(LEGACY_SERVE)
        assert report["bench"] == "serve"
        assert report["metrics"]["qps"] == 1481.4
        assert report["metrics"]["p99_ms"] == 11.1
        assert report["config"]["workers"] == 8

    def test_cache_shape_sniffed(self):
        report = normalize(LEGACY_CACHE)
        assert report["bench"] == "cache"
        assert report["metrics"]["warm_speedup"] == 135.4
        assert report["metrics"]["loadgen_speedup"] == 1.86

    def test_envelope_passes_through(self):
        wrapped = envelope("multicore", {"shards": 4}, {"speedup": 2.1},
                           {"anything": True})
        assert normalize(wrapped) == wrapped

    def test_unknown_shape_keeps_raw(self):
        report = normalize({"mystery": 1}, source="mystery")
        assert report["bench"] == "mystery"
        assert report["metrics"] == {}
        assert report["raw"] == {"mystery": 1}

    def test_nested_metrics_rejected(self):
        with pytest.raises(TypeError):
            envelope("x", {}, {"nested": {"no": 1}}, {})


class TestFiles:
    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_multicore.json"
        written = write_report(path, "multicore", {"shards": 4},
                               {"speedup": 2.5}, {"detail": [1, 2]})
        assert load_report(path) == written

    def test_load_all_orders_by_introducing_pr(self, tmp_path):
        (tmp_path / "BENCH_serve.json").write_text(json.dumps(LEGACY_SERVE))
        (tmp_path / "BENCH_cache.json").write_text(json.dumps(LEGACY_CACHE))
        (tmp_path / "BENCH_ingest.json").write_text(
            json.dumps(LEGACY_INGEST))
        names = list(load_all(tmp_path))
        assert names == ["BENCH_ingest.json", "BENCH_serve.json",
                         "BENCH_cache.json"]


class TestAnalyzeCli:
    def test_bench_subcommand_prints_trajectory(self, tmp_path, capsys):
        (tmp_path / "BENCH_ingest.json").write_text(
            json.dumps(LEGACY_INGEST))
        write_report(tmp_path / "BENCH_multicore.json", "multicore",
                     {"shards": 4}, {"speedup": 2.5, "thread_qps": 1000.0},
                     {})
        assert analyze_main(["bench", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ingest" in out and "multicore" in out
        assert "cpu_speedup[two-MVSBT]" in out
        assert "speedup" in out

    def test_bench_subcommand_empty_dir_fails(self, tmp_path, capsys):
        assert analyze_main(["bench", "--dir", str(tmp_path)]) == 1
