"""Brute-force reference implementations the indexes are tested against.

Every oracle works directly over small explicit collections, trading any
efficiency for obvious correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.model import NOW


@dataclass
class IntervalFunctionOracle:
    """Oracle for SB-tree semantics: a function V(t) updated over intervals."""

    identity: float = 0.0
    combine: object = None  # callable; defaults to addition
    _updates: List[Tuple[int, int, float]] = field(default_factory=list)

    def insert(self, start: int, end: int, value: float) -> None:
        self._updates.append((start, end, value))

    def query(self, t: int) -> float:
        combine = self.combine or (lambda a, b: a + b)
        acc = self.identity
        for start, end, value in self._updates:
            if start <= t < end:
                acc = combine(acc, value)
        return acc


@dataclass
class DominanceSumOracle:
    """Oracle for MVSBT semantics.

    ``insert(k, t, v)`` adds ``v`` to every point of the quadrant
    ``[k, +inf) x [t, +inf)``; ``query(k, t)`` returns the accumulated value
    at the point — i.e. the sum of v over updates with ``k' <= k`` and
    ``t' <= t`` (a dominance sum).
    """

    _updates: List[Tuple[int, int, float]] = field(default_factory=list)

    def insert(self, key: int, t: int, value: float) -> None:
        self._updates.append((key, t, value))

    def query(self, key: int, t: int) -> float:
        return sum(
            value for k, s, value in self._updates if k <= key and s <= t
        )


@dataclass
class TupleStoreOracle:
    """Oracle over explicit temporal tuples: snapshots and RTA aggregates.

    Mirrors the transaction-time model: ``insert`` opens a tuple alive to
    ``NOW``; ``delete`` closes the alive tuple with that key.
    """

    tuples: List[Tuple[int, int, int, float]] = field(default_factory=list)
    # each entry: (key, start, end, value); end == NOW while alive
    _alive: Dict[int, int] = field(default_factory=dict)  # key -> index

    def insert(self, key: int, value: float, t: int) -> None:
        assert key not in self._alive, f"1TNF violation for key {key}"
        self._alive[key] = len(self.tuples)
        self.tuples.append((key, t, NOW, value))

    def delete(self, key: int, t: int) -> None:
        idx = self._alive.pop(key)
        k, s, _, v = self.tuples[idx]
        self.tuples[idx] = (k, s, t, v)

    def snapshot(self, t: int) -> List[Tuple[int, float]]:
        """(key, value) pairs of tuples alive at instant ``t``."""
        return [
            (k, v) for (k, s, e, v) in self.tuples if s <= t < e
        ]

    def range_snapshot(self, low: int, high: int, t: int) -> List[Tuple[int, float]]:
        return [
            (k, v) for (k, v) in self.snapshot(t) if low <= k < high
        ]

    def rta_sum(self, low: int, high: int, t_start: int, t_end: int) -> float:
        """SUM over tuples with key in [low, high) whose interval intersects
        the instants [t_start, t_end)."""
        return sum(
            v for (k, s, e, v) in self.tuples
            if low <= k < high and s < t_end and e > t_start
        )

    def rta_count(self, low: int, high: int, t_start: int, t_end: int) -> int:
        return sum(
            1 for (k, s, e, v) in self.tuples
            if low <= k < high and s < t_end and e > t_start
        )

    def rta_avg(self, low: int, high: int, t_start: int,
                t_end: int) -> Optional[float]:
        count = self.rta_count(low, high, t_start, t_end)
        if count == 0:
            return None
        return self.rta_sum(low, high, t_start, t_end) / count

    def rectangle_tuples(self, low: int, high: int, t_start: int,
                         t_end: int) -> List[Tuple[int, int, int, float]]:
        return [
            (k, s, e, v) for (k, s, e, v) in self.tuples
            if low <= k < high and s < t_end and e > t_start
        ]
