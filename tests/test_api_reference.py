"""The committed API reference must match a fresh regeneration."""

import sys
from pathlib import Path

DOCS = Path(__file__).parent.parent / "docs"


def test_api_md_is_current():
    sys.path.insert(0, str(DOCS))
    try:
        import gen_api
        fresh = gen_api.generate()
    finally:
        sys.path.remove(str(DOCS))
    committed = (DOCS / "API.md").read_text()
    assert committed == fresh, (
        "docs/API.md is stale; run `python docs/gen_api.py`"
    )


def test_api_md_covers_key_classes():
    text = (DOCS / "API.md").read_text()
    for name in ("class `MVSBT`", "class `MVBT`", "class `SBTree`",
                 "class `RTAIndex`", "class `TemporalWarehouse`",
                 "class `RangeMinMaxIndex`", "class `BufferPool`"):
        assert name in text, f"{name} missing from API.md"
