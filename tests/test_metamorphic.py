"""Metamorphic tests: relations that must hold between *different* queries
or *transformed* workloads, independent of any oracle.

These catch bugs a point-by-point oracle comparison can mask (e.g. a
consistent bias applied to both sides of a comparison).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import COUNT, SUM
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 120)


def fresh_pool():
    return BufferPool(InMemoryDiskManager(), capacity=2048)


@st.composite
def op_streams(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert", "delete"]),
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=9),
        ),
        min_size=1, max_size=80,
    ))


def build_index(stream, value_scale=1.0, value_shift_keys=None):
    index = RTAIndex(fresh_pool(), MVSBTConfig(capacity=6),
                     key_space=KEY_SPACE)
    alive = {}
    t = 1
    for op, key, dt, value in stream:
        t += dt
        if op == "insert" and key not in alive:
            index.insert(key, float(value) * value_scale, t)
            alive[key] = value
        elif op == "delete" and key in alive:
            index.delete(key, t)
            del alive[key]
    return index, t


@st.composite
def rectangles(draw):
    k1 = draw(st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1))
    k2 = draw(st.integers(min_value=k1 + 1, max_value=KEY_SPACE[1]))
    t1 = draw(st.integers(min_value=1, max_value=300))
    t2 = draw(st.integers(min_value=t1 + 1, max_value=400))
    return (k1, k2, t1, t2)


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles(), st.integers(min_value=2, max_value=7))
def test_sum_scales_linearly_with_values(stream, rect, factor):
    """SUM(c·values) = c·SUM(values); COUNT is invariant."""
    base, _ = build_index(stream)
    scaled, _ = build_index(stream, value_scale=float(factor))
    k1, k2, t1, t2 = rect
    r, iv = KeyRange(k1, k2), Interval(t1, t2)
    assert scaled.sum(r, iv) == pytest.approx(factor * base.sum(r, iv))
    assert scaled.count(r, iv) == base.count(r, iv)


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles())
def test_monotonicity_in_the_rectangle(stream, rect):
    """COUNT never decreases when the rectangle grows in either dimension."""
    index, _ = build_index(stream)
    k1, k2, t1, t2 = rect
    inner = index.count(KeyRange(k1, k2), Interval(t1, t2))
    wider_keys = index.count(KeyRange(max(k1 - 5, KEY_SPACE[0]),
                                      min(k2 + 5, KEY_SPACE[1])),
                             Interval(t1, t2))
    longer_time = index.count(KeyRange(k1, k2),
                              Interval(max(t1 - 5, 1), t2 + 5))
    assert wider_keys >= inner
    assert longer_time >= inner


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles())
def test_inclusion_exclusion_over_key_ranges(stream, rect):
    """SUM(A ∪ B) = SUM(A) + SUM(B) - SUM(A ∩ B) for overlapping ranges."""
    index, _ = build_index(stream)
    k1, k2, t1, t2 = rect
    if k2 - k1 < 4:
        return
    iv = Interval(t1, t2)
    third = (k2 - k1) // 3
    a = KeyRange(k1, k1 + 2 * third)
    b = KeyRange(k1 + third, k2)
    union = KeyRange(k1, k2)
    intersection = KeyRange(k1 + third, k1 + 2 * third)
    assert index.sum(union, iv) == pytest.approx(
        index.sum(a, iv) + index.sum(b, iv) - index.sum(intersection, iv)
    )


@settings(max_examples=40, deadline=None)
@given(op_streams(), st.integers(min_value=1, max_value=300))
def test_rta_instant_equals_mvsbt_difference(stream, t):
    """RTA over a single instant must equal the raw LKST difference —
    Equation (1) with the LKLT terms cancelling."""
    index, _ = build_index(stream)
    lkst, _lklt = index.trees()[SUM.name]
    k1, k2 = 30, 90
    direct = index.sum(KeyRange(k1, k2), Interval(t, t + 1))
    reduced = lkst.query(k2, t) - lkst.query(k1, t)
    assert direct == pytest.approx(reduced)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(
    st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=9),
), min_size=1, max_size=60))
def test_mvsbt_prefix_monotone_for_positive_streams(updates):
    """With only positive quadrant adds, V(k, t) is non-decreasing in both
    coordinates."""
    pool = fresh_pool()
    tree = MVSBT(pool, MVSBTConfig(capacity=5), key_space=KEY_SPACE)
    t = 1
    for key, dt, value in updates:
        t += dt
        tree.insert(key, t, float(value))
    probes_k = range(KEY_SPACE[0], KEY_SPACE[1], 17)
    for qt in (1, t // 2 + 1, t + 1):
        values = [tree.query(k, qt) for k in probes_k]
        assert values == sorted(values)
    for k in (KEY_SPACE[0], 60, KEY_SPACE[1] - 1):
        over_time = [tree.query(k, qt) for qt in (1, t // 2 + 1, t + 1)]
        assert over_time == sorted(over_time)
