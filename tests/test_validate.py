"""Tests for the randomized self-validation harness."""

import pytest

from repro.validate import ValidationReport, main, run_validation


class TestRunValidation:
    def test_small_run_passes(self, tmp_path):
        report = run_validation(events=600, seed=3, rectangles=30,
                                capacity=8,
                                checkpoint_dir=str(tmp_path / "ck"))
        assert report.ok, report.summary()
        assert report.events > 0
        assert report.rectangles_checked == 30
        assert report.checkpoint_ok is True
        assert report.elapsed_s > 0

    def test_without_checkpoint(self):
        report = run_validation(events=300, seed=5, rectangles=10,
                                capacity=8)
        assert report.checkpoint_ok is None
        assert report.ok

    def test_different_seeds_different_streams(self):
        a = run_validation(events=300, seed=1, rectangles=5, capacity=8)
        b = run_validation(events=300, seed=2, rectangles=5, capacity=8)
        assert a.ok and b.ok
        # Event counts may differ (key collisions skip events).
        assert (a.events, a.rectangles_checked)[1] == 5

    def test_summary_formats(self):
        report = ValidationReport(events=10, rectangles_checked=5,
                                  checkpoint_ok=True, elapsed_s=1.0)
        assert "PASS" in report.summary()
        report.mismatches.append("something")
        assert "FAIL" in report.summary()
        assert "mismatch: something" in report.summary()


class TestCli:
    def test_cli_pass_exit_code(self, capsys):
        code = main(["--events", "300", "--rectangles", "10",
                     "--capacity", "8"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out
