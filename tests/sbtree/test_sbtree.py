"""Unit tests for the SB-tree: semantics, balance, splits, compaction."""

import pytest

from repro.errors import QueryError
from repro.sbtree.tree import SBTree

from tests.oracles import IntervalFunctionOracle


@pytest.fixture()
def tree(pool):
    return SBTree(pool, capacity=4, domain=(1, 101), compact=False)


class TestBasicSemantics:
    def test_fresh_tree_is_identity_everywhere(self, tree):
        for t in (1, 50, 100):
            assert tree.query(t) == 0.0

    def test_single_interval(self, tree):
        tree.insert(10, 20, 5.0)
        assert tree.query(9) == 0.0
        assert tree.query(10) == 5.0
        assert tree.query(19) == 5.0
        assert tree.query(20) == 0.0

    def test_overlapping_intervals_accumulate(self, tree):
        tree.insert(10, 30, 1.0)
        tree.insert(20, 40, 2.0)
        assert tree.query(15) == 1.0
        assert tree.query(25) == 3.0
        assert tree.query(35) == 2.0

    def test_negative_insert_models_deletion(self, tree):
        tree.insert(10, 30, 7.0)
        tree.insert(10, 30, -7.0)
        assert tree.query(15) == 0.0

    def test_whole_domain_interval_touches_only_root(self, tree):
        tree.insert(1, 101, 4.0)
        assert tree.query(1) == 4.0
        assert tree.query(100) == 4.0
        # Parked at the root's single record: still a 1-page tree.
        assert tree.page_count() == 1

    def test_adjacent_intervals_do_not_bleed(self, tree):
        tree.insert(10, 20, 1.0)
        tree.insert(20, 30, 2.0)
        assert tree.query(19) == 1.0
        assert tree.query(20) == 2.0

    def test_instant_interval(self, tree):
        tree.insert(42, 43, 9.0)
        assert tree.query(41) == 0.0
        assert tree.query(42) == 9.0
        assert tree.query(43) == 0.0


class TestValidation:
    def test_interval_outside_domain_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.insert(200, 300, 1.0)

    def test_query_outside_domain_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.query(101)
        with pytest.raises(QueryError):
            tree.query(0)

    def test_interval_clipped_to_domain(self, tree):
        tree.insert(0, 1000, 3.0)  # clipped to [1, 101)
        assert tree.query(1) == 3.0
        assert tree.query(100) == 3.0

    def test_capacity_below_four_rejected(self, pool):
        with pytest.raises(ValueError):
            SBTree(pool, capacity=3)

    def test_empty_domain_rejected(self, pool):
        with pytest.raises(ValueError):
            SBTree(pool, capacity=4, domain=(5, 5))


class TestStructure:
    def test_tree_grows_and_stays_invariant(self, tree):
        for i in range(1, 50):
            tree.insert(i, i + 2, 1.0)
            tree.check_invariants()
        assert tree.height > 1

    def test_height_is_logarithmic(self, pool):
        tree = SBTree(pool, capacity=8, domain=(1, 10_001), compact=False)
        for i in range(1, 1000):
            tree.insert(i * 10, i * 10 + 5, 1.0)
        tree.check_invariants()
        # ~2000 leaf records at b=8: height must stay well under linear.
        assert tree.height <= 6

    def test_long_intervals_cost_constant_records(self, pool):
        """Segment-tree property: a long interval is parked, not pushed down."""
        tree = SBTree(pool, capacity=4, domain=(1, 10_001), compact=False)
        for i in range(200):
            tree.insert(2 * i + 1, 2 * i + 3, 1.0)
        records_before = tree.leaf_record_count()
        tree.insert(1, 10_001, 1.0)  # covers everything
        # A full-domain insert adds no leaf records at all.
        assert tree.leaf_record_count() == records_before

    def test_page_count_matches_all_page_ids(self, tree):
        for i in range(1, 40):
            tree.insert(i, i + 3, 1.0)
        assert tree.page_count() == len(tree._all_page_ids())

    def test_insertions_counter(self, tree):
        tree.insert(1, 5, 1.0)
        tree.insert(2, 6, 1.0)
        assert tree.insertions == 2


class TestCompaction:
    def test_compaction_merges_equal_adjacent_leaves(self, pool):
        compacted = SBTree(pool, capacity=4, domain=(1, 101), compact=True)
        plain = SBTree(pool, capacity=4, domain=(1, 101), compact=False)
        # Insert then cancel: values return to 0 everywhere, compaction
        # should keep the compacted tree small.
        for tree in (compacted, plain):
            for i in range(1, 40):
                tree.insert(i, i + 1, 1.0)
            for i in range(1, 40):
                tree.insert(i, i + 1, -1.0)
        assert compacted.leaf_record_count() < plain.leaf_record_count()

    def test_compaction_preserves_answers(self, pool):
        compacted = SBTree(pool, capacity=4, domain=(1, 201), compact=True)
        oracle = IntervalFunctionOracle()
        updates = [(i * 3 % 150 + 1, i * 7 % 160 + 20, float(i % 5 - 2))
                   for i in range(1, 120)]
        for start, end, value in updates:
            if start < end:
                compacted.insert(start, end, value)
                oracle.insert(start, end, value)
        compacted.check_invariants()
        for t in range(1, 201, 7):
            assert compacted.query(t) == pytest.approx(oracle.query(t))


class TestAgainstOracle:
    def test_dense_random_like_updates(self, pool):
        tree = SBTree(pool, capacity=5, domain=(1, 301), compact=False)
        oracle = IntervalFunctionOracle()
        # Deterministic pseudo-random pattern with varied lengths/values.
        state = 12345
        for _ in range(300):
            state = (state * 1103515245 + 12345) % (2**31)
            start = state % 290 + 1
            state = (state * 1103515245 + 12345) % (2**31)
            length = state % 40 + 1
            end = min(start + length, 301)
            value = float(state % 11 - 5)
            tree.insert(start, end, value)
            oracle.insert(start, end, value)
        tree.check_invariants()
        for t in range(1, 301):
            assert tree.query(t) == pytest.approx(oracle.query(t))

    def test_query_many_matches_individual_queries(self, tree):
        tree.insert(5, 60, 2.0)
        tree.insert(30, 80, 3.0)
        instants = [1, 5, 29, 30, 59, 60, 79, 80, 100]
        assert tree.query_many(instants) == [tree.query(t) for t in instants]


class TestIOAccounting:
    def test_query_io_bounded_by_height(self, pool):
        tree = SBTree(pool, capacity=4, domain=(1, 2001), compact=False)
        for i in range(1, 500):
            tree.insert(i * 4, i * 4 + 2, 1.0)
        pool.clear()
        small = pool.stats.snapshot()
        tree.query(1000)
        delta = pool.stats.delta(small)
        assert delta.logical_reads <= tree.height
