"""Tests for cumulative aggregates via two SB-trees (paper section 2.2)."""

import pytest

from repro.errors import QueryError
from repro.sbtree.cumulative import CumulativeSBTree


@pytest.fixture()
def cum(pool):
    return CumulativeSBTree(pool, capacity=4, domain=(1, 1001))


def brute_cumulative(tuples, t, w):
    """Aggregate of tuples [s, e) intersecting the window instants [t-w, t]."""
    window_start = max(t - w, 1)
    return sum(
        v for (s, e, v) in tuples if s <= t and e > window_start
    )


class TestInstantaneous:
    def test_alive_tuple_counted(self, cum):
        cum.insert(10, 5.0)
        assert cum.instantaneous(10) == 5.0
        assert cum.instantaneous(500) == 5.0
        assert cum.instantaneous(9) == 0.0

    def test_closed_tuple_drops_out(self, cum):
        cum.insert(10, 5.0)
        cum.close(10, 50, 5.0)
        assert cum.instantaneous(49) == 5.0
        assert cum.instantaneous(50) == 0.0


class TestCumulative:
    def test_window_zero_equals_instantaneous_for_alive(self, cum):
        cum.insert(10, 3.0)
        assert cum.cumulative(20, 0) == cum.instantaneous(20)

    def test_dead_tuple_counted_while_in_window(self, cum):
        cum.insert_interval(10, 20, 4.0)  # alive over instants 10..19
        # At t=25 with w=10 the window covers 15..25: tuple intersects.
        assert cum.cumulative(25, 10) == 4.0
        # At t=40 with w=10 the window covers 30..40: tuple is long gone.
        assert cum.cumulative(40, 10) == 0.0

    def test_window_boundary_inclusive(self, cum):
        cum.insert_interval(10, 20, 1.0)  # last alive instant is 19
        assert cum.cumulative(29, 10) == 1.0   # window starts at 19
        assert cum.cumulative(30, 10) == 0.0   # window starts at 20

    def test_negative_window_rejected(self, cum):
        with pytest.raises(QueryError):
            cum.cumulative(10, -1)

    def test_window_clipped_at_domain_start(self, cum):
        cum.insert_interval(1, 5, 2.0)
        assert cum.cumulative(3, 10**6) == 2.0

    def test_matches_brute_force_over_many_windows(self, cum):
        tuples = [
            (5, 30, 2.0), (10, 15, 1.0), (20, 900, 3.0), (50, 60, -4.0),
            (100, 101, 7.0), (200, 450, 1.5), (2, 999, 0.5),
        ]
        for s, e, v in tuples:
            cum.insert_interval(s, e, v)
        for t in (1, 5, 14, 15, 30, 59, 60, 100, 101, 250, 500, 950):
            for w in (0, 1, 5, 50, 400):
                assert cum.cumulative(t, w) == pytest.approx(
                    brute_cumulative(tuples, t, w)
                ), (t, w)

    def test_transaction_time_stream(self, cum):
        # Open/close in time order, query historical windows afterwards.
        cum.insert(10, 1.0)          # key A
        cum.insert(20, 2.0)          # key B
        cum.close(10, 30, 1.0)       # A dies at 30
        cum.insert(40, 4.0)          # key C
        cum.close(20, 50, 2.0)       # B dies at 50
        tuples = [(10, 30, 1.0), (20, 50, 2.0), (40, 1001, 4.0)]
        for t in (10, 29, 30, 39, 40, 49, 50, 60, 500):
            for w in (0, 10, 25, 100):
                assert cum.cumulative(t, w) == pytest.approx(
                    brute_cumulative(tuples, t, w)
                ), (t, w)
