"""Checkpoint round-trips for the min/max SB-tree, including window
queries after reload (the child_agg augmentation must survive the codec)."""

import pytest

from repro.sbtree.minmax import MinMaxSBTree
from repro.sbtree.tree import SBTree

DOMAIN = (1, 2001)


def loaded_tree(pool, mode):
    tree = MinMaxSBTree(pool, capacity=4, domain=DOMAIN, mode=mode)
    state = 17
    for _ in range(300):
        state = (state * 48271) % (2**31 - 1)
        start = state % 1900 + 1
        end = min(start + state % 80 + 1, DOMAIN[1])
        tree.insert(start, end, float(state % 997))
    return tree


@pytest.mark.parametrize("mode", ["min", "max"])
def test_window_queries_survive_reload(pool, tmp_path, mode):
    tree = loaded_tree(pool, mode)
    tree.save(str(tmp_path / "mm"))
    reopened = MinMaxSBTree.load(str(tmp_path / "mm"))
    assert isinstance(reopened, MinMaxSBTree)
    assert reopened.mode == mode
    for lo in range(1, 2000, 173):
        for width in (1, 50, 700):
            hi = min(lo + width, DOMAIN[1])
            if lo >= hi:
                continue
            assert reopened.window_query(lo, hi) \
                == tree.window_query(lo, hi), (lo, hi)
            assert reopened.query(lo) == tree.query(lo)


def test_reloaded_tree_keeps_augmentation_consistent(pool, tmp_path):
    tree = loaded_tree(pool, "min")
    tree.save(str(tmp_path / "mm"))
    reopened = MinMaxSBTree.load(str(tmp_path / "mm"))
    # Further insertions keep window queries exact (aggregates maintained
    # through the reloaded records).
    reopened.insert(500, 600, -1.0)
    assert reopened.window_query(550, 560) == -1.0
    assert reopened.window_query(1, 2001) == -1.0
    before = tree.window_query(700, 900)
    assert reopened.window_query(700, 900) == before


def test_plain_sbtree_load_does_not_gain_minmax_api(pool, tmp_path):
    tree = SBTree(pool, capacity=4, domain=DOMAIN)
    tree.insert(10, 20, 5.0)
    tree.save(str(tmp_path / "sb"))
    reopened = SBTree.load(str(tmp_path / "sb"))
    assert not isinstance(reopened, MinMaxSBTree)
    assert reopened.query(15) == 5.0
