"""Hypothesis property tests: SB-tree vs the interval-function oracle."""

from hypothesis import given, settings, strategies as st

from repro.sbtree.tree import SBTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import IntervalFunctionOracle

DOMAIN = (1, 301)


def intervals():
    return st.tuples(
        st.integers(min_value=DOMAIN[0], max_value=DOMAIN[1] - 1),
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=-10, max_value=10),
    ).map(lambda t: (t[0], min(t[0] + t[1], DOMAIN[1]), float(t[2])))


@st.composite
def update_streams(draw):
    return draw(st.lists(intervals(), min_size=1, max_size=120))


def build_tree(updates, capacity=4, compact=False):
    pool = BufferPool(InMemoryDiskManager(), capacity=512)
    tree = SBTree(pool, capacity=capacity, domain=DOMAIN, compact=compact)
    oracle = IntervalFunctionOracle()
    for start, end, value in updates:
        tree.insert(start, end, value)
        oracle.insert(start, end, value)
    return tree, oracle


@settings(max_examples=60, deadline=None)
@given(update_streams(), st.integers(min_value=DOMAIN[0], max_value=DOMAIN[1] - 1))
def test_point_query_matches_oracle(updates, t):
    tree, oracle = build_tree(updates)
    assert tree.query(t) == oracle.query(t)


@settings(max_examples=40, deadline=None)
@given(update_streams())
def test_invariants_hold_after_any_stream(updates):
    tree, _ = build_tree(updates)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(update_streams(), st.integers(min_value=DOMAIN[0], max_value=DOMAIN[1] - 1))
def test_compaction_never_changes_answers(updates, t):
    compacted, _ = build_tree(updates, compact=True)
    plain, _ = build_tree(updates, compact=False)
    assert compacted.query(t) == plain.query(t)
    compacted.check_invariants()


@settings(max_examples=30, deadline=None)
@given(update_streams(), st.integers(min_value=5, max_value=9))
def test_capacity_does_not_change_semantics(updates, capacity):
    wide, oracle = build_tree(updates, capacity=capacity)
    for t in range(DOMAIN[0], DOMAIN[1], 17):
        assert wide.query(t) == oracle.query(t)


@settings(max_examples=30, deadline=None)
@given(update_streams())
def test_insertion_order_is_irrelevant(updates):
    forward, _ = build_tree(updates)
    backward, _ = build_tree(list(reversed(updates)))
    for t in range(DOMAIN[0], DOMAIN[1], 13):
        assert forward.query(t) == backward.query(t)
