"""Tests for the insert-only MIN/MAX SB-tree variant."""

import pytest

from repro.sbtree.minmax import MinMaxSBTree

from tests.oracles import IntervalFunctionOracle


class TestMin:
    @pytest.fixture()
    def tree(self, pool):
        return MinMaxSBTree(pool, capacity=4, domain=(1, 201), mode="min")

    def test_uncovered_instant_reports_identity(self, tree):
        assert tree.query(50) == float("inf")
        assert not tree.covered(50)

    def test_min_over_overlapping_intervals(self, tree):
        tree.insert(10, 100, 5.0)
        tree.insert(40, 60, 2.0)
        tree.insert(50, 55, 9.0)
        assert tree.query(20) == 5.0
        assert tree.query(45) == 2.0
        assert tree.query(52) == 2.0
        assert tree.query(70) == 5.0

    def test_covered_flag(self, tree):
        tree.insert(10, 20, 1.0)
        assert tree.covered(10)
        assert not tree.covered(20)

    def test_matches_oracle(self, tree):
        oracle = IntervalFunctionOracle(identity=float("inf"), combine=min)
        state = 99
        for _ in range(200):
            state = (state * 48271) % (2**31 - 1)
            start = state % 180 + 1
            state = (state * 48271) % (2**31 - 1)
            end = min(start + state % 30 + 1, 201)
            value = float(state % 100)
            tree.insert(start, end, value)
            oracle.insert(start, end, value)
        tree.check_invariants()
        for t in range(1, 201, 3):
            assert tree.query(t) == oracle.query(t)


class TestMax:
    @pytest.fixture()
    def tree(self, pool):
        return MinMaxSBTree(pool, capacity=4, domain=(1, 201), mode="max")

    def test_max_semantics(self, tree):
        tree.insert(10, 100, 5.0)
        tree.insert(40, 60, 2.0)
        assert tree.query(45) == 5.0
        tree.insert(44, 46, 11.0)
        assert tree.query(45) == 11.0
        assert tree.query(47) == 5.0

    def test_identity_is_minus_infinity(self, tree):
        assert tree.query(5) == float("-inf")


def test_invalid_mode_rejected(pool):
    with pytest.raises(ValueError):
        MinMaxSBTree(pool, mode="median")
