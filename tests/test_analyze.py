"""Tests for the ANALYZE module (structural statistics)."""

import pytest

from repro.analyze import describe, render_report
from repro.core.rta import RTAIndex
from repro.core.warehouse import TemporalWarehouse
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.sbtree.tree import SBTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 1001)


def fresh_pool():
    return BufferPool(InMemoryDiskManager(), capacity=1024)


class TestDescribe:
    def test_mvsbt_report(self):
        tree = MVSBT(fresh_pool(), MVSBTConfig(capacity=6),
                     key_space=KEY_SPACE)
        for t in range(1, 60):
            tree.insert((t * 37) % 999 + 1, t, 1.0)
        report = describe(tree)
        assert report["type"] == "mvsbt"
        assert report["pages"] == tree.pool.disk.live_page_count
        assert report["records"] \
            == report["alive_records"] + report["dead_records"]
        assert report["height"] == tree.height()
        assert 0 < report["avg_fill"] <= 1.0
        assert report["counters"]["insertions"] == 59
        assert sum(report["pages_by_level"].values()) == report["pages"]

    def test_mvbt_report(self):
        tree = MVBT(fresh_pool(), MVBTConfig(capacity=6),
                    key_space=KEY_SPACE)
        for t in range(1, 60):
            tree.insert((t * 17) % 999 + 1, 1.0, t)  # injective: 1TNF safe
        report = describe(tree)
        assert report["type"] == "mvbt"
        assert report["counters"]["inserts"] == 59
        assert report["roots"] >= 1
        # Physical alive copies: version splits replicate alive entries,
        # so there are at least as many copies as logical alive tuples.
        assert report["alive_records"] >= 59

    def test_sbtree_report(self):
        tree = SBTree(fresh_pool(), capacity=4, domain=(1, 1001))
        for i in range(1, 50):
            tree.insert(i, i + 5, 1.0)
        report = describe(tree)
        assert report["type"] == "sbtree"
        assert report["insertions"] == 49
        assert report["leaf_records"] <= report["records"]
        assert report["height"] == tree.height

    def test_rta_report_aggregates_trees(self):
        index = RTAIndex(fresh_pool(), MVSBTConfig(capacity=8),
                         key_space=KEY_SPACE)
        for t in range(1, 40):
            index.insert(t * 20, 1.0, t)
        report = describe(index)
        assert report["type"] == "rta-index"
        assert set(report["trees"]) == {"SUM", "COUNT"}
        assert report["alive_tuples"] == 39
        assert report["pages"] == index.pool.disk.live_page_count

    def test_warehouse_report(self):
        warehouse = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 1.0, t=5)
        report = describe(warehouse)
        assert report["type"] == "temporal-warehouse"
        assert report["tuples"]["type"] == "mvbt"
        assert report["aggregates"]["type"] == "rta-index"

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            describe(42)


class TestRenderReport:
    def test_nested_rendering(self):
        report = {"a": 1, "b": {"c": 2.5, "d": {"e": "x"}}}
        text = render_report(report)
        assert "a: 1" in text
        assert "c: 2.5" in text
        assert "e: x" in text
        # Nesting indents deeper levels.
        assert "\n  c" in text or "  c: 2.5" in text

    def test_real_report_renders(self):
        tree = MVSBT(fresh_pool(), key_space=KEY_SPACE)
        tree.insert(100, 5, 1.0)
        text = render_report(describe(tree))
        assert "type: mvsbt" in text
        assert "pages:" in text
