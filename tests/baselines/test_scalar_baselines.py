"""Tests for the main-memory scalar baselines ([KS95], [MLI00])."""

import pytest

from repro.baselines.aggregation_tree import AggregationTree
from repro.baselines.balanced_tree import (
    BalancedTemporalAggregate,
    RedBlackPrefixTree,
)
from repro.errors import QueryError

from tests.oracles import IntervalFunctionOracle


class TestAggregationTree:
    def test_basic_semantics(self):
        tree = AggregationTree(domain=(1, 101))
        tree.insert(10, 20, 5.0)
        assert tree.aggregate(9) == 0.0
        assert tree.aggregate(10) == 5.0
        assert tree.aggregate(19) == 5.0
        assert tree.aggregate(20) == 0.0

    def test_overlaps_accumulate(self):
        tree = AggregationTree(domain=(1, 101))
        tree.insert(10, 50, 1.0)
        tree.insert(30, 70, 2.0)
        assert tree.aggregate(40) == 3.0

    def test_matches_oracle(self):
        tree = AggregationTree(domain=(1, 301))
        oracle = IntervalFunctionOracle()
        state = 5
        for _ in range(250):
            state = (state * 48271) % (2**31 - 1)
            start = state % 280 + 1
            end = min(start + state % 30 + 1, 301)
            value = float(state % 9 - 4)
            tree.insert(start, end, value)
            oracle.insert(start, end, value)
        for t in range(1, 301, 3):
            assert tree.aggregate(t) == pytest.approx(oracle.query(t))

    def test_degenerates_on_sorted_insertions(self):
        """The documented [KS95] weakness: sorted endpoints -> linear depth."""
        tree = AggregationTree(domain=(1, 10_001))
        for i in range(1, 2000):
            tree.insert(i, i + 1, 1.0)
        assert tree.depth() > 500  # essentially a linked list

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            AggregationTree(domain=(5, 5))
        tree = AggregationTree(domain=(1, 100))
        with pytest.raises(QueryError):
            tree.insert(200, 300, 1.0)
        with pytest.raises(QueryError):
            tree.aggregate(100)

    def test_node_count_grows(self):
        tree = AggregationTree(domain=(1, 1001))
        assert tree.node_count() == 1
        tree.insert(10, 20, 1.0)
        assert tree.node_count() > 1


class TestRedBlackPrefixTree:
    def test_prefix_sums(self):
        tree = RedBlackPrefixTree()
        tree.add(10, 1.0)
        tree.add(20, 2.0)
        tree.add(5, 4.0)
        assert tree.prefix_sum(4) == 0.0
        assert tree.prefix_sum(5) == 4.0
        assert tree.prefix_sum(10) == 5.0
        assert tree.prefix_sum(19) == 5.0
        assert tree.prefix_sum(100) == 7.0
        assert tree.total() == 7.0

    def test_accumulating_at_existing_key(self):
        tree = RedBlackPrefixTree()
        tree.add(10, 1.0)
        tree.add(10, 2.5)
        assert len(tree) == 1
        assert tree.prefix_sum(10) == 3.5

    def test_stays_balanced_under_sorted_insertions(self):
        tree = RedBlackPrefixTree()
        for i in range(2000):
            tree.add(i, 1.0)
        tree.check_invariants()
        assert tree.depth() <= 2 * 11 + 2  # ~2 log2(n) + O(1)

    def test_invariants_under_random_order(self):
        tree = RedBlackPrefixTree()
        state = 7
        for _ in range(1500):
            state = (state * 48271) % (2**31 - 1)
            tree.add(state % 5000, float(state % 13 - 6))
        tree.check_invariants()

    def test_prefix_sum_matches_brute_force(self):
        tree = RedBlackPrefixTree()
        entries = {}
        state = 3
        for _ in range(500):
            state = (state * 48271) % (2**31 - 1)
            key = state % 300
            delta = float(state % 11 - 5)
            tree.add(key, delta)
            entries[key] = entries.get(key, 0.0) + delta
        for probe in range(0, 310, 7):
            expected = sum(v for k, v in entries.items() if k <= probe)
            assert tree.prefix_sum(probe) == pytest.approx(expected)


class TestBalancedTemporalAggregate:
    def test_basic_semantics(self):
        agg = BalancedTemporalAggregate()
        agg.insert(10, 20, 5.0)
        assert agg.aggregate(9) == 0.0
        assert agg.aggregate(10) == 5.0
        assert agg.aggregate(19) == 5.0
        assert agg.aggregate(20) == 0.0

    def test_empty_interval_rejected(self):
        with pytest.raises(QueryError):
            BalancedTemporalAggregate().insert(5, 5, 1.0)

    def test_matches_oracle(self):
        agg = BalancedTemporalAggregate()
        oracle = IntervalFunctionOracle()
        state = 11
        for _ in range(300):
            state = (state * 48271) % (2**31 - 1)
            start = state % 280 + 1
            end = start + state % 40 + 1
            value = float(state % 9 - 4)
            agg.insert(start, end, value)
            oracle.insert(start, end, value)
        agg.check_invariants()
        for t in range(1, 330, 3):
            assert agg.aggregate(t) == pytest.approx(oracle.query(t))

    def test_balanced_where_aggregation_tree_degenerates(self):
        agg = BalancedTemporalAggregate()
        unbalanced = AggregationTree(domain=(1, 10**6))
        for i in range(1, 2000):
            agg.insert(i, i + 1, 1.0)
            unbalanced.insert(i, i + 1, 1.0)
        assert agg.depth() < 30
        assert unbalanced.depth() > 500
        # Same answers nonetheless.
        for t in (1, 500, 1500, 1999):
            assert agg.aggregate(t) == unbalanced.aggregate(t)
