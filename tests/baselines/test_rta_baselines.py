"""Tests for the RTA-capable baselines and three-way cross-checks."""

import pytest

from repro.baselines.mvbt_rta import MVBTRTABaseline
from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.mvbt.config import MVBTConfig
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 1001)


def fresh_pool():
    return BufferPool(InMemoryDiskManager(), capacity=4096)


class TestHeapFileScan:
    @pytest.fixture()
    def heap(self):
        return HeapFileScanBaseline(fresh_pool(), capacity=4,
                                    key_space=KEY_SPACE)

    def test_insert_query(self, heap):
        heap.insert(100, 7.0, t=5)
        assert heap.sum(KeyRange(1, 1000), Interval(1, 100)) == 7.0
        assert heap.sum(KeyRange(1, 100), Interval(1, 100)) == 0.0

    def test_delete_closes_interval(self, heap):
        heap.insert(100, 7.0, t=5)
        heap.delete(100, t=10)
        assert heap.sum(KeyRange(1, 1000), Interval(10, 20)) == 0.0
        assert heap.sum(KeyRange(1, 1000), Interval(9, 20)) == 7.0

    def test_duplicate_and_missing_keys(self, heap):
        heap.insert(100, 1.0, t=5)
        with pytest.raises(DuplicateKeyError):
            heap.insert(100, 2.0, t=6)
        with pytest.raises(KeyNotFoundError):
            heap.delete(999, t=7)

    def test_aggregates(self, heap):
        heap.insert(100, 2.0, t=5)
        heap.insert(200, 4.0, t=5)
        r, iv = KeyRange(1, 1000), Interval(1, 10)
        assert heap.query(r, iv, COUNT) == 2.0
        assert heap.query(r, iv, AVG) == 3.0
        result = heap.aggregate_all(r, iv)
        assert (result.sum, result.count) == (6.0, 2.0)

    def test_pages_grow_linearly(self, heap):
        for i in range(1, 20):
            heap.insert(i, 1.0, t=i)
        assert heap.page_count() == 5  # 19 tuples / 4 per page
        assert len(heap) == 19

    def test_timeline_two_step_aggregation(self, heap):
        heap.insert(10, 1.0, t=5)
        heap.insert(20, 2.0, t=8)
        heap.delete(10, t=12)
        heap.delete(20, t=15)
        timeline = heap.aggregate_timeline()
        assert timeline == [(5, 8, 1.0), (8, 12, 3.0), (12, 15, 2.0)]

    def test_timeline_with_key_range(self, heap):
        heap.insert(10, 1.0, t=5)
        heap.insert(500, 9.0, t=6)
        timeline = heap.aggregate_timeline(KeyRange(1, 100))
        assert len(timeline) == 1
        assert timeline[0][2] == 1.0

    def test_timeline_empty(self, heap):
        assert heap.aggregate_timeline() == []


class TestMVBTBaseline:
    @pytest.fixture()
    def baseline(self):
        return MVBTRTABaseline(fresh_pool(), MVBTConfig(capacity=8),
                               key_space=KEY_SPACE)

    def test_basic_aggregates(self, baseline):
        baseline.insert(100, 2.0, t=5)
        baseline.insert(200, 4.0, t=5)
        baseline.delete(100, t=20)
        r = KeyRange(1, 1000)
        assert baseline.sum(r, Interval(1, 100)) == 6.0
        assert baseline.sum(r, Interval(20, 100)) == 4.0
        assert baseline.count(r, Interval(1, 100)) == 2.0
        assert baseline.avg(r, Interval(1, 100)) == 3.0
        assert baseline.avg(r, Interval(1, 5)) is None

    def test_update(self, baseline):
        baseline.insert(100, 2.0, t=5)
        baseline.update(100, 8.0, t=10)
        assert baseline.sum(KeyRange(1, 1000), Interval(10, 11)) == 8.0

    def test_page_count(self, baseline):
        for i in range(1, 60):
            baseline.insert(i * 10, 1.0, t=i)
        assert baseline.page_count() > 1
        baseline.check_invariants()


class TestThreeWayCrossCheck:
    """MVSBT-RTA, MVBT baseline, and heap scan must always agree."""

    def _build_all(self, seed=41, steps=250):
        mvsbt = RTAIndex(fresh_pool(), MVSBTConfig(capacity=8),
                         key_space=KEY_SPACE)
        mvbt = MVBTRTABaseline(fresh_pool(), MVBTConfig(capacity=8),
                               key_space=KEY_SPACE)
        heap = HeapFileScanBaseline(fresh_pool(), capacity=8,
                                    key_space=KEY_SPACE)
        competitors = (mvsbt, mvbt, heap)
        alive = []
        state = seed
        for t in range(1, steps):
            state = (state * 48271) % (2**31 - 1)
            if alive and state % 3 == 0:
                key = alive.pop(state % len(alive))
                for c in competitors:
                    c.delete(key, t)
            else:
                key = state % 999 + 1
                if key not in alive:
                    value = float(state % 21 - 10)
                    for c in competitors:
                        c.insert(key, value, t)
                    alive.append(key)
        return competitors

    def test_agreement_on_many_rectangles(self):
        mvsbt, mvbt, heap = self._build_all()
        rectangles = [
            (1, 1001, 1, 250), (100, 300, 50, 80), (400, 900, 200, 210),
            (1, 50, 1, 249), (700, 701, 100, 150), (999, 1001, 1, 250),
            (1, 1001, 249, 250), (500, 501, 125, 126),
        ]
        for (k1, k2, t1, t2) in rectangles:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            expected = heap.aggregate_all(r, iv)
            for competitor in (mvsbt, mvbt):
                got = competitor.aggregate_all(r, iv)
                assert got.sum == pytest.approx(expected.sum), (k1, k2, t1, t2)
                assert got.count == expected.count, (k1, k2, t1, t2)

    def test_mvsbt_queries_cost_fewer_ios_on_large_rectangles(self):
        mvsbt, mvbt, heap = self._build_all(steps=400)
        r, iv = KeyRange(1, 1001), Interval(1, 400)   # whole space

        def io_cost(competitor):
            pool = competitor.pool
            pool.clear()
            before = pool.stats.snapshot()
            competitor.sum(r, iv)
            return pool.stats.delta(before).logical_reads

        assert io_cost(mvsbt) < io_cost(mvbt)
        assert io_cost(mvsbt) < io_cost(heap)
