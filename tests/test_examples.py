"""Every example script must run end to end (they assert internally too)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    # index_comparison reads argv; pin a tiny scale so CI stays fast.
    monkeypatch.setattr(sys, "argv", [str(script), "0.001"])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} printed nothing"


def test_quickstart_numbers():
    """The quickstart's documented answers are exactly right."""
    sys_path_backup = list(sys.path)
    try:
        module = runpy.run_path(
            str(Path(__file__).parent.parent / "examples" / "quickstart.py")
        )
        # Re-derive the documented values through the public API.
        from repro import Interval, KeyRange, RTAIndex
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDiskManager

        index = RTAIndex(BufferPool(InMemoryDiskManager(), capacity=64),
                         key_space=(1, 1_000_001))
        index.insert(1004, 250.0, t=10)
        index.insert(2117, 900.0, t=12)
        index.insert(2118, 100.0, t=15)
        index.delete(1004, t=20)
        index.insert(9500, 50.0, t=25)
        assert index.sum(KeyRange(2000, 3000), Interval(12, 18)) == 1000.0
        assert index.count(KeyRange(2000, 3000), Interval(12, 18)) == 2
        assert index.avg(KeyRange(2000, 3000), Interval(12, 18)) == 500.0
        assert index.count(KeyRange(2000, 3000), Interval(12, 15)) == 1
        assert index.sum(KeyRange(1, 1_000_000), Interval(10, 30)) == 1300.0
        assert index.sum(KeyRange(1, 1_000_000), Interval(20, 30)) == 1050.0
    finally:
        sys.path[:] = sys_path_backup
