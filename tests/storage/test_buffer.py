"""Unit tests for the LRU buffer pool: eviction order, pinning, I/O counting."""

import pytest

from repro.errors import BufferPoolError, PageNotFoundError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture()
def pool():
    return BufferPool(InMemoryDiskManager(), capacity=3)


def _alloc_pages(pool, n):
    pages = [pool.allocate(capacity=4, kind="raw") for _ in range(n)]
    pool.flush_all()
    return pages


def test_allocate_counts_allocation_not_read(pool):
    pool.allocate(capacity=4)
    assert pool.stats.allocations == 1
    assert pool.stats.reads == 0


def test_fetch_hit_costs_no_physical_read(pool):
    (page,) = _alloc_pages(pool, 1)
    before = pool.stats.reads
    fetched = pool.fetch(page.page_id)
    assert fetched is page
    assert pool.stats.reads == before
    assert pool.stats.logical_reads == 1


def test_fetch_miss_reads_from_disk(pool):
    pages = _alloc_pages(pool, 4)  # capacity 3: page 0 evicted
    assert not pool.is_resident(pages[0].page_id)
    pool.fetch(pages[0].page_id)
    assert pool.stats.reads == 1


def test_lru_eviction_order(pool):
    pages = _alloc_pages(pool, 3)
    pool.fetch(pages[0].page_id)  # 0 becomes most-recent
    pool.allocate(capacity=4)     # someone must go: LRU is page 1
    assert pool.is_resident(pages[0].page_id)
    assert not pool.is_resident(pages[1].page_id)
    assert pool.is_resident(pages[2].page_id)


def test_dirty_eviction_writes_back(pool):
    pages = _alloc_pages(pool, 3)
    victim = pool.fetch(pages[0].page_id)
    victim.add("rec")            # dirty
    pool.fetch(pages[1].page_id)
    pool.fetch(pages[2].page_id)
    writes_before = pool.stats.writes
    pool.allocate(capacity=4)    # evicts dirty page 0
    assert pool.stats.writes == writes_before + 1


def test_clean_eviction_costs_no_write(pool):
    _alloc_pages(pool, 3)
    writes_before = pool.stats.writes
    pool.allocate(capacity=4)
    pool.flush_all()
    # Only the newly allocated dirty page should have been written.
    assert pool.stats.writes == writes_before + 1


def test_pinned_page_survives_eviction(pool):
    pages = _alloc_pages(pool, 3)
    pool.fetch(pages[0].page_id)
    pool.pin(pages[0].page_id)
    pool.allocate(capacity=4)
    pool.allocate(capacity=4)
    assert pool.is_resident(pages[0].page_id)
    pool.unpin(pages[0].page_id)


def test_pin_is_nestable(pool):
    (page,) = _alloc_pages(pool, 1)
    pool.pin(page.page_id)
    pool.pin(page.page_id)
    pool.unpin(page.page_id)
    # Still pinned once: eviction pressure must not remove it.
    pool.allocate(capacity=4)
    pool.allocate(capacity=4)
    pool.allocate(capacity=4)
    assert pool.is_resident(page.page_id)
    pool.unpin(page.page_id)


def test_unpin_unpinned_raises(pool):
    (page,) = _alloc_pages(pool, 1)
    with pytest.raises(BufferPoolError):
        pool.unpin(page.page_id)


def test_pin_nonresident_raises(pool):
    pages = _alloc_pages(pool, 4)
    with pytest.raises(BufferPoolError):
        pool.pin(pages[0].page_id)  # evicted above


def test_pinned_context_manager(pool):
    (page,) = _alloc_pages(pool, 1)
    with pool.pinned(page):
        pool.allocate(capacity=4)
        pool.allocate(capacity=4)
        pool.allocate(capacity=4)
        assert pool.is_resident(page.page_id)
    pool.unpin  # released: now evictable
    pool.allocate(capacity=4)
    pool.allocate(capacity=4)
    pool.allocate(capacity=4)
    assert not pool.is_resident(page.page_id)


def test_free_releases_page(pool):
    (page,) = _alloc_pages(pool, 1)
    pool.free(page.page_id)
    assert pool.stats.frees == 1
    with pytest.raises(PageNotFoundError):
        pool.fetch(page.page_id)


def test_free_pinned_page_raises(pool):
    (page,) = _alloc_pages(pool, 1)
    pool.pin(page.page_id)
    with pytest.raises(BufferPoolError):
        pool.free(page.page_id)
    pool.unpin(page.page_id)


def test_clear_flushes_and_empties(pool):
    pages = _alloc_pages(pool, 2)
    pool.fetch(pages[0].page_id).add("rec")
    pool.clear()
    assert pool.resident_page_ids == []
    # Record persisted: refetch sees it.
    assert list(pool.fetch(pages[0].page_id)) == ["rec"]


def test_hit_rate_reflects_misses(pool):
    pages = _alloc_pages(pool, 4)
    pool.fetch(pages[3].page_id)  # hit
    pool.fetch(pages[0].page_id)  # miss
    assert pool.stats.logical_reads == 2
    assert pool.stats.hit_rate == pytest.approx(0.5)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BufferPool(InMemoryDiskManager(), capacity=0)
