"""Unit tests for the Page container."""

import pytest

from repro.errors import PageOverflowError
from repro.storage.page import Page


def test_page_starts_empty_and_clean():
    page = Page(0, capacity=4)
    assert len(page) == 0
    assert not page.dirty
    assert not page.overflowed
    assert page.free_slots == 4


def test_add_marks_dirty_and_counts():
    page = Page(1, capacity=4)
    page.add("a")
    page.add("b")
    assert page.dirty
    assert len(page) == 2
    assert list(page) == ["a", "b"]
    assert page.free_slots == 2


def test_transient_overflow_by_one_is_allowed():
    page = Page(2, capacity=3)
    for rec in range(4):  # capacity + 1: the paper's overflow trigger state
        page.add(rec)
    assert page.overflowed
    assert len(page) == 4


def test_overflow_beyond_one_extra_record_raises():
    page = Page(3, capacity=3)
    for rec in range(4):
        page.add(rec)
    with pytest.raises(PageOverflowError):
        page.add(99)


def test_remove_physically_deletes():
    page = Page(4, capacity=4)
    page.add("x")
    page.add("y")
    page.remove("x")
    assert list(page) == ["y"]


def test_remove_missing_record_raises():
    page = Page(5, capacity=4)
    with pytest.raises(ValueError):
        page.remove("ghost")


def test_capacity_below_two_rejected():
    with pytest.raises(ValueError):
        Page(6, capacity=1)


def test_mark_dirty_flags_in_place_mutation():
    page = Page(7, capacity=4)
    page.add([1])
    page.dirty = False
    page.records[0].append(2)
    page.mark_dirty()
    assert page.dirty


def test_meta_dict_is_per_page():
    a, b = Page(8, 4), Page(9, 4)
    a.meta["level"] = 3
    assert "level" not in b.meta
