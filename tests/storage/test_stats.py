"""Unit tests for I/O statistics and the estimated-time cost model."""

import pytest

from repro.storage.stats import CostModel, CpuTimer, IOStats, OperationCost


def test_total_ios_sums_reads_and_writes():
    stats = IOStats(reads=3, writes=2)
    assert stats.total_ios == 5


def test_hit_rate_with_no_logical_reads_is_perfect():
    assert IOStats().hit_rate == 1.0


def test_hit_rate_computation():
    stats = IOStats(reads=1, logical_reads=4)
    assert stats.hit_rate == pytest.approx(0.75)


def test_hit_rate_clamped_when_reads_exceed_logical_reads():
    # Flush-driven physical writes used to push the raw ratio negative;
    # regression: the rate must stay inside [0, 1] for any counter state.
    stats = IOStats(reads=7, logical_reads=4)
    assert stats.hit_rate == 0.0
    assert 0.0 <= IOStats(reads=1, logical_reads=1000).hit_rate <= 1.0


def test_subtraction_is_delta():
    later = IOStats(reads=5, writes=3, logical_reads=9)
    earlier = IOStats(reads=2, writes=1, logical_reads=4)
    diff = later - earlier
    assert diff == later.delta(earlier)
    assert (diff.reads, diff.writes, diff.logical_reads) == (3, 2, 5)


def test_as_dict_lists_every_counter_field():
    from dataclasses import fields

    stats = IOStats(reads=1, writes=2, logical_reads=3, allocations=4,
                    frees=5, coalesced_writes=6, overcommit=7)
    as_dict = stats.as_dict()
    assert set(as_dict) == {f.name for f in fields(IOStats)}
    assert as_dict["reads"] == 1 and as_dict["overcommit"] == 7
    assert IOStats(**as_dict) == stats


def test_reset_zeroes_everything():
    stats = IOStats(reads=1, writes=2, logical_reads=3, allocations=4, frees=5)
    stats.reset()
    assert stats == IOStats()


def test_snapshot_is_independent_copy():
    stats = IOStats(reads=1)
    snap = stats.snapshot()
    stats.reads = 10
    assert snap.reads == 1


def test_delta_between_snapshots():
    stats = IOStats(reads=5, writes=1, logical_reads=9)
    earlier = IOStats(reads=2, writes=0, logical_reads=3)
    diff = stats.delta(earlier)
    assert (diff.reads, diff.writes, diff.logical_reads) == (3, 1, 6)


def test_addition_of_stats():
    total = IOStats(reads=1, writes=2) + IOStats(reads=3, writes=4)
    assert (total.reads, total.writes) == (4, 6)


def test_cost_model_matches_paper_formula():
    # Paper: estimated time = I/Os x 10 ms + CPU.
    model = CostModel()
    stats = IOStats(reads=100, writes=50)
    assert model.estimate(stats, cpu_s=0.25) == pytest.approx(1.75)


def test_cost_model_custom_latency():
    model = CostModel(io_latency_s=0.001)
    assert model.estimate(IOStats(reads=10), cpu_s=0.0) == pytest.approx(0.01)


def test_cpu_timer_measures_nonnegative_time():
    with CpuTimer() as timer:
        sum(range(10000))
    assert timer.elapsed >= 0.0


def test_operation_cost_estimated_time():
    cost = OperationCost(stats=IOStats(reads=2), cpu_s=0.01)
    assert cost.estimated_time() == pytest.approx(0.03)
