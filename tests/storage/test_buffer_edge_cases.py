"""Edge-case tests for the buffer pool: transient overcommit, victim
selection under heavy pinning, stats under mixed traffic."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


def pool_with_pages(capacity, n_pages):
    pool = BufferPool(InMemoryDiskManager(), capacity=capacity)
    pages = [pool.allocate(capacity=4) for _ in range(n_pages)]
    pool.flush_all()
    return pool, pages


class TestPinnedOvercommit:
    def test_allocation_with_everything_pinned_spills_the_newcomer(self):
        pool, pages = pool_with_pages(2, 2)
        pool.pin(pages[0].page_id)
        pool.pin(pages[1].page_id)
        writes = pool.stats.writes
        # The only unpinned page is the newcomer itself: it is written
        # back immediately, the pinned pages stay, nothing deadlocks.
        extra = pool.allocate(capacity=4)
        extra.add("rec")  # the caller's reference stays usable
        assert not pool.is_resident(extra.page_id)
        assert pool.stats.writes == writes + 1
        assert pool.is_resident(pages[0].page_id)
        assert pool.is_resident(pages[1].page_id)
        pool.unpin(pages[0].page_id)
        pool.unpin(pages[1].page_id)
        # The spilled page's content is durably reachable.
        assert list(pool.fetch(extra.page_id)) == ["rec"]

    def test_batch_fetch_never_evicts_the_page_it_admits(self):
        # Regression: inside a batch window with the pool over capacity
        # and every other candidate dirty-deferred, the victim scan used
        # to pick the page fetch() was admitting — the caller's pin()
        # then failed on a non-resident page (hit by buffered ingest
        # right after a checkpoint repopulated the candidate list).
        pool, pages = pool_with_pages(2, 4)
        pool.begin_batch()
        for page in pages[1:]:
            fetched = pool.fetch(page.page_id)
            fetched.add("dirt")
            fetched.dirty = True
        fetched = pool.fetch(pages[0].page_id)
        assert pool.is_resident(pages[0].page_id)
        pool.pin(pages[0].page_id)  # must not raise
        pool.unpin(pages[0].page_id)
        pool.end_batch()

    def test_fully_pinned_fetch_overcommits_transiently(self):
        pool, pages = pool_with_pages(2, 3)
        pool.fetch(pages[0].page_id)
        pool.fetch(pages[1].page_id)
        pool.pin(pages[0].page_id)
        pool.pin(pages[1].page_id)
        # Fetching a third page with every frame pinned: the pool grows
        # past capacity rather than deadlocking (index splits hold
        # O(height) pins), and the incoming page is the next victim.
        fetched = pool.fetch(pages[2].page_id)
        assert fetched.page_id == pages[2].page_id
        pool.unpin(pages[0].page_id)
        pool.unpin(pages[1].page_id)

    def test_victim_skips_pinned_lru(self):
        pool, pages = pool_with_pages(3, 3)
        # Page 0 is LRU but pinned: page 1 must be evicted instead.
        pool.fetch(pages[2].page_id)
        pool.fetch(pages[1].page_id)
        pool.fetch(pages[0].page_id)
        lru_order = pool.resident_page_ids
        assert lru_order[0] == pages[2].page_id
        pool.pin(pages[2].page_id)
        pool.allocate(capacity=4)
        assert pool.is_resident(pages[2].page_id)
        assert not pool.is_resident(pages[1].page_id)
        pool.unpin(pages[2].page_id)


class TestClearAndFlushSemantics:
    def test_clear_with_pins_rejected(self):
        from repro.errors import BufferPoolError

        pool, pages = pool_with_pages(4, 2)
        pool.pin(pages[0].page_id)
        with pytest.raises(BufferPoolError):
            pool.clear()
        pool.unpin(pages[0].page_id)
        pool.clear()

    def test_flush_nonresident_is_noop(self):
        pool, pages = pool_with_pages(1, 3)  # most pages evicted
        writes = pool.stats.writes
        for page in pages:
            pool.flush(page.page_id)
        # Only the one resident page could have been flushed, and it was
        # clean already.
        assert pool.stats.writes == writes

    def test_flush_all_idempotent(self):
        pool, pages = pool_with_pages(4, 2)
        pool.fetch(pages[0].page_id).add("rec")
        pool.flush_all()
        writes = pool.stats.writes
        pool.flush_all()
        assert pool.stats.writes == writes


class TestStatsUnderTraffic:
    def test_interleaved_hits_and_misses(self):
        pool, pages = pool_with_pages(2, 4)
        for _ in range(3):
            for page in pages:
                pool.fetch(page.page_id)
        # Capacity 2 over 4 pages in cyclic order: every fetch misses.
        assert pool.stats.hit_rate < 0.2
        assert pool.stats.logical_reads == 12

    def test_working_set_within_capacity_all_hits(self):
        pool, pages = pool_with_pages(4, 3)
        for page in pages:
            pool.fetch(page.page_id)
        before = pool.stats.reads
        for _ in range(5):
            for page in pages:
                pool.fetch(page.page_id)
        assert pool.stats.reads == before
