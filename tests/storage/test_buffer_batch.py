"""Batch-window behavior of the buffer pool: coalescing, pins, overcommit."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture()
def pool():
    return BufferPool(InMemoryDiskManager(), capacity=3)


def _alloc_pages(pool, n, dirty=False):
    pages = [pool.allocate(capacity=4, kind="raw") for _ in range(n)]
    if not dirty:
        pool.flush_all()
    return pages


def test_end_batch_without_begin_raises(pool):
    with pytest.raises(BufferPoolError):
        pool.end_batch()


def test_in_batch_tracks_nesting(pool):
    assert not pool.in_batch
    pool.begin_batch()
    pool.begin_batch()
    assert pool.in_batch
    pool.end_batch()
    assert pool.in_batch          # inner close keeps the window open
    pool.end_batch()
    assert not pool.in_batch


def test_flush_batch_writes_each_dirty_page_once(pool):
    pages = _alloc_pages(pool, 3, dirty=True)
    pool.begin_batch()
    for page in pages:
        page.add("x")
        page.add("y")             # two mutations, one eventual write
    written = pool.flush_batch()
    assert written == 3
    assert all(not page.dirty for page in pages)
    pool.end_batch()


def test_outermost_end_batch_flushes(pool):
    pool.begin_batch()
    pages = _alloc_pages(pool, 2, dirty=True)
    writes_before = pool.stats.writes
    pool.end_batch()
    assert pool.stats.writes == writes_before + 2
    assert all(not page.dirty for page in pages)


def test_batch_window_defers_dirty_evictions_and_counts_them(pool):
    pool.begin_batch()
    pages = _alloc_pages(pool, 3, dirty=True)
    writes_before = pool.stats.writes
    pool.allocate(capacity=4)     # over capacity; every frame is dirty
    # Nothing was written mid-window: the dirty frames were deferred.
    assert pool.stats.writes == writes_before
    assert pool.stats.coalesced_writes > 0
    assert all(pool.is_resident(page.page_id) for page in pages)
    pool.end_batch()


def test_batch_window_prefers_clean_victims(pool):
    pool.begin_batch()
    clean = _alloc_pages(pool, 1)[0]          # flushed: clean
    dirty = _alloc_pages(pool, 2, dirty=True)
    pool.allocate(capacity=4)                 # needs one eviction
    assert not pool.is_resident(clean.page_id)
    assert all(pool.is_resident(page.page_id) for page in dirty)
    pool.end_batch()


def test_flush_batch_keeps_pinned_pages_resident(pool):
    """Regression: writing back a pinned dirty page must not evict it."""
    pool.begin_batch()
    pages = _alloc_pages(pool, 3, dirty=True)
    pool.pin(pages[0].page_id)
    pool.flush_batch()
    assert pool.is_resident(pages[0].page_id)
    assert not pages[0].dirty                 # written in place
    pages[0].add("still-usable")              # the caller's reference is live
    pool.unpin(pages[0].page_id)
    pool.end_batch()


def test_flush_batch_trims_back_to_capacity(pool):
    pool.begin_batch()
    pages = _alloc_pages(pool, 6, dirty=True)  # over-committed window
    assert len(pool.resident_page_ids) == 6
    pool.flush_batch()
    assert len(pool.resident_page_ids) == pool.capacity
    # Every page is on disk regardless of which frames were trimmed.
    for page in pages:
        assert pool.disk.read(page.page_id) is page
    pool.end_batch()


def test_overcommit_counter_when_nothing_evictable(pool):
    pool.begin_batch()
    pages = _alloc_pages(pool, 3)
    for page in pages:
        pool.pin(page.page_id)
    assert pool.stats.overcommit == 0
    # Every frame is pinned and the newcomer is dirty inside the window:
    # there is no victim, so the pool over-commits and says so.
    extra = pool.allocate(capacity=4)
    assert pool.stats.overcommit == 1
    assert pool.is_resident(extra.page_id)     # transient over-capacity
    for page in pages:
        pool.unpin(page.page_id)
    pool.end_batch()


def test_unpinned_page_becomes_candidate_again(pool):
    pool.begin_batch()
    pages = _alloc_pages(pool, 3)              # all clean
    pool.pin(pages[0].page_id)
    pool.allocate(capacity=4)                  # evicts a clean unpinned page
    assert pool.is_resident(pages[0].page_id)
    pool.unpin(pages[0].page_id)
    pool.allocate(capacity=4)
    # The unpinned clean page is evictable once more.
    assert len(pool.resident_page_ids) <= pool.capacity + 1
    pool.end_batch()


def test_query_phase_unaffected_outside_windows(pool):
    """Outside a window the pool is plain LRU — batch state must not leak."""
    pool.begin_batch()
    _alloc_pages(pool, 3, dirty=True)
    pool.end_batch()
    pages = _alloc_pages(pool, 3)
    pool.fetch(pages[0].page_id)               # 0 most-recent
    pool.allocate(capacity=4)
    assert pool.is_resident(pages[0].page_id)
    assert not pool.is_resident(pages[1].page_id)  # LRU victim
