"""Unit tests for disk managers and serialization round-trips."""

import pytest

from repro.errors import PageNotFoundError
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.storage.serialization import (
    RecordCodec,
    decode_page,
    encode_page,
    records_per_page,
    register_codec,
)


class TestInMemoryDiskManager:
    def test_allocate_assigns_sequential_ids(self):
        disk = InMemoryDiskManager()
        ids = [disk.allocate(capacity=4).page_id for _ in range(3)]
        assert ids == [0, 1, 2]
        assert disk.allocated_count == 3

    def test_read_returns_same_object(self):
        disk = InMemoryDiskManager()
        page = disk.allocate(capacity=4)
        page.add("rec")
        assert disk.read(page.page_id) is page

    def test_read_missing_raises(self):
        disk = InMemoryDiskManager()
        with pytest.raises(PageNotFoundError):
            disk.read(7)

    def test_free_then_read_raises(self):
        disk = InMemoryDiskManager()
        page = disk.allocate(capacity=4)
        disk.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            disk.read(page.page_id)

    def test_double_free_raises(self):
        disk = InMemoryDiskManager()
        page = disk.allocate(capacity=4)
        disk.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            disk.free(page.page_id)

    def test_live_page_count_tracks_frees(self):
        disk = InMemoryDiskManager()
        pages = [disk.allocate(capacity=4) for _ in range(5)]
        disk.free(pages[2].page_id)
        assert disk.live_page_count == 4
        assert pages[2].page_id not in set(disk.live_page_ids())


# A trivial test codec: records are (int, int) pairs.
register_codec("test-pair", RecordCodec(
    fmt="<qq",
    to_tuple=lambda rec: rec,
    from_tuple=lambda tup: tup,
))


class TestSerialization:
    def test_records_per_page_matches_paper_setting(self):
        # Paper: 4 KB pages, 16-byte records (4 x 4-byte fields).
        assert records_per_page(16, page_bytes=4096) == 254

    def test_records_per_page_rejects_tiny_pages(self):
        with pytest.raises(ValueError):
            records_per_page(100, page_bytes=128)

    def test_records_per_page_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            records_per_page(0)

    def test_page_image_round_trip(self):
        records = [(1, 2), (3, 4), (-5, 2**40)]
        image = encode_page("test-pair", records, page_bytes=256)
        assert len(image) == 256
        kind, decoded = decode_page(image)
        assert kind == "test-pair"
        assert decoded == records

    def test_encode_overfull_page_raises(self):
        records = [(i, i) for i in range(100)]
        with pytest.raises(ValueError):
            encode_page("test-pair", records, page_bytes=256)


class TestFileDiskManager:
    @pytest.fixture()
    def disk(self, tmp_path):
        manager = FileDiskManager(str(tmp_path / "pages.db"), page_bytes=256)
        yield manager
        manager.close()

    def test_round_trip_through_real_file(self, disk):
        page = disk.allocate(capacity=8, kind="test-pair")
        page.records = [(10, 20), (30, 40)]
        disk.write(page)
        reread = disk.read(page.page_id)
        assert reread.records == [(10, 20), (30, 40)]
        assert reread.kind == "test-pair"
        assert reread.capacity == 8

    def test_pages_at_distinct_offsets(self, disk):
        first = disk.allocate(capacity=8, kind="test-pair")
        second = disk.allocate(capacity=8, kind="test-pair")
        first.records = [(1, 1)]
        second.records = [(2, 2)]
        disk.write(first)
        disk.write(second)
        assert disk.read(first.page_id).records == [(1, 1)]
        assert disk.read(second.page_id).records == [(2, 2)]

    def test_free_zeroes_slot(self, disk):
        page = disk.allocate(capacity=8, kind="test-pair")
        page.records = [(9, 9)]
        disk.write(page)
        disk.free(page.page_id)
        assert disk.live_page_count == 0
        with pytest.raises(PageNotFoundError):
            disk.read(page.page_id)

    def test_write_to_freed_page_raises(self, disk):
        page = disk.allocate(capacity=8, kind="test-pair")
        disk.free(page.page_id)
        with pytest.raises(PageNotFoundError):
            disk.write(page)
