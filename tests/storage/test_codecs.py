"""Round-trip tests for every registered record codec.

The checkpoint machinery and the file-backed disk manager both rely on
these codecs; a drift between a record class and its struct layout would
corrupt reopened indexes silently, so every kind is exercised explicitly.
"""

import struct

import pytest

from repro.core.model import NOW
from repro.mvbt.entries import IndexEntry, LeafEntry
from repro.mvsbt.records import MVSBTIndexRecord, MVSBTLeafRecord
from repro.sbtree.node import SBRecord
from repro.storage.serialization import (
    codec_for,
    decode_page,
    encode_page,
    encode_page_flat,
    pack_events,
    unpack_events,
)

CASES = [
    ("sbtree-leaf", SBRecord(start=1, end=NOW, value=2.5)),
    ("sbtree-index", SBRecord(start=10, end=500, value=-3.25, child=42,
                              child_agg=7.125)),
    ("mvbt-leaf", LeafEntry(key=123, start=5, end=NOW, value=9.75)),
    ("mvbt-leaf", LeafEntry(key=1, start=1, end=2, value=-0.5)),
    ("mvbt-index", IndexEntry(low=1, high=10**9, start=1, end=NOW,
                              child=77)),
    ("mvsbt-leaf", MVSBTLeafRecord(low=1, high=50, start=2, end=NOW,
                                   value=1.5)),
    ("mvsbt-index", MVSBTIndexRecord(low=50, high=100, start=2, end=9,
                                     value=-1.5, child=3)),
    ("rootstar", (12345, 678)),
]


@pytest.mark.parametrize("kind,record", CASES,
                         ids=[f"{k}-{i}" for i, (k, _) in enumerate(CASES)])
def test_codec_round_trip(kind, record):
    codec = codec_for(kind)
    assert codec.decode(codec.encode(record)) == record


@pytest.mark.parametrize("kind,record", CASES,
                         ids=[f"{k}-{i}" for i, (k, _) in enumerate(CASES)])
def test_page_image_round_trip(kind, record):
    image = encode_page(kind, [record, record], page_bytes=512)
    decoded_kind, records = decode_page(image)
    assert decoded_kind == kind
    assert records == [record, record]


def test_now_sentinel_survives_serialization():
    """NOW is 2**62 — it must fit the signed 64-bit fields exactly."""
    codec = codec_for("mvsbt-leaf")
    record = MVSBTLeafRecord(low=1, high=2, start=NOW - 1, end=NOW,
                             value=0.0)
    back = codec.decode(codec.encode(record))
    assert back.end == NOW
    assert back.alive


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        codec_for("no-such-kind")


def test_float_precision_preserved():
    codec = codec_for("mvbt-leaf")
    record = LeafEntry(key=1, start=1, end=2, value=0.1 + 0.2)
    assert codec.decode(codec.encode(record)).value == record.value


@pytest.mark.parametrize("kind,record", CASES[:-1],
                         ids=[f"{k}-{i}"
                              for i, (k, _) in enumerate(CASES[:-1])])
def test_flat_encoder_is_byte_identical(kind, record):
    """One bulk struct.pack over concatenated fields must produce the
    exact bytes of the record-at-a-time encoder (the columnar flush
    path's correctness rests on this)."""
    codec = codec_for(kind)
    records = [record] * 3
    flat = []
    for rec in records:
        flat.extend(struct.unpack(codec.fmt, codec.encode(rec)))
    assert (encode_page_flat(kind, len(records), flat, page_bytes=512)
            == encode_page(kind, records, page_bytes=512))


def test_flat_encoder_empty_page():
    assert (encode_page_flat("mvsbt-leaf", 0, [], page_bytes=256)
            == encode_page("mvsbt-leaf", [], page_bytes=256))


def test_flat_encoder_overflow_raises():
    codec = codec_for("mvsbt-leaf")
    flat = list(struct.unpack(
        codec.fmt,
        codec.encode(MVSBTLeafRecord(low=1, high=2, start=1, end=2,
                                     value=0.0)))) * 100
    with pytest.raises(ValueError, match="exceed"):
        encode_page_flat("mvsbt-leaf", 100, flat, page_bytes=256)


class TestEventWireFormat:
    """pack_events/unpack_events — the procpool LOAD fan-out codec."""

    EVENTS = [
        ("insert", 10, 2.5, 1),
        ("delete", 10, 0.0, 7),
        ("insert", 999999999, -0.125, 7),
        ("insert", 1, 0.1 + 0.2, 1000000),
    ]

    def test_round_trip_bare_tuples(self):
        assert unpack_events(pack_events(self.EVENTS)) == self.EVENTS

    def test_round_trip_attr_objects(self):
        class Row:
            def __init__(self, op, key, value, time):
                self.op, self.key = op, key
                self.value, self.time = value, time

        rows = [Row(*event) for event in self.EVENTS]
        assert unpack_events(pack_events(rows)) == self.EVENTS

    def test_empty_batch(self):
        assert unpack_events(pack_events([])) == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            unpack_events(b"not-a-blob" + b"\0" * 64)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown event op"):
            pack_events([("upsert", 1, 1.0, 1)])

    def test_one_contiguous_buffer(self):
        # magic + count + n ops + n*(8+8+8) column bytes, nothing else.
        blob = pack_events(self.EVENTS)
        n = len(self.EVENTS)
        assert len(blob) == 6 + 4 + n + 24 * n
