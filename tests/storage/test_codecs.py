"""Round-trip tests for every registered record codec.

The checkpoint machinery and the file-backed disk manager both rely on
these codecs; a drift between a record class and its struct layout would
corrupt reopened indexes silently, so every kind is exercised explicitly.
"""

import pytest

from repro.core.model import NOW
from repro.mvbt.entries import IndexEntry, LeafEntry
from repro.mvsbt.records import MVSBTIndexRecord, MVSBTLeafRecord
from repro.sbtree.node import SBRecord
from repro.storage.serialization import codec_for, decode_page, encode_page

CASES = [
    ("sbtree-leaf", SBRecord(start=1, end=NOW, value=2.5)),
    ("sbtree-index", SBRecord(start=10, end=500, value=-3.25, child=42,
                              child_agg=7.125)),
    ("mvbt-leaf", LeafEntry(key=123, start=5, end=NOW, value=9.75)),
    ("mvbt-leaf", LeafEntry(key=1, start=1, end=2, value=-0.5)),
    ("mvbt-index", IndexEntry(low=1, high=10**9, start=1, end=NOW,
                              child=77)),
    ("mvsbt-leaf", MVSBTLeafRecord(low=1, high=50, start=2, end=NOW,
                                   value=1.5)),
    ("mvsbt-index", MVSBTIndexRecord(low=50, high=100, start=2, end=9,
                                     value=-1.5, child=3)),
    ("rootstar", (12345, 678)),
]


@pytest.mark.parametrize("kind,record", CASES,
                         ids=[f"{k}-{i}" for i, (k, _) in enumerate(CASES)])
def test_codec_round_trip(kind, record):
    codec = codec_for(kind)
    assert codec.decode(codec.encode(record)) == record


@pytest.mark.parametrize("kind,record", CASES,
                         ids=[f"{k}-{i}" for i, (k, _) in enumerate(CASES)])
def test_page_image_round_trip(kind, record):
    image = encode_page(kind, [record, record], page_bytes=512)
    decoded_kind, records = decode_page(image)
    assert decoded_kind == kind
    assert records == [record, record]


def test_now_sentinel_survives_serialization():
    """NOW is 2**62 — it must fit the signed 64-bit fields exactly."""
    codec = codec_for("mvsbt-leaf")
    record = MVSBTLeafRecord(low=1, high=2, start=NOW - 1, end=NOW,
                             value=0.0)
    back = codec.decode(codec.encode(record))
    assert back.end == NOW
    assert back.alive


def test_unknown_kind_raises():
    with pytest.raises(KeyError):
        codec_for("no-such-kind")


def test_float_precision_preserved():
    codec = codec_for("mvbt-leaf")
    record = LeafEntry(key=1, start=1, end=2, value=0.1 + 0.2)
    assert codec.decode(codec.encode(record)).value == record.value
