"""Group-commit WAL batching: format identity, ordering, concurrency."""

import threading

import pytest

from repro.errors import StorageError
from repro.storage.wal import GroupCommitter, WriteAheadLog
from repro.workloads.generator import UpdateEvent


class TestAppendBatch:
    def test_batch_records_are_indistinguishable_from_serial(self, tmp_path):
        serial = WriteAheadLog(str(tmp_path / "serial"))
        batched = WriteAheadLog(str(tmp_path / "batched"))
        records = [("insert", 10, 1.5, 5), ("insert", 20, 2.0, 6),
                   ("delete", 10, 1.5, 9)]
        for record in records:
            serial.append(*record)
        seqs = batched.append_batch(records)
        assert seqs == [1, 2, 3]
        assert batched.last_seq == serial.last_seq == 3
        serial_lines = (tmp_path / "serial" / "updates.wal").read_bytes()
        batched_lines = (tmp_path / "batched" / "updates.wal").read_bytes()
        assert serial_lines == batched_lines
        serial.close()
        batched.close()

    def test_batch_replays_as_ordinary_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append_batch([("insert", 1, 1.0, 1), ("insert", 2, 2.0, 1)])
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.records() == [
            UpdateEvent("insert", 1, 1.0, 1),
            UpdateEvent("insert", 2, 2.0, 1),
        ]
        reopened.close()

    def test_empty_batch_writes_nothing(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.append_batch([]) == []
        assert wal.last_seq == 0
        wal.close()

    def test_unknown_op_rejected_before_any_write(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(StorageError):
            wal.append_batch([("insert", 1, 1.0, 1), ("compact", 2, 0.0, 1)])
        # Validation happens before the buffered write: nothing landed.
        assert len(wal.records()) == 0
        wal.close()


class TestGroupCommitter:
    def test_single_thread_append_matches_wal(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        committer = GroupCommitter(wal)
        assert committer.append("insert", 1, 1.0, 1) == 1
        assert committer.append("delete", 1, 1.0, 2) == 2
        assert [e.op for e in wal.records()] == ["insert", "delete"]
        wal.close()

    def test_commit_returns_contiguous_seqs_per_group(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        committer = GroupCommitter(wal)
        seqs = committer.commit([("insert", 1, 1.0, 1),
                                 ("insert", 2, 2.0, 1)])
        assert seqs == [1, 2]
        assert committer.commit([("insert", 3, 3.0, 2)]) == [3]
        wal.close()

    def test_concurrent_commits_log_every_record_once(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        committer = GroupCommitter(wal)
        writers, per = 8, 40
        barrier = threading.Barrier(writers)
        seqs_by_writer = {}

        def run(w: int) -> None:
            barrier.wait()
            mine = []
            for i in range(per):
                key = w * per + i + 1
                mine.extend(committer.commit([("insert", key, 1.0, 1)]))
            seqs_by_writer[w] = mine

        threads = [threading.Thread(target=run, args=(w,))
                   for w in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        all_seqs = [s for seqs in seqs_by_writer.values() for s in seqs]
        assert sorted(all_seqs) == list(range(1, writers * per + 1))
        # Each writer's own sequence numbers are monotonic: the group
        # flush preserves arrival order within and across groups.
        for seqs in seqs_by_writer.values():
            assert seqs == sorted(seqs)
        records = wal.records()
        assert len(records) == writers * per
        assert sorted(e.key for e in records) == \
            list(range(1, writers * per + 1))
        stats = committer.stats()
        assert stats["records"] == writers * per
        assert stats["groups"] <= stats["records"]
        assert stats["max_group"] >= 1
        wal.close()

    def test_flush_error_propagates_to_every_member(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        committer = GroupCommitter(wal)
        wal.close()  # next flush hits a closed handle
        with pytest.raises(Exception):
            committer.commit([("insert", 1, 1.0, 1)])
        # The committer stays usable for error reporting: a second
        # commit still raises rather than hanging on leader state.
        with pytest.raises(Exception):
            committer.commit([("insert", 2, 2.0, 1)])

    def test_bad_record_fails_only_its_group(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        committer = GroupCommitter(wal)
        with pytest.raises(StorageError):
            committer.commit([("compact", 1, 1.0, 1)])
        # The bad group burned no sequence numbers (all-or-nothing
        # validation) and left the committer usable.
        assert committer.commit([("insert", 2, 2.0, 1)]) == [1]
        wal.close()
