"""Tests for the write-ahead log and checkpoint+WAL recovery."""

import os

import pytest

from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import StorageError
from repro.storage.wal import WriteAheadLog
from repro.workloads.generator import UpdateEvent

KEY_SPACE = (1, 1001)


class TestWriteAheadLog:
    def test_append_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 10, 1.5, 5)
        wal.append("delete", 10, 1.5, 9)
        events = wal.records()
        assert events == [
            UpdateEvent("insert", 10, 1.5, 5),
            UpdateEvent("delete", 10, 1.5, 9),
        ]
        wal.close()

    def test_replay_survives_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 10, 1.0, 5)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert len(reopened) == 1
        reopened.append("insert", 20, 2.0, 6)
        assert len(reopened) == 2
        reopened.close()

    def test_truncate_empties_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 10, 1.0, 5)
        wal.truncate()
        assert wal.records() == []
        wal.append("insert", 20, 1.0, 6)
        assert len(wal) == 1
        wal.close()

    def test_torn_final_record_ignored(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 10, 1.0, 5)
        wal.append("insert", 20, 2.0, 6)
        wal.close()
        with open(wal.path, "a") as fh:
            fh.write("insert,30,3.")  # crash mid-write
        reopened = WriteAheadLog(str(tmp_path))
        assert [e.key for e in reopened.records()] == [10, 20]
        reopened.close()

    def test_garbage_record_stops_replay(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 10, 1.0, 5)
        wal.close()
        with open(wal.path, "a") as fh:
            fh.write("upsert,1,2,3\n")
            fh.write("insert,40,4.0,9\n")  # after corruption: not trusted
        reopened = WriteAheadLog(str(tmp_path))
        assert [e.key for e in reopened.records()] == [10]
        reopened.close()

    def test_unknown_op_rejected_at_append(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(StorageError):
            wal.append("upsert", 1, 1.0, 1)
        wal.close()


class TestDurableWarehouse:
    def test_fresh_open_then_recover(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 5.0, t=10)
        warehouse.insert(200, 7.0, t=12)
        warehouse.delete(100, t=20)
        warehouse.close()  # simulate a crash: no checkpoint was taken

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        r = KeyRange(1, 1000)
        assert recovered.sum(r, Interval(10, 20)) == 12.0
        assert recovered.sum(r, Interval(20, 30)) == 7.0
        assert recovered.snapshot(r, 15) == [(100, 5.0), (200, 7.0)]
        recovered.close()

    def test_checkpoint_truncates_log_and_recovers(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        for i in range(1, 30):
            warehouse.insert(i * 10, float(i), t=i)
        warehouse.checkpoint()
        assert os.path.getsize(warehouse._wal.path) == 0
        # Post-checkpoint updates land in the fresh log.
        warehouse.insert(999, 42.0, t=50)
        warehouse.close()

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        r = KeyRange(1, 1000)
        assert recovered.count(r, Interval(1, 60)) == 30.0
        assert recovered.sum(KeyRange(999, 1000), Interval(50, 51)) == 42.0
        recovered.close()

    def test_recovery_is_equivalent_to_uninterrupted_run(self, tmp_path):
        directory = str(tmp_path / "wh")
        reference = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
        durable = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        state = 91
        alive = set()
        for t in range(1, 120):
            state = (state * 48271) % (2**31 - 1)
            key = state % 999 + 1
            if key in alive:
                reference.delete(key, t)
                durable.delete(key, t)
                alive.discard(key)
            else:
                reference.insert(key, float(state % 9), t)
                durable.insert(key, float(state % 9), t)
                alive.add(key)
            if t == 60:
                durable.checkpoint()
        durable.close()

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        for (k1, k2, t1, t2) in [(1, 1000, 1, 200), (200, 600, 30, 90),
                                 (1, 1000, 60, 61)]:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert recovered.sum(r, iv) == reference.sum(r, iv)
            assert recovered.count(r, iv) == reference.count(r, iv)
        recovered.close()

    def test_checkpoint_without_wal_rejected(self):
        warehouse = TemporalWarehouse(key_space=KEY_SPACE)
        with pytest.raises(StorageError):
            warehouse.checkpoint()

    def test_torn_tail_recovery_drops_unacknowledged_update(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 5.0, t=10)
        warehouse.close()
        with open(os.path.join(directory, "updates.wal"), "a") as fh:
            fh.write("insert,200,7")  # torn
        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        assert recovered.count(KeyRange(1, 1000), Interval(1, 100)) == 1.0
        recovered.close()


class TestSequenceNumbers:
    def test_append_returns_monotonic_seq(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.append("insert", 1, 1.0, 1) == 1
        assert wal.append("insert", 2, 1.0, 2) == 2
        assert wal.last_seq == 2
        wal.close()

    def test_seq_continues_across_truncate(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 1, 1.0, 1)
        wal.append("insert", 2, 1.0, 2)
        wal.truncate()
        # Truncation frees space; numbering never restarts.
        assert wal.append("insert", 3, 1.0, 3) == 3
        wal.close()

    def test_seq_restored_on_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 1, 1.0, 1)
        wal.append("insert", 2, 1.0, 2)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.last_seq == 2
        assert reopened.append("insert", 3, 1.0, 3) == 3
        reopened.close()

    def test_bump_seq_only_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("insert", 1, 1.0, 1)
        wal.bump_seq(10)
        assert wal.append("insert", 2, 1.0, 2) == 11
        wal.bump_seq(5)  # lower than current: no effect
        assert wal.append("insert", 3, 1.0, 3) == 12
        wal.close()

    def test_replay_after_seq_skips_covered_prefix(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        for i in range(1, 6):
            wal.append("insert", i, float(i), i)
        tail = list(wal.replay(after_seq=3))
        assert [e.key for e in tail] == [4, 5]
        pairs = list(wal.replay_with_seq(after_seq=3))
        assert [seq for seq, _e in pairs] == [4, 5]
        wal.close()

    def test_legacy_four_field_lines_numbered_by_position(self, tmp_path):
        path = tmp_path / "updates.wal"
        path.write_text("insert,10,1.0,5\ninsert,20,2.0,6\n")
        wal = WriteAheadLog(str(tmp_path))
        assert wal.last_seq == 2
        assert [seq for seq, _e in wal.replay_with_seq()] == [1, 2]
        # New appends continue above the legacy records.
        assert wal.append("insert", 30, 3.0, 7) == 3
        wal.close()


class TestCheckpointCrashWindow:
    def test_crash_between_checkpoint_and_truncate(self, tmp_path):
        """kill -9 after the checkpoint is durable but before the WAL is
        truncated: recovery must not double-apply the covered records."""
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 5.0, t=1)
        warehouse.insert(200, 7.0, t=2)
        # Simulate the crash window: checkpoint lands, truncate does not.
        warehouse._wal.truncate = lambda: None
        warehouse.checkpoint()
        warehouse.insert(300, 9.0, t=3)  # post-checkpoint tail
        warehouse.close()

        # Without sequence skipping this reopen would double-insert keys
        # 100 and 200 and raise DuplicateKeyError.
        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        r = KeyRange(1, 1000)
        assert recovered.count(r, Interval(1, 10)) == 3.0
        assert recovered.sum(r, Interval(1, 10)) == 21.0
        recovered.close()

    def test_crash_mid_checkpoint_keeps_previous_good_one(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 5.0, t=1)
        warehouse.checkpoint()
        warehouse.insert(200, 7.0, t=2)
        # A later checkpoint attempt dies before repointing CURRENT: the
        # half-written directory exists but CURRENT still names the old one.
        real_save = warehouse.save

        def dying_save(target):
            real_save(target)
            raise RuntimeError("kill -9 mid-checkpoint")

        warehouse.save = dying_save
        with pytest.raises(RuntimeError):
            warehouse.checkpoint()
        warehouse.close()

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        r = KeyRange(1, 1000)
        assert recovered.count(r, Interval(1, 10)) == 2.0
        assert recovered.sum(r, Interval(1, 10)) == 12.0
        recovered.close()

    def test_checkpoint_gc_keeps_only_current(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        warehouse.insert(100, 5.0, t=1)
        warehouse.checkpoint()
        warehouse.insert(200, 7.0, t=2)
        warehouse.checkpoint()
        checkpoints = os.listdir(os.path.join(directory, "checkpoints"))
        assert len(checkpoints) == 1
        current = open(os.path.join(directory, "CURRENT")).read().strip()
        assert checkpoints == [current]
        warehouse.close()

    def test_close_is_idempotent_and_reported(self, tmp_path):
        directory = str(tmp_path / "wh")
        warehouse = TemporalWarehouse.open_durable(
            directory, key_space=KEY_SPACE, page_capacity=8)
        assert not warehouse.closed
        warehouse.close()
        assert warehouse.closed
        warehouse.close()  # second close: no error
        assert warehouse.closed
