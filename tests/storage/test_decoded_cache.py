"""Decoded-page cache: ownership-transfer semantics and the file-backed
read path that skips the struct decode on buffer-pool re-reads."""

import pytest

from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.model import Interval, KeyRange
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDiskManager
from repro.storage.serialization import DecodedPageCache, RecordCodec, \
    register_codec

register_codec("decoded-pair", RecordCodec(
    fmt="<qq",
    to_tuple=lambda rec: rec,
    from_tuple=lambda tup: tup,
))


class TestDecodedPageCache:
    def test_take_transfers_ownership(self):
        cache = DecodedPageCache(capacity=4)
        records = [(1, 2), (3, 4)]
        cache.put(7, "decoded-pair", records, 8)
        assert cache.take(7) == ("decoded-pair", records, 8)
        assert cache.take(7) is None  # popped, not copied
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_bounds_entries_lru(self):
        cache = DecodedPageCache(capacity=2)
        for pid in range(3):
            cache.put(pid, "decoded-pair", [], 8)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.take(0) is None  # the LRU entry went first
        assert cache.take(2) is not None

    def test_invalidate_counts_stale_drops(self):
        cache = DecodedPageCache(capacity=4)
        cache.put(1, "decoded-pair", [], 8)
        cache.invalidate(1)
        cache.invalidate(1)  # second drop is a no-op
        assert cache.stats.stale_drops == 1
        assert cache.take(1) is None

    def test_clear_empties_without_stats(self):
        cache = DecodedPageCache(capacity=4)
        cache.put(1, "decoded-pair", [], 8)
        cache.clear()
        assert len(cache) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DecodedPageCache(capacity=0)


class TestFileDiskIntegration:
    def test_read_hit_skips_bytes_and_decode(self, tmp_path):
        cache = DecodedPageCache(capacity=8)
        disk = FileDiskManager(str(tmp_path / "pages.db"), page_bytes=256,
                               decoded_cache=cache)
        page = disk.allocate(capacity=8, kind="decoded-pair")
        page.records = [(1, 10), (2, 20)]
        disk.write(page)  # parks the decoded records
        fetched = disk.read(page.page_id)
        assert fetched.records == [(1, 10), (2, 20)]
        assert cache.stats.hits == 1
        # The hit consumed the entry; the next read decodes from bytes.
        again = disk.read(page.page_id)
        assert again.records == [(1, 10), (2, 20)]
        assert cache.stats.misses == 1
        disk.close()

    def test_free_invalidates_parked_entry(self, tmp_path):
        cache = DecodedPageCache(capacity=8)
        disk = FileDiskManager(str(tmp_path / "pages.db"), page_bytes=256,
                               decoded_cache=cache)
        page = disk.allocate(capacity=8, kind="decoded-pair")
        disk.write(page)
        disk.free(page.page_id)
        assert cache.stats.stale_drops >= 1
        disk.close()

    def test_heap_baseline_answers_match_cacheless_twin(self, tmp_path):
        """Pool-mediated access with evictions: cached == uncached, and
        the cached run actually took decode-skipping hits."""
        def build(with_cache):
            cache = DecodedPageCache(capacity=64) if with_cache else None
            disk = FileDiskManager(str(tmp_path / f"heap{with_cache}.db"),
                                   page_bytes=512, decoded_cache=cache)
            pool = BufferPool(disk, capacity=2)  # tiny: constant evictions
            return HeapFileScanBaseline(pool, capacity=8,
                                        key_space=(1, 201)), cache

        heap, cache = build(True)
        twin, _ = build(False)
        for k in range(1, 121):
            heap.insert(k, float(k), k)
            twin.insert(k, float(k), k)
        probes = [(KeyRange(1, 201), Interval(1, 121)),
                  (KeyRange(30, 90), Interval(10, 60)),
                  (KeyRange(1, 50), Interval(100, 121))]
        for key_range, interval in probes:
            assert heap.sum(key_range, interval) == \
                twin.sum(key_range, interval)
        assert cache.stats.hits > 0
