"""Hypothesis property tests for checkpointing: save/load at arbitrary
points of a stream must be transparent."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import DominanceSumOracle

KEY_SPACE = (1, 100)


@st.composite
def streams_with_cut(draw):
    stream = draw(st.lists(
        st.tuples(
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
        ),
        min_size=2, max_size=60,
    ))
    cut = draw(st.integers(min_value=1, max_value=len(stream) - 1))
    return stream, cut


@settings(max_examples=25, deadline=None)
@given(streams_with_cut(), st.integers(min_value=1, max_value=300),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1))
def test_mvsbt_checkpoint_mid_stream_is_transparent(tmp_path_factory,
                                                    stream_cut, t, key):
    (stream, cut) = stream_cut
    directory = str(tmp_path_factory.mktemp("ck"))
    pool = BufferPool(InMemoryDiskManager(), capacity=512)
    tree = MVSBT(pool, MVSBTConfig(capacity=5), key_space=KEY_SPACE)
    oracle = DominanceSumOracle()
    clock = 1
    for i, (k, dt, v) in enumerate(stream):
        if i == cut:
            tree.save(directory)
            tree = MVSBT.load(directory, buffer_pages=512)
        clock += dt
        tree.insert(k, clock, float(v))
        oracle.insert(k, clock, float(v))
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))
    tree.check_invariants()


@settings(max_examples=15, deadline=None)
@given(streams_with_cut())
def test_rta_checkpoint_mid_stream_is_transparent(tmp_path_factory,
                                                  stream_cut):
    (stream, cut) = stream_cut
    directory = str(tmp_path_factory.mktemp("ck"))
    pool = BufferPool(InMemoryDiskManager(), capacity=512)
    index = RTAIndex(pool, MVSBTConfig(capacity=5), key_space=KEY_SPACE)
    shadow = RTAIndex(BufferPool(InMemoryDiskManager(), capacity=512),
                      MVSBTConfig(capacity=5), key_space=KEY_SPACE)
    alive = set()
    clock = 1
    for i, (k, dt, v) in enumerate(stream):
        if i == cut:
            index.save(directory)
            index = RTAIndex.load(directory, buffer_pages=512)
        clock += dt
        if k in alive:
            index.delete(k, clock)
            shadow.delete(k, clock)
            alive.discard(k)
        else:
            index.insert(k, float(v), clock)
            shadow.insert(k, float(v), clock)
            alive.add(k)
    r, iv = KeyRange(*KEY_SPACE), Interval(1, clock + 2)
    assert index.sum(r, iv) == pytest.approx(shadow.sum(r, iv))
    assert index.count(r, iv) == shadow.count(r, iv)
