"""Scan-resistant 2Q eviction: segments, promotion, demotion, guards."""

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


def make_pool(capacity=8, **kwargs):
    return BufferPool(InMemoryDiskManager(), capacity=capacity,
                      policy="2q", **kwargs)


def _alloc_pages(pool, n):
    pages = [pool.allocate(capacity=4, kind="raw") for _ in range(n)]
    pool.flush_all()
    return pages


def test_first_touch_lands_in_probation():
    pool = make_pool()
    pages = _alloc_pages(pool, 3)
    assert pool.probation_page_ids == [p.page_id for p in pages]
    assert pool.protected_page_ids == []


def test_rereference_promotes_to_protected():
    pool = make_pool()
    pages = _alloc_pages(pool, 3)
    pool.fetch(pages[1].page_id)
    assert pages[1].page_id in pool.protected_page_ids
    assert pages[1].page_id not in pool.probation_page_ids


def test_protected_overflow_demotes_lru_back_to_probation():
    pool = make_pool(capacity=8, protected_fraction=0.25)  # cap 2
    pages = _alloc_pages(pool, 4)
    for page in pages[:3]:  # promote 3 into a 2-slot protected segment
        pool.fetch(page.page_id)
    assert len(pool.protected_page_ids) == 2
    # The first promoted page is the protected LRU: demoted, still resident.
    assert pages[0].page_id in pool.probation_page_ids
    assert pool.is_resident(pages[0].page_id)


def test_one_long_scan_cannot_flush_the_hot_set():
    pool = make_pool(capacity=4)
    hot = _alloc_pages(pool, 2)
    for page in hot:  # re-reference: the hot set earns protection
        pool.fetch(page.page_id)
    scan = _alloc_pages(pool, 12)  # each touched exactly once
    for page in scan:
        pool.fetch(page.page_id)
    for page in hot:
        assert pool.is_resident(page.page_id), "scan evicted the hot set"
    before = pool.stats.reads
    for page in hot:
        pool.fetch(page.page_id)
    assert pool.stats.reads == before  # still hits, no physical reads


def test_lru_baseline_loses_the_hot_set_to_the_same_scan():
    # The contrast that motivates 2Q: identical access pattern, LRU pool.
    pool = BufferPool(InMemoryDiskManager(), capacity=4, policy="lru")
    hot = _alloc_pages(pool, 2)
    for page in hot:
        pool.fetch(page.page_id)
    for page in _alloc_pages(pool, 12):
        pool.fetch(page.page_id)
    assert not any(pool.is_resident(page.page_id) for page in hot)


def test_victims_come_from_probation_first():
    pool = make_pool(capacity=4)
    pages = _alloc_pages(pool, 4)
    for page in pages[:2]:
        pool.fetch(page.page_id)  # pages 0,1 protected; 2,3 probation
    pool.allocate(capacity=4)     # someone must go
    assert not pool.is_resident(pages[2].page_id)  # probation LRU
    assert all(pool.is_resident(p.page_id) for p in pages[:2])


def test_pinned_probation_page_is_skipped():
    pool = make_pool(capacity=3)
    pages = _alloc_pages(pool, 3)
    pool.pin(pages[0].page_id)
    pool.allocate(capacity=4)
    assert pool.is_resident(pages[0].page_id)
    assert not pool.is_resident(pages[1].page_id)
    pool.unpin(pages[0].page_id)


def test_free_and_clear_drop_segment_bookkeeping():
    pool = make_pool()
    pages = _alloc_pages(pool, 3)
    pool.fetch(pages[0].page_id)
    pool.free(pages[0].page_id)
    assert pages[0].page_id not in pool.protected_page_ids
    pool.clear()
    assert pool.probation_page_ids == []
    assert pool.protected_page_ids == []


def test_eviction_survives_refetch_cycle():
    # Evicted-then-refetched pages land back in probation, not protected.
    pool = make_pool(capacity=2)
    pages = _alloc_pages(pool, 4)
    evicted = pages[0]
    assert not pool.is_resident(evicted.page_id)
    pool.fetch(evicted.page_id)
    assert evicted.page_id in pool.probation_page_ids


def test_policy_and_fraction_validation():
    disk = InMemoryDiskManager()
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=4, policy="clock")
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=4, policy="2q", protected_fraction=0.0)
    with pytest.raises(ValueError):
        BufferPool(disk, capacity=4, policy="2q", protected_fraction=1.0)


def test_segment_introspection_requires_2q():
    pool = BufferPool(InMemoryDiskManager(), capacity=4)
    with pytest.raises(BufferPoolError):
        pool.probation_page_ids
    with pytest.raises(BufferPoolError):
        pool.protected_page_ids
