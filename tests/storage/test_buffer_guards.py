"""Thread-safety guard rails of the buffer pool.

The pool stays branch-free by default; :meth:`enable_locking` serializes
the public protocol for the query server, and
:meth:`enable_concurrency_assertions` turns silent frame corruption into
a deterministic :class:`ConcurrentAccessError` for tests.
"""

import threading

from repro.errors import ConcurrentAccessError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


def make_pool(capacity=8):
    disk = InMemoryDiskManager()
    pool = BufferPool(disk, capacity=capacity)
    return disk, pool


def fill(pool, n):
    ids = []
    for _ in range(n):
        page = pool.allocate(capacity=4, kind="leaf")
        ids.append(page.page_id)
    pool.flush_all()
    return ids


class TestEnableLocking:
    def test_idempotent_and_returns_same_lock(self):
        _disk, pool = make_pool()
        lock = pool.enable_locking()
        assert pool.enable_locking() is lock

    def test_hammering_under_lock_stays_consistent(self):
        _disk, pool = make_pool(capacity=4)
        ids = fill(pool, 32)
        pool.enable_locking()
        errors = []

        def worker(seed):
            try:
                for i in range(300):
                    page = pool.fetch(ids[(seed * 7 + i) % len(ids)])
                    assert page is not None
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # LRU bookkeeping survived: frame count within capacity.
        assert len(pool._frames) <= pool.capacity
        assert not pool._pins

    def test_locked_pool_still_supports_pin_windows(self):
        _disk, pool = make_pool(capacity=4)
        ids = fill(pool, 8)
        pool.enable_locking()
        pool.pin(pool.fetch(ids[0]).page_id)
        for page_id in ids[1:]:
            pool.fetch(page_id)
        assert ids[0] in pool._frames  # pinned page was never evicted
        pool.unpin(ids[0])
        assert not pool._pins


class TestConcurrencyAssertions:
    def test_single_thread_reentrancy_is_fine(self):
        _disk, pool = make_pool()
        pool.enable_concurrency_assertions()
        ids = fill(pool, 4)
        # flush_all calls flush internally: re-entrant, same thread — OK.
        pool.fetch(ids[0]).mark_dirty()
        pool.flush_all()

    def test_concurrent_entry_raises_deterministically(self):
        """Block thread A inside fetch (on disk.read), then enter from B."""
        disk, pool = make_pool(capacity=4)
        ids = fill(pool, 8)
        pool.clear()
        pool.enable_concurrency_assertions()

        a_inside = threading.Event()
        release_a = threading.Event()
        original_read = disk.read

        def slow_read(page_id):
            a_inside.set()
            assert release_a.wait(timeout=30)
            return original_read(page_id)

        disk.read = slow_read
        caught = []

        def thread_a():
            pool.fetch(ids[0])

        def thread_b():
            assert a_inside.wait(timeout=30)
            try:
                pool.fetch(ids[1])
            except ConcurrentAccessError as exc:
                caught.append(exc)
            finally:
                release_a.set()

        ta = threading.Thread(target=thread_a)
        tb = threading.Thread(target=thread_b)
        ta.start()
        tb.start()
        ta.join(timeout=60)
        tb.join(timeout=60)
        assert len(caught) == 1
        assert "enable_locking" in str(caught[0])

    def test_error_is_a_buffer_pool_error_with_code(self):
        from repro.errors import BufferPoolError, error_payload

        exc = ConcurrentAccessError("two threads in the pool")
        assert isinstance(exc, BufferPoolError)
        assert error_payload(exc) == {
            "code": "CONCURRENT_ACCESS",
            "message": "two threads in the pool",
        }

    def test_locking_on_top_of_assertions_silences_them(self):
        _disk, pool = make_pool(capacity=4)
        ids = fill(pool, 8)
        pool.enable_concurrency_assertions()
        pool.enable_locking()
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    pool.fetch(ids[(seed + i) % len(ids)])
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
