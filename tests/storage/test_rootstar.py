"""Tests for the root* time-to-root directory."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.rootstar import RootDirectory


class TestInMemory:
    @pytest.fixture()
    def directory(self):
        d = RootDirectory()
        d.append(1, 100)
        d.append(10, 101)
        d.append(50, 102)
        return d

    def test_find_within_slices(self, directory):
        assert directory.find(1).root_id == 100
        assert directory.find(9).root_id == 100
        assert directory.find(10).root_id == 101
        assert directory.find(49).root_id == 101
        assert directory.find(50).root_id == 102
        assert directory.find(10**9).root_id == 102

    def test_find_before_first_raises(self):
        d = RootDirectory()
        d.append(10, 1)
        with pytest.raises(LookupError):
            d.find(9)

    def test_find_on_empty_raises(self):
        with pytest.raises(LookupError):
            RootDirectory().find(5)

    def test_latest(self, directory):
        assert directory.latest.root_id == 102

    def test_latest_on_empty_raises(self):
        with pytest.raises(LookupError):
            RootDirectory().latest

    def test_same_instant_append_replaces(self, directory):
        directory.append(50, 999)
        assert directory.find(50).root_id == 999
        assert len(directory) == 3

    def test_out_of_order_append_rejected(self, directory):
        with pytest.raises(ValueError):
            directory.append(5, 200)

    def test_roots_intersecting(self, directory):
        ids = [e.root_id for e in directory.roots_intersecting(5, 55)]
        assert ids == [100, 101, 102]
        ids = [e.root_id for e in directory.roots_intersecting(10, 50)]
        assert ids == [101]
        ids = [e.root_id for e in directory.roots_intersecting(60, 70)]
        assert ids == [102]
        assert list(directory.roots_intersecting(60, 60)) == []

    def test_roots_intersecting_before_first_entry(self, directory):
        ids = [e.root_id for e in directory.roots_intersecting(0, 1)]
        assert ids == []  # starts[0] == 1 >= t_end


class TestPaged:
    @pytest.fixture()
    def pool(self):
        return BufferPool(InMemoryDiskManager(), capacity=64)

    def test_requires_pool(self):
        with pytest.raises(ValueError):
            RootDirectory(paged=True)

    def test_paged_lookup_matches_memory(self, pool):
        paged = RootDirectory(pool, page_capacity=4, paged=True)
        plain = RootDirectory()
        for i in range(100):
            paged.append(i * 3 + 1, 1000 + i)
            plain.append(i * 3 + 1, 1000 + i)
        for t in range(1, 310, 7):
            assert paged.find(t).root_id == plain.find(t).root_id

    def test_paged_lookup_costs_logarithmic_ios(self, pool):
        paged = RootDirectory(pool, page_capacity=4, paged=True)
        for i in range(200):
            paged.append(i + 1, i)
        pool.clear()
        before = pool.stats.snapshot()
        paged.find(150)
        delta = pool.stats.delta(before)
        # 200 entries at fanout 4: 4 levels; far below a full scan.
        assert 1 <= delta.logical_reads <= 5

    def test_paged_same_instant_replace(self, pool):
        paged = RootDirectory(pool, page_capacity=4, paged=True)
        for i in range(20):
            paged.append(i + 1, i)
        paged.append(20, 777)
        assert paged.find(20).root_id == 777
        assert paged.find(25).root_id == 777

    def test_page_count_grows_with_entries(self, pool):
        paged = RootDirectory(pool, page_capacity=4, paged=True)
        paged.append(1, 0)
        single = paged.page_count
        for i in range(2, 60):
            paged.append(i, i)
        assert paged.page_count > single
