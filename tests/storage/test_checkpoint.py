"""Tests for checkpoint save/load across every index type."""

import json
import os

import pytest

from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.errors import StorageError
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.sbtree.tree import SBTree
from repro.storage.buffer import BufferPool
from repro.storage.checkpoint import read_checkpoint, write_checkpoint
from repro.storage.disk import InMemoryDiskManager


def fresh_pool(capacity=256):
    return BufferPool(InMemoryDiskManager(), capacity=capacity)


class TestCheckpointPrimitives:
    def test_round_trip_pool_and_meta(self, tmp_path):
        pool = fresh_pool()
        tree = SBTree(pool, capacity=4, domain=(1, 101))
        tree.insert(10, 50, 3.0)
        info = write_checkpoint(pool, {"hello": "world"}, str(tmp_path / "ck"))
        assert info.page_count >= 1
        restored_pool, meta = read_checkpoint(str(tmp_path / "ck"))
        assert meta == {"hello": "world"}
        assert restored_pool.disk.live_page_count == pool.disk.live_page_count

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            read_checkpoint(str(tmp_path / "nowhere"))

    def test_bad_magic_rejected(self, tmp_path):
        pool = fresh_pool()
        SBTree(pool, capacity=4, domain=(1, 101))
        directory = str(tmp_path / "ck")
        write_checkpoint(pool, {}, directory)
        meta_path = os.path.join(directory, "meta.json")
        blob = json.load(open(meta_path))
        blob["magic"] = "something-else"
        json.dump(blob, open(meta_path, "w"))
        with pytest.raises(StorageError):
            read_checkpoint(directory)

    def test_truncated_pages_file_rejected(self, tmp_path):
        pool = fresh_pool()
        tree = SBTree(pool, capacity=4, domain=(1, 101))
        for i in range(1, 50):
            tree.insert(i, i + 2, 1.0)
        directory = str(tmp_path / "ck")
        write_checkpoint(pool, {}, directory)
        pages_path = os.path.join(directory, "pages.dat")
        raw = open(pages_path, "rb").read()
        open(pages_path, "wb").write(raw[:-100])
        with pytest.raises(StorageError):
            read_checkpoint(directory)

    def test_allocation_cursor_continues(self, tmp_path):
        pool = fresh_pool()
        tree = SBTree(pool, capacity=4, domain=(1, 1001))
        for i in range(1, 60):
            tree.insert(i, i + 2, 1.0)
        write_checkpoint(pool, {}, str(tmp_path / "ck"))
        restored, _ = read_checkpoint(str(tmp_path / "ck"))
        fresh = restored.allocate(capacity=4)
        assert fresh.page_id >= pool.disk.allocated_count


class TestSBTreeCheckpoint:
    def test_round_trip_preserves_answers(self, tmp_path):
        tree = SBTree(fresh_pool(), capacity=4, domain=(1, 301))
        for i in range(1, 120):
            tree.insert(i * 2 % 290 + 1, i * 2 % 290 + 9, float(i % 7 - 3))
        tree.save(str(tmp_path / "sb"))
        reopened = SBTree.load(str(tmp_path / "sb"))
        for t in range(1, 301, 7):
            assert reopened.query(t) == tree.query(t)
        reopened.check_invariants()

    def test_reopened_tree_accepts_new_inserts(self, tmp_path):
        tree = SBTree(fresh_pool(), capacity=4, domain=(1, 301))
        tree.insert(10, 50, 2.0)
        tree.save(str(tmp_path / "sb"))
        reopened = SBTree.load(str(tmp_path / "sb"))
        reopened.insert(20, 60, 3.0)
        assert reopened.query(30) == 5.0
        assert reopened.query(55) == 3.0

    def test_custom_combine_rejected(self, tmp_path):
        tree = SBTree(fresh_pool(), capacity=4, domain=(1, 301),
                      combine=lambda a, b: a * b, identity=1.0)
        with pytest.raises(ValueError):
            tree.save(str(tmp_path / "sb"))

    def test_wrong_type_rejected(self, tmp_path):
        tree = SBTree(fresh_pool(), capacity=4, domain=(1, 301))
        tree.save(str(tmp_path / "sb"))
        with pytest.raises(ValueError):
            MVSBT.load(str(tmp_path / "sb"))


class TestMVSBTCheckpoint:
    def test_round_trip_all_versions(self, tmp_path):
        tree = MVSBT(fresh_pool(), MVSBTConfig(capacity=5),
                     key_space=(1, 201))
        for t in range(1, 120):
            tree.insert((t * 37) % 199 + 1, t, float(t % 9 - 4) or 1.0)
        tree.save(str(tmp_path / "mvsbt"))
        reopened = MVSBT.load(str(tmp_path / "mvsbt"))
        for t in range(1, 120, 7):
            for k in range(1, 201, 23):
                assert reopened.query(k, t) == tree.query(k, t)
        reopened.check_invariants()
        assert reopened.counters == tree.counters

    def test_reopened_tree_continues_stream(self, tmp_path):
        tree = MVSBT(fresh_pool(), MVSBTConfig(capacity=5),
                     key_space=(1, 201))
        tree.insert(50, 10, 1.0)
        tree.save(str(tmp_path / "mvsbt"))
        reopened = MVSBT.load(str(tmp_path / "mvsbt"))
        reopened.insert(100, 20, 2.0)
        assert reopened.query(150, 20) == 3.0
        assert reopened.query(150, 15) == 1.0
        # Time order is still enforced relative to the checkpointed clock.
        from repro.errors import TimeOrderError
        with pytest.raises(TimeOrderError):
            reopened.insert(60, 5, 1.0)


class TestMVBTCheckpoint:
    def test_round_trip_history_and_structure(self, tmp_path):
        tree = MVBT(fresh_pool(), MVBTConfig(capacity=6), key_space=(1, 501))
        alive = []
        for t in range(1, 150):
            key = (t * 31) % 499 + 1
            if key in alive:
                tree.delete(key, t)
                alive.remove(key)
            else:
                tree.insert(key, float(key % 13), t)
                alive.append(key)
        tree.save(str(tmp_path / "mvbt"))
        reopened = MVBT.load(str(tmp_path / "mvbt"))
        for t in range(1, 150, 11):
            assert reopened.range_snapshot(1, 500, t) \
                == tree.range_snapshot(1, 500, t)
        assert reopened.rectangle_query(1, 500, 1, 200) \
            == tree.rectangle_query(1, 500, 1, 200)
        reopened.check_invariants()

    def test_reopened_tree_accepts_updates(self, tmp_path):
        tree = MVBT(fresh_pool(), MVBTConfig(capacity=6), key_space=(1, 501))
        tree.insert(100, 1.0, t=5)
        tree.save(str(tmp_path / "mvbt"))
        reopened = MVBT.load(str(tmp_path / "mvbt"))
        reopened.insert(200, 2.0, t=10)
        reopened.delete(100, t=15)
        assert reopened.snapshot_point(100, 12) == 1.0
        assert reopened.snapshot_point(100, 15) is None
        assert reopened.snapshot_point(200, 20) == 2.0


class TestRTAIndexCheckpoint:
    def test_round_trip_queries_and_alive_table(self, tmp_path):
        index = RTAIndex(fresh_pool(), MVSBTConfig(capacity=8),
                         key_space=(1, 1001))
        alive = []
        for t in range(1, 200):
            key = (t * 61) % 999 + 1
            if key in alive:
                index.delete(key, t)
                alive.remove(key)
            else:
                index.insert(key, float(key % 17), t)
                alive.append(key)
        index.save(str(tmp_path / "rta"))
        reopened = RTAIndex.load(str(tmp_path / "rta"))
        for (k1, k2, t1, t2) in [(1, 1000, 1, 300), (100, 400, 50, 120),
                                 (500, 501, 10, 190)]:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert reopened.sum(r, iv) == index.sum(r, iv)
            assert reopened.count(r, iv) == index.count(r, iv)
        assert reopened.alive_count() == index.alive_count()

    def test_reopened_index_continues_stream(self, tmp_path):
        index = RTAIndex(fresh_pool(), key_space=(1, 1001))
        index.insert(100, 5.0, t=10)
        index.save(str(tmp_path / "rta"))
        reopened = RTAIndex.load(str(tmp_path / "rta"))
        # The alive table came back: deleting by key alone works.
        reopened.delete(100, t=20)
        reopened.insert(200, 7.0, t=25)
        r = KeyRange(1, 1000)
        assert reopened.sum(r, Interval(10, 20)) == 5.0
        assert reopened.sum(r, Interval(20, 25)) == 0.0
        assert reopened.sum(r, Interval(25, 30)) == 7.0

    def test_wrong_checkpoint_type_rejected(self, tmp_path):
        tree = MVSBT(fresh_pool(), key_space=(1, 201))
        tree.save(str(tmp_path / "x"))
        with pytest.raises(ValueError):
            RTAIndex.load(str(tmp_path / "x"))
        with pytest.raises(ValueError):
            MVBT.load(str(tmp_path / "x"))
