"""Unit tests for the per-request telemetry plumbing.

Covers the pieces :mod:`repro.serve.telemetry` adds for PR 7: the
request context and its thread-local slot, the probabilistic sampler,
the slow-query ring, the metrics HTTP endpoint, and the SLO summary
math in :mod:`repro.serve.loadgen`.
"""

import random
import threading
import urllib.request

import pytest

from repro.serve.loadgen import slo_summary
from repro.serve.telemetry import (
    MetricsHTTPServer,
    RequestContext,
    Sampler,
    SlowQueryLog,
    clear_context,
    clip_tql,
    current_context,
    new_span_id,
    new_trace_id,
    set_context,
    shard_record,
)


class TestRequestContext:
    def test_starts_unsampled(self):
        ctx = RequestContext("r-1", "query")
        assert not ctx.sampled and not ctx.detail
        assert ctx.trace_id is None and ctx.span_id is None

    def test_begin_sampling_mints_w3c_sized_ids(self):
        ctx = RequestContext("r-1", "query")
        ctx.begin_sampling()
        assert ctx.sampled and not ctx.detail
        assert len(ctx.trace_id) == 32  # 128-bit hex
        assert len(ctx.span_id) == 16   # 64-bit hex
        int(ctx.trace_id, 16)
        int(ctx.span_id, 16)

    def test_detail_only_from_explicit_override(self):
        ctx = RequestContext("r-1", "query")
        ctx.begin_sampling(detail=True)
        assert ctx.detail
        assert ctx.trace_context()["detail"] is True

    def test_trace_context_carries_lineage(self):
        ctx = RequestContext("r-1", "query")
        ctx.begin_sampling()
        propagated = ctx.trace_context()
        assert propagated["trace_id"] == ctx.trace_id
        assert propagated["parent_span_id"] == ctx.span_id
        assert propagated["detail"] is False

    def test_note_shard_accumulates(self):
        ctx = RequestContext("r-1", "query")
        ctx.note_shard(2, 0.5)
        ctx.note_shard(2, 0.25)
        ctx.note_shard(0, 0.1)
        assert ctx.shard_seconds == {2: 0.75, 0: 0.1}

    def test_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()
        assert new_span_id() != new_span_id()


class TestContextSlot:
    def test_set_and_clear(self):
        ctx = RequestContext("r-1", "query")
        set_context(ctx)
        try:
            assert current_context() is ctx
        finally:
            clear_context()
        assert current_context() is None

    def test_unset_thread_sees_none(self):
        seen = []
        set_context(RequestContext("r-1", "query"))
        try:
            thread = threading.Thread(
                target=lambda: seen.append(current_context()))
            thread.start()
            thread.join()
        finally:
            clear_context()
        assert seen == [None]


class TestSampler:
    def test_rate_zero_never_samples(self):
        sampler = Sampler(0.0)
        assert not any(sampler.sample() for _ in range(1000))

    def test_rate_one_always_samples(self):
        sampler = Sampler(1.0)
        assert all(sampler.sample() for _ in range(1000))

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            Sampler(-0.1)
        with pytest.raises(ValueError):
            Sampler(1.5)

    def test_seeded_rate_is_probabilistic(self):
        sampler = Sampler(0.25, rng=random.Random(7))
        hits = sum(sampler.sample() for _ in range(10_000))
        assert 2000 < hits < 3000


class TestSlowQueryLog:
    def test_ring_evicts_oldest_and_counts_total(self):
        log = SlowQueryLog(capacity=3)
        for n in range(5):
            log.add({"request_id": f"r-{n}"})
        assert log.total == 5
        assert len(log) == 3
        assert [e["request_id"] for e in log.entries()] == \
            ["r-4", "r-3", "r-2"]

    def test_limit_clamps(self):
        log = SlowQueryLog(capacity=8)
        for n in range(4):
            log.add({"request_id": f"r-{n}"})
        assert len(log.entries(limit=2)) == 2
        assert log.entries(limit=0) == []


class TestShardRecord:
    def test_schema_valid_and_carries_lineage(self):
        from repro.obs.tracefile import validate_record

        ctx = RequestContext("r-9", "query")
        ctx.begin_sampling()
        record = shard_record("shard.aggregate", 3, 0.01, ctx,
                              backend="thread")
        validate_record(record)
        assert record["attrs"]["trace_id"] == ctx.trace_id
        assert record["attrs"]["parent_span_id"] == ctx.span_id
        assert record["attrs"]["shard"] == 3


class TestClipTql:
    def test_short_passes_through(self):
        assert clip_tql("SELECT SUM(value)") == "SELECT SUM(value)"
        assert clip_tql(None) is None

    def test_long_is_truncated_with_ellipsis(self):
        clipped = clip_tql("x" * 500)
        assert len(clipped) == 203 and clipped.endswith("...")


class TestMetricsHTTPServer:
    def test_serves_render_output_on_metrics_only(self):
        endpoint = MetricsHTTPServer("127.0.0.1", 0,
                                     lambda: "repro_test_metric 1\n")
        endpoint.start()
        try:
            base = f"http://{endpoint.host}:{endpoint.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as r:
                assert r.status == 200
                assert "text/plain" in r.headers["Content-Type"]
                assert b"repro_test_metric 1" in r.read()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/other", timeout=5)
            assert err.value.code == 404
        finally:
            endpoint.stop()

    def test_render_failure_is_a_500_not_a_crash(self):
        def boom() -> str:
            raise RuntimeError("render exploded")

        endpoint = MetricsHTTPServer("127.0.0.1", 0, boom)
        endpoint.start()
        try:
            url = f"http://{endpoint.host}:{endpoint.port}/metrics"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 500
        finally:
            endpoint.stop()


class TestSloSummary:
    def test_all_within_slo(self):
        slo = slo_summary([10.0, 20.0, 30.0], 3, 100.0, 0.99)
        assert slo["attained"] == 1.0
        assert slo["burn"] == 0.0
        assert slo["met"]

    def test_misses_burn_the_budget(self):
        # 90% attained against a 99% target: 10x the error budget.
        latencies = [10.0] * 90 + [500.0] * 10
        slo = slo_summary(latencies, 100, 100.0, 0.99)
        assert slo["attained"] == pytest.approx(0.9)
        assert slo["burn"] == pytest.approx(10.0)
        assert not slo["met"]

    def test_errors_and_drops_count_as_misses(self):
        # Offered 10, only 5 latencies recorded: the other 5 failed or
        # were dropped, and they count against the SLO.
        slo = slo_summary([1.0] * 5, 10, 100.0, 0.5)
        assert slo["attained"] == pytest.approx(0.5)
        assert slo["met"]

    def test_boundary_value_is_within(self):
        slo = slo_summary([100.0], 1, 100.0, 0.99)
        assert slo["attained"] == 1.0

    def test_target_one_with_perfect_attainment(self):
        slo = slo_summary([1.0], 1, 100.0, 1.0)
        assert slo["burn"] == 0.0 and slo["met"]

    def test_target_one_with_any_miss_is_infinite_burn(self):
        slo = slo_summary([500.0], 1, 100.0, 1.0)
        assert slo["burn"] == float("inf") and not slo["met"]

    def test_zero_offered_is_vacuously_met(self):
        slo = slo_summary([], 0, 100.0, 0.99)
        assert slo["attained"] == 1.0 and slo["met"]

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            slo_summary([], 0, 100.0, 0.0)
        with pytest.raises(ValueError):
            slo_summary([], 0, 100.0, 1.5)
