"""Bursty Poisson arrivals: ``--burst`` co-schedules statements per
arrival event without changing the offered request rate, and the
accounting identity still balances to the statement."""

from __future__ import annotations

import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 40


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(ServerConfig(shards=2, key_space=(1, KEYS + 1),
                                          scan_batch=8, readers=4))
    yield handle
    handle.stop()


def _identity(report):
    totals = report["totals"]
    return (totals["requests"] + totals["dropped"]
            + sum(totals["errors"].values()))


class TestBurstArrivals:
    def test_burst_accounting(self, server):
        report = run_load(server.host, server.port, workers=2,
                          duration=1.0, seed_keys=KEYS, seed=17,
                          arrivals="poisson", rate=200.0, burst=4)
        totals = report["totals"]
        assert report["config"]["burst"] == 4
        assert totals["bursts"] > 0
        assert totals["offered"] > 0
        # Arrivals are whole events of 4 statements each.
        assert totals["offered"] % 4 == 0
        assert totals["offered"] == _identity(report)
        # Sent events account exactly for the non-dropped offer.
        assert totals["bursts"] * 4 == totals["offered"] - totals["dropped"]

    def test_burst_of_one_matches_plain_poisson_schema(self, server):
        report = run_load(server.host, server.port, workers=1,
                          duration=0.5, seed_keys=KEYS, seed=18,
                          skip_seed=True, arrivals="poisson", rate=100.0)
        assert report["config"]["burst"] == 1
        assert report["totals"]["offered"] == _identity(report)

    def test_validation(self, server):
        with pytest.raises(ValueError):
            run_load(server.host, server.port, workers=1, duration=0.1,
                     seed_keys=KEYS, seed=1, arrivals="poisson",
                     rate=50.0, burst=0)
        with pytest.raises(ValueError):
            run_load(server.host, server.port, workers=1, duration=0.1,
                     seed_keys=KEYS, seed=1, burst=4)
