"""RW-lock edge cases: retry storms, timeout paths, metrics-less locks.

Complements ``test_rwlock*.py``: the MVCC read path turns conflicted
readers into re-acquisition storms (fallback reads + retries), so the
lock must keep its writer-preference guarantee under rapid-fire shared
acquisitions, and every timeout/failure path must leave the lock state
clean — with or without :meth:`ReadWriteLock.attach_metrics`.
"""

import threading
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.rwlock import ReadWriteLock


class TestReaderRetryStorms:
    def test_writer_admitted_under_reader_storm(self):
        """A storm of short, re-acquiring readers (the MVCC fallback
        pattern) must not starve a queued writer."""
        lock = ReadWriteLock()
        stop = threading.Event()
        admitted = threading.Event()

        def storm():
            while not stop.is_set():
                if lock.acquire_read(timeout=0.05):
                    lock.release_read()
                # immediately re-acquire: no pause between retries

        readers = [threading.Thread(target=storm, daemon=True)
                   for _ in range(6)]
        for thread in readers:
            thread.start()
        time.sleep(0.02)  # storm is live

        def write():
            with lock.write_locked():
                admitted.set()

        writer = threading.Thread(target=write, daemon=True)
        writer.start()
        ok = admitted.wait(5.0)
        stop.set()
        writer.join(5.0)
        for thread in readers:
            thread.join(5.0)
        assert ok, "writer starved by reader retry storm"

    def test_storm_readers_resume_after_writer(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            # While exclusive: timed reader attempts fail cleanly...
            assert lock.acquire_read(timeout=0.01) is False
            assert lock.acquire_read(timeout=0.01) is False
        # ...and leave no residue once the writer releases.
        assert lock.acquire_read(timeout=1.0) is True
        assert lock.readers == 1
        lock.release_read()
        assert lock.readers == 0


class TestTimeoutStateHygiene:
    def test_write_timeout_unblocks_future_readers(self):
        """A timed-out writer must roll back its queued-writer claim,
        otherwise writer preference would block readers forever."""
        lock = ReadWriteLock()
        lock.acquire_read()
        try:
            assert lock.acquire_write(timeout=0.02) is False
        finally:
            lock.release_read()
        # The failed writer is fully dequeued: readers flow again.
        assert lock.acquire_read(timeout=1.0) is True
        lock.release_read()
        # And a later writer still works.
        assert lock.acquire_write(timeout=1.0) is True
        lock.release_write()

    def test_double_release_rejected_on_both_sides(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


class TestMetricsNeverAttached:
    def test_all_paths_work_without_registry(self):
        """Every acquisition path — contended, timed out, storming —
        must run with ``_metrics is None`` (the default) untouched."""
        lock = ReadWriteLock()
        assert lock._metrics is None
        with lock.read_locked():
            assert lock.readers == 1
            assert lock.acquire_write(timeout=0.01) is False
        with lock.write_locked():
            assert lock.writer_active
            assert lock.acquire_read(timeout=0.01) is False
        done = []

        def hammer():
            for _ in range(50):
                with lock.read_locked():
                    pass
            done.append(True)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(done) == 4
        assert lock._metrics is None  # nothing lazily materialized

    def test_late_attach_records_only_subsequent_waits(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            pass  # pre-attach traffic: invisible by design
        registry = MetricsRegistry()
        lock.attach_metrics(registry, {"shard": "0"})
        rendered = registry.render_prometheus()
        assert 'side="read"' in rendered
        before = rendered.count("repro_rwlock_wait_seconds_count")
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        after = registry.render_prometheus()
        # Both sides observed exactly their post-attach acquisitions.
        assert 'repro_rwlock_holders{shard="0",side="read"} 0' in after \
            or 'repro_rwlock_holders{side="read",shard="0"} 0' in after
        assert before == rendered.count("repro_rwlock_wait_seconds_count")
