"""Round-trip tests for the PR-7 protocol ops and error correlation.

``metrics_text`` and ``slowlog`` ride the same newline-JSON protocol as
``query``; the unknown-op error names the request ID so a client
multiplexing requests can attribute the rejection.
"""

import socket

import pytest

from repro.serve import protocol
from repro.serve.client import Client, ServerReplyError
from repro.serve.server import ServerConfig, serve_in_thread

KEY_SPACE = (1, 1001)


@pytest.fixture
def server():
    handle = serve_in_thread(ServerConfig(
        shards=2, key_space=KEY_SPACE, page_capacity=8, slow_ms=10_000.0))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with Client(server.host, server.port) as c:
        yield c


class TestMetricsTextOp:
    def test_round_trip_is_prometheus_exposition(self, client):
        client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
        client.repin()
        client.execute("SELECT SUM(value) WHERE key IN [1, 1001)")
        text = client.metrics_text()
        assert isinstance(text, str)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_op_latency_seconds histogram" in text
        assert 'op="query"' in text
        # Phase split series exist for the op that ran.
        assert 'phase="queue"' in text and 'phase="exec"' in text

    def test_identical_to_http_endpoint_format(self, client):
        # The op and the /metrics endpoint share one renderer; both must
        # end with a trailing newline (Prometheus text format).
        text = client.metrics_text()
        assert text.endswith("\n")


class TestSlowlogOp:
    def test_empty_ring_round_trips(self, client):
        payload = client.slowlog()
        assert payload == {"entries": [], "total": 0}

    def test_limit_validation(self, client):
        with pytest.raises(ServerReplyError) as err:
            client.request({"op": "slowlog", "limit": -1})
        assert err.value.code == "PROTOCOL"
        with pytest.raises(ServerReplyError):
            client.request({"op": "slowlog", "limit": "five"})

    def test_populated_ring_round_trips(self, server):
        with Client(server.host, server.port) as c:
            # Threshold is 10s; the sleep op crosses an artificial one by
            # reconfiguring the live server's threshold instead.
            server.server.config.slow_ms = 1.0
            c.sleep(0.02)
            payload = c.slowlog()
        assert payload["total"] >= 1
        entry = payload["entries"][0]
        assert entry["op"] == "sleep"
        assert entry["elapsed_ms"] >= 1.0
        assert "request_id" in entry and "queue_ms" in entry


class TestUnknownOp:
    def test_error_names_request_id(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as sock:
            reader = sock.makefile("rb")
            reader.readline()  # hello
            sock.sendall(protocol.encode(
                {"op": "frobnicate", "id": "req-42"}))
            import json
            response = json.loads(reader.readline())
        assert response["ok"] is False
        assert response["id"] == "req-42"
        assert "req-42" in response["error"]["message"]
        assert "frobnicate" in response["error"]["message"]

    def test_error_without_id_still_replies(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as sock:
            reader = sock.makefile("rb")
            reader.readline()  # hello
            sock.sendall(protocol.encode({"op": "frobnicate"}))
            import json
            response = json.loads(reader.readline())
        assert response["ok"] is False
        assert response["id"] is None


class TestRequestIdPlumbing:
    def test_response_echoes_client_id(self, client):
        response = client.request({"op": "ping", "id": "mine-7"})
        assert response["id"] == "mine-7"

    def test_server_assigns_id_when_missing(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as sock:
            reader = sock.makefile("rb")
            reader.readline()  # hello
            sock.sendall(b'{"op": "ping"}\n')
            import json
            response = json.loads(reader.readline())
        assert response["ok"] is True
        assert str(response["id"]).startswith("srv-")
