"""Trace propagation survives a worker kill and respawn.

A respawned worker is a brand-new process — fresh module state, fresh
pool cache, fresh PID.  A sampled request routed to it must still carry
the router's trace ID into the worker span, and the span must name the
*new* pid: distributed tracing has no memory of the dead worker.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 100


def _wait_dead(warehouse, index: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not warehouse.shard_alive(index):
            return
        time.sleep(0.02)
    pytest.fail(f"shard {index} still alive {timeout}s after SIGKILL")


def _worker_children(path, trace_id):
    for line in open(path):
        record = json.loads(line)
        if record.get("attrs", {}).get("trace_id") != trace_id:
            continue
        return [c for c in record.get("children", ())
                if c["name"].startswith("worker.")]
    return []


class TestTraceAcrossRespawn:
    def test_sampled_request_traces_through_respawned_worker(
            self, tmp_path):
        trace_path = tmp_path / "traces.jsonl"
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, KEYS + 1), executor="process",
            durable_dir=str(tmp_path / "wh"),
            trace_path=str(trace_path)))
        try:
            server = handle.server
            with Client(handle.host, handle.port) as client:
                client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
                client.repin()

                # Baseline: a forced-sample SELECT traced through the
                # original worker for shard 0.
                client.execute("SELECT SUM(value) WHERE key IN [1, 51)",
                               trace=True)
                first_trace = client.last_trace_id
                assert first_trace

                old_pid = server.warehouse.shard_pid(0)
                os.kill(old_pid, signal.SIGKILL)
                _wait_dead(server.warehouse, 0)

                new_pid = client.respawn(0)["pid"]
                assert new_pid != old_pid

                client.execute("SELECT SUM(value) WHERE key IN [1, 51)",
                               trace=True)
                second_trace = client.last_trace_id
                assert second_trace and second_trace != first_trace
        finally:
            handle.stop()

        children = _worker_children(trace_path, second_trace)
        assert children, "no worker span for the post-respawn request"
        for child in children:
            assert child["attrs"]["trace_id"] == second_trace
            assert child["attrs"]["pid"] == new_pid

        old_children = _worker_children(trace_path, first_trace)
        assert old_children and \
            old_children[0]["attrs"]["pid"] == old_pid
