"""Struct-framed hot-path RPC: codec round trips, pickle fallback, and
end-to-end equivalence through real shard workers."""

import pytest

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.serve.procpool import (
    ProcessShardedWarehouse,
    _AggRef,
    _STRUCT_MAGIC,
    _pack_request,
    _unpack_request,
)

KEYS = 40
KEY_SPACE = (1, KEYS + 1)


class TestCodec:
    def test_round_trips_every_hot_op(self):
        cases = [
            ("insert", (7, 2.5, 10)),
            ("delete", (7, 11)),
            ("aggregate", (KeyRange(1, 9), Interval(0, 20), _AggRef("SUM"))),
            ("aggregate_all", (KeyRange(1, 9), Interval(0, 20))),
            ("snapshot", (KeyRange(1, 9), 7)),
        ]
        for method, args in cases:
            frame = _pack_request(42, method, args)
            assert frame is not None and frame[0] == _STRUCT_MAGIC
            rid, out_method, out_args = _unpack_request(frame)
            assert (rid, out_method) == (42, method)
            if method == "aggregate":
                key_range, interval, agg = out_args
                assert (key_range, interval) == args[:2]
                assert agg is SUM  # rehydrated from the registry
            else:
                assert out_args == args

    def test_every_aggregate_has_a_wire_code(self):
        for agg in (SUM, COUNT, AVG, MIN, MAX):
            frame = _pack_request(
                1, "aggregate", (KeyRange(1, 2), Interval(0, 1), agg))
            assert frame is not None
            _rid, _method, (_kr, _iv, out) = _unpack_request(frame)
            assert out is agg

    def test_unpackable_requests_fall_back_to_pickle(self):
        # Unknown method, out-of-range int, wrong arg type, bool value:
        # each returns None so the caller ships a pickle instead.
        assert _pack_request(1, "load_events_packed", (b"x", 10)) is None
        assert _pack_request(1, "insert", (2 ** 63, 1.0, 1)) is None
        assert _pack_request(1, "insert", ("seven", 1.0, 1)) is None
        assert _pack_request(1, "insert", (7, True, 1)) is None
        assert _pack_request(1, "delete", (7,)) is None
        assert _pack_request(
            1, "aggregate", (KeyRange(1, 2), Interval(0, 1), "SUM")) is None

    def test_negative_keys_and_times_survive(self):
        frame = _pack_request(9, "insert", (-5, -1.25, -3))
        assert frame is not None
        assert _unpack_request(frame) == (9, "insert", (-5, -1.25, -3))


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pool(self):
        warehouse = ProcessShardedWarehouse(shards=2, key_space=KEY_SPACE)
        yield warehouse
        warehouse.close()

    def test_struct_framed_ops_round_trip_through_workers(self, pool):
        for key in range(1, KEYS + 1):
            pool.insert(key, float(key), 1)
        pool.delete(1, 2)
        whole, interval = KeyRange(*KEY_SPACE), Interval(1, 2)
        expected = sum(range(1, KEYS + 1))
        assert pool.sum(whole, interval) == float(expected)
        assert pool.count(whole, interval) == float(KEYS)
        assert len(pool.snapshot(whole, 1)) == KEYS
        packed = sum(c.packed_requests for c in pool._clients)
        # Every insert/delete/aggregate/snapshot above shipped as a
        # struct frame, none fell back to pickle.
        assert packed >= KEYS + 1 + 2 * 2 + 2

    def test_worker_stats_surface_packed_counts(self, pool):
        rows = pool.worker_stats()
        assert len(rows) == 2
        for row in rows:
            assert row["alive"] is True
            assert row["packed_requests"] >= 0
        assert sum(row["packed_requests"] for row in rows) > 0
