"""Server-level MVCC: commit groups under ``writers > 1``, concurrency
gauges in the metrics plane, and byte-identity with the serialized path."""

import threading

import pytest

from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 64
KEY_SPACE = (1, KEYS + 1)


def _metric(registry, name):
    family = registry.get(name) or {}
    return sum(entry.get("value", 0.0)
               for entry in family.get("series", []))


def _drive(handle, writers):
    """``writers`` client threads insert disjoint keys at one timestamp."""
    errors = []

    def run(w):
        try:
            with Client(handle.host, handle.port, retries=0) as client:
                for key in range(w + 1, KEYS + 1, writers):
                    client.execute(f"INSERT KEY {key} VALUE {key}.0 AT 1")
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(w,))
               for w in range(writers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


def _answers(handle):
    stmts = [
        f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})",
        f"SELECT COUNT(*) WHERE key IN [1, {KEYS + 1})",
        f"SELECT MAX(value) WHERE key IN [20, 50)",
    ]
    with Client(handle.host, handle.port) as client:
        client.repin()
        return [repr(client.execute(s)) for s in stmts]


class TestCommitGroups:
    def test_multi_writer_matches_serial_and_forms_groups(self):
        multi = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, writers=4, readers=4,
            max_inflight=16))
        try:
            _drive(multi, 4)
            multi_answers = _answers(multi)
            with Client(multi.host, multi.port) as client:
                registry = client.metrics()
            groups = _metric(registry, "repro_commit_groups")
            records = _metric(registry, "repro_commit_group_records")
            assert groups > 0
            assert records == KEYS
            assert _metric(registry, "repro_commit_group_max_size") >= 1
        finally:
            multi.stop()

        serial = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, writers=1))
        try:
            _drive(serial, 1)
            serial_answers = _answers(serial)
            with Client(serial.host, serial.port) as client:
                registry = client.metrics()
            # The writers=1 path never touches the commit-group plumbing.
            assert _metric(registry, "repro_commit_groups") == 0
        finally:
            serial.stop()
        assert multi_answers == serial_answers

    def test_group_member_error_is_isolated(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, writers=4))
        try:
            with Client(handle.host, handle.port) as client:
                client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
                from repro.serve.client import ServerReplyError
                with pytest.raises(ServerReplyError) as info:
                    client.execute("INSERT KEY 5 VALUE 2.0 AT 1")
                assert info.value.code == "DUPLICATE_KEY"
                # The connection and the write path stay healthy.
                client.execute("INSERT KEY 6 VALUE 2.0 AT 1")
                client.repin()
                total = client.execute(
                    f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})")
                assert total == 3.0
        finally:
            handle.stop()


class TestMVCCGauges:
    def test_epoch_and_read_gauges_published(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE))  # mvcc defaults on
        try:
            with Client(handle.host, handle.port) as client:
                client.execute("INSERT KEY 3 VALUE 1.0 AT 1")
                client.execute("INSERT KEY 40 VALUE 2.0 AT 1")
                client.repin()
                client.execute(
                    f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})")
                registry = client.metrics()
            epochs = registry.get("repro_shard_write_epoch") or {}
            by_shard = {entry["labels"].get("shard"): entry["value"]
                        for entry in epochs.get("series", [])}
            assert set(by_shard) == {"0", "1"}
            assert all(value >= 1 for value in by_shard.values())
            assert _metric(registry, "repro_mvcc_reads_optimistic") > 0
            assert _metric(registry, "repro_mvcc_reads_fallbacks") == 0
        finally:
            handle.stop()

    def test_no_mvcc_flag_disables_optimistic_reads(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, mvcc=False))
        try:
            with Client(handle.host, handle.port) as client:
                client.execute("INSERT KEY 3 VALUE 1.0 AT 1")
                client.repin()
                client.execute(
                    f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})")
                registry = client.metrics()
            assert _metric(registry, "repro_mvcc_reads_optimistic") == 0
        finally:
            handle.stop()


class TestCLIFlags:
    def test_parser_accepts_new_flags(self):
        from repro.serve.__main__ import build_parser

        args = build_parser().parse_args(
            ["--writers", "4", "--no-mvcc", "--merge-qps", "8.5"])
        assert args.writers == 4
        assert args.mvcc is False
        assert args.merge_qps == 8.5
        defaults = build_parser().parse_args([])
        assert defaults.writers == 1
        assert defaults.mvcc is True
        assert defaults.merge_qps is None
