"""Epoch-validated readers, seqlock brackets, batch apply, deferred
cache stores — the MVCC read/write path in isolation."""

import threading

import pytest

from repro.core.cache import (CacheConfig, begin_deferred_stores,
                              commit_deferred_stores,
                              discard_deferred_stores)
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import DuplicateKeyError, QueryError
from repro.serve.mvcc import MVCCStats, ShardEpoch
from repro.serve.sharded import ShardedWarehouse

KEYS = 120
KEY_SPACE = (1, KEYS + 1)


def _loaded(mvcc=True, shards=2):
    warehouse = ShardedWarehouse(shards=shards, key_space=KEY_SPACE,
                                 thread_safe=True, mvcc=mvcc)
    for key in range(1, KEYS + 1):
        warehouse.insert(key, float(key), key)  # monotonic clock
    return warehouse


class TestShardEpoch:
    def test_write_bracket_toggles_parity(self):
        epoch = ShardEpoch()
        assert epoch.value == 0
        epoch.begin_write()
        assert epoch.value % 2 == 1
        epoch.end_write()
        assert epoch.value == 2

    def test_validate_rejects_odd_entry_and_movement(self):
        epoch = ShardEpoch()
        started = epoch.read_begin()
        assert epoch.read_validate(started)
        epoch.begin_write()
        # Entered before the write began, write landed under the read.
        assert not epoch.read_validate(started)
        mid = epoch.read_begin()
        assert mid % 2 == 1
        assert not epoch.read_validate(mid)
        epoch.end_write()
        clean = epoch.read_begin()
        assert epoch.read_validate(clean)


class TestMVCCStats:
    def test_counters_accumulate(self):
        stats = MVCCStats()
        stats.note_optimistic()
        stats.note_retry()
        stats.note_retry()
        stats.note_fallback()
        assert stats.as_dict() == {"optimistic": 1, "retries": 2,
                                   "fallbacks": 1}


class TestOptimisticReads:
    def test_mvcc_requires_thread_safe(self):
        warehouse = ShardedWarehouse(shards=2, key_space=KEY_SPACE,
                                     thread_safe=False, mvcc=True)
        assert warehouse.mvcc is False

    def test_reads_match_locked_backend_and_stay_lock_free(self):
        mvcc = _loaded(mvcc=True)
        locked = _loaded(mvcc=False)
        whole, interval = KeyRange(*KEY_SPACE), Interval(1, mvcc.now + 1)
        assert repr(mvcc.sum(whole, interval)) == \
            repr(locked.sum(whole, interval))
        assert repr(mvcc.snapshot(whole, mvcc.now)) == \
            repr(locked.snapshot(whole, locked.now))
        stats = mvcc.mvcc_stats.as_dict()
        assert stats["optimistic"] > 0
        assert stats["fallbacks"] == 0

    def test_deterministic_error_is_raised_not_retried(self):
        warehouse = _loaded(mvcc=True)
        before = warehouse.mvcc_stats.as_dict()
        with pytest.raises(QueryError):
            warehouse.sum(KeyRange(*KEY_SPACE), Interval(5, 2))
        after = warehouse.mvcc_stats.as_dict()
        assert after["retries"] == before["retries"]
        assert after["fallbacks"] == before["fallbacks"]

    def test_concurrent_reads_under_writes_are_consistent(self):
        warehouse = _loaded(mvcc=True)
        whole = KeyRange(*KEY_SPACE)
        base_now = warehouse.now
        stop = threading.Event()
        failures = []

        def churn():
            t = base_now + 1
            key = 1
            while not stop.is_set():
                warehouse.update(key, 1000.0, t)
                key = key % KEYS + 1
                t += 1

        def read():
            # Version-pinned reads below base_now touch only closed
            # history: every validated answer must equal the idle one.
            expected = repr(warehouse.sum(whole, Interval(1, base_now + 1)))
            for _ in range(300):
                got = repr(warehouse.sum(whole, Interval(1, base_now + 1)))
                if got != expected:
                    failures.append((expected, got))
                    return

        writer = threading.Thread(target=churn, daemon=True)
        readers = [threading.Thread(target=read) for _ in range(3)]
        writer.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer.join()
        assert not failures, f"torn read escaped validation: {failures[0]}"
        assert warehouse.mvcc_stats.as_dict()["optimistic"] > 0

    def test_fallback_counts_when_budget_exhausted(self):
        warehouse = _loaded(mvcc=True)
        warehouse.read_retries = 0
        shard = warehouse.shard_index(1)
        epoch = warehouse.epochs[shard]
        epoch.begin_write()  # simulate a stuck writer mid-bracket
        try:
            # Reader can't validate, budget is zero -> read-lock path
            # (the writer holds only the epoch, not the lock, so the
            # fallback read completes).
            lo, hi = warehouse.boundaries[shard], \
                warehouse.boundaries[shard + 1]
            warehouse.sum(KeyRange(lo, hi), Interval(1, warehouse.now + 1))
        finally:
            epoch.end_write()
        assert warehouse.mvcc_stats.as_dict()["fallbacks"] == 1


class TestDeferredCacheStores:
    def test_stores_park_until_commit(self):
        warehouse = TemporalWarehouse(key_space=KEY_SPACE)
        warehouse.insert(1, 1.0, 1)
        warehouse.insert(2, 2.0, 2)
        warehouse.enable_cache(CacheConfig(), thread_safe=True)
        whole, interval = KeyRange(*KEY_SPACE), Interval(1, 3)
        begin_deferred_stores()
        warehouse.sum(whole, interval)
        assert len(warehouse.result_cache) == 0
        commit_deferred_stores()
        assert len(warehouse.result_cache) > 0

    def test_discard_drops_parked_stores(self):
        warehouse = TemporalWarehouse(key_space=KEY_SPACE)
        warehouse.insert(1, 1.0, 1)
        warehouse.enable_cache(CacheConfig(), thread_safe=True)
        begin_deferred_stores()
        warehouse.sum(KeyRange(*KEY_SPACE), Interval(1, 2))
        discard_deferred_stores()
        commit_deferred_stores()  # no-op: nothing pending
        assert len(warehouse.result_cache) == 0


class TestApplyBatch:
    def test_batch_matches_serial_and_bumps_epoch_once(self):
        serial = TemporalWarehouse(key_space=KEY_SPACE)
        batched = TemporalWarehouse(key_space=KEY_SPACE)
        ops = [("insert", 1, 1.0, 1), ("insert", 2, 2.0, 1),
               ("delete", 1, 2)]
        serial.insert(1, 1.0, 1)
        serial.insert(2, 2.0, 1)
        serial.delete(1, 2)
        before = batched.write_epoch
        results = batched.apply_batch(ops)
        assert batched.write_epoch == before + 1
        assert [tag for tag, _ in results] == ["ok", "ok", "ok"]
        assert results[2][1] == 1.0  # delete returns the dead value
        whole, interval = KeyRange(*KEY_SPACE), Interval(1, 3)
        assert repr(serial.sum(whole, interval)) == \
            repr(batched.sum(whole, interval))

    def test_per_op_errors_are_isolated(self):
        warehouse = TemporalWarehouse(key_space=KEY_SPACE)
        results = warehouse.apply_batch([
            ("insert", 1, 1.0, 1),
            ("insert", 1, 9.0, 2),   # duplicate: fails alone
            ("insert", 2, 2.0, 3),
        ])
        tags = [tag for tag, _ in results]
        assert tags == ["ok", "err", "ok"]
        from repro.errors import error_from_payload
        exc = error_from_payload(results[1][1])
        assert isinstance(exc, DuplicateKeyError)
        assert warehouse.sum(KeyRange(*KEY_SPACE), Interval(3, 4)) == 3.0

    def test_all_failed_batch_logs_nothing(self, tmp_path):
        warehouse = TemporalWarehouse.open_durable(
            str(tmp_path), key_space=KEY_SPACE)
        warehouse.insert(1, 1.0, 1)
        seq = warehouse.wal_seq()
        results = warehouse.apply_batch([("insert", 1, 5.0, 2),
                                         ("frobnicate", 2)])
        assert [tag for tag, _ in results] == ["err", "err"]
        assert warehouse.wal_seq() == seq
        warehouse.close()

    def test_sharded_apply_shard_batch_routes_to_one_shard(self):
        warehouse = ShardedWarehouse(shards=2, key_space=KEY_SPACE,
                                     thread_safe=True, mvcc=True)
        shard = warehouse.shard_index(3)
        epoch_before = warehouse.epochs[shard].value
        results = warehouse.apply_shard_batch(
            shard, [("insert", 3, 3.0, 1), ("insert", 4, 4.0, 1)])
        assert [tag for tag, _ in results] == ["ok", "ok"]
        # One seqlock bracket for the whole batch: exactly +2.
        assert warehouse.epochs[shard].value == epoch_before + 2
        assert warehouse.sum(KeyRange(*KEY_SPACE), Interval(1, 2)) == 7.0
