"""Cache invalidation under concurrent writer stress, oracle-checked.

The cached counterpart of ``test_stress``: a writer streams updates into
a thread-safe :class:`ShardedWarehouse` *with the read-path caches
attached* while reader threads hammer a small set of repeated rectangles
below the write watermark.  Every answer must equal the single-threaded
:class:`TupleStoreOracle` — a cache serving one stale value fails the
run.  Repetition makes the cache do real work (hits are asserted), and a
deterministic epilogue drives open-frontier queries across explicit
epoch bumps to pin down the invalidation contract exactly.
"""

import random
import threading

from repro.core.model import Interval, KeyRange
from repro.serve.sharded import ShardedWarehouse

from tests.oracles import TupleStoreOracle
from tests.serve.test_stress import build_events

KEY_SPACE = (1, 201)
READERS = 4


class TestCachedWriterReaderStress:
    def test_cached_snapshot_reads_match_oracle(self):
        events = build_events(31)
        final_t = max(t for *_rest, t in events)
        probes = [
            (KeyRange(1, 201), "sum"),
            (KeyRange(1, 201), "count"),
            (KeyRange(40, 120), "sum"),
            (KeyRange(90, 180), "count"),
        ]

        oracle = TupleStoreOracle()
        for op, key, value, t in events:
            if op == "insert":
                oracle.insert(key, value, t)
            else:
                oracle.delete(key, t)

        def expected(probe_index, snap):
            kr, kind = probes[probe_index]
            fn = oracle.rta_sum if kind == "sum" else oracle.rta_count
            return fn(kr.low, kr.high, 1, snap + 1)

        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE,
                                   page_capacity=8, thread_safe=True,
                                   buffer_policy="2q")
        sharded.enable_cache()

        watermark = {"t": 0}
        stop = threading.Event()
        failures = []
        checked = [0] * READERS

        def writer():
            try:
                for op, key, value, t in events:
                    if op == "insert":
                        sharded.insert(key, value, t)
                    else:
                        sharded.delete(key, t)
                    watermark["t"] = max(watermark["t"], t - 1)
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader(index):
            rng = random.Random(2000 + index)
            try:
                while not failures:
                    snap = watermark["t"]
                    if snap < 1:
                        if stop.is_set():
                            break
                        continue
                    pi = rng.randrange(len(probes))
                    kr, kind = probes[pi]
                    interval = Interval(1, snap + 1)
                    want = expected(pi, snap)
                    # Ask twice: the repeat is the cache's bread and
                    # butter, and both answers must match the oracle.
                    for _ in range(2):
                        got = (sharded.sum(kr, interval) if kind == "sum"
                               else sharded.count(kr, interval))
                        if got != want:
                            failures.append(
                                f"reader {index}: {kind} {kr} AS OF "
                                f"{snap}: got {got!r} want {want!r}")
                            return
                    checked[index] += 1
                    if stop.is_set() and checked[index] >= 5:
                        break
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(f"reader {index}: {exc!r}")

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(i,))
                    for i in range(READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "stress test hung"
        assert not failures, failures[:5]
        assert all(n > 0 for n in checked), checked

        snapshot = sharded.cache_snapshot().as_dict()
        assert snapshot["result"]["hits"] > 0, snapshot

        # Settled state still matches the oracle (served from cache now).
        for pi in range(len(probes)):
            kr, kind = probes[pi]
            interval = Interval(1, final_t + 1)
            for _ in range(2):
                got = (sharded.sum(kr, interval) if kind == "sum"
                       else sharded.count(kr, interval))
                assert got == expected(pi, final_t)
        sharded.check_invariants()

    def test_epoch_bumps_never_serve_stale_open_entries(self):
        """Deterministic epilogue: open-frontier rectangle, cached, then
        written under, re-queried — across many bump/probe rounds."""
        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE,
                                   page_capacity=8, thread_safe=True)
        sharded.enable_cache()
        oracle = TupleStoreOracle()
        kr = KeyRange(1, 201)
        t = 1
        for round_no in range(30):
            key = 2 * round_no + 1
            sharded.insert(key, float(key), t)
            oracle.insert(key, float(key), t)
            open_interval = Interval(1, sharded.now + 1)
            want = oracle.rta_sum(kr.low, kr.high, 1, open_interval.end)
            assert sharded.sum(kr, open_interval) == want   # fill
            assert sharded.sum(kr, open_interval) == want   # hit
            # Write at the SAME frontier instant, then re-ask the exact
            # rectangle: the epoch bump must force a recompute.
            bump = 2 * round_no + 2
            sharded.insert(bump, float(bump), t)
            oracle.insert(bump, float(bump), t)
            want = oracle.rta_sum(kr.low, kr.high, 1, open_interval.end)
            assert sharded.sum(kr, open_interval) == want
            t += 1
        snapshot = sharded.cache_snapshot().as_dict()
        assert snapshot["result"]["stale_drops"] > 0, snapshot
        assert snapshot["result"]["hits"] > 0, snapshot
