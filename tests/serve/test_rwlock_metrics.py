"""RW-lock contention metrics: wait histograms and holder gauges.

``attach_metrics`` is the observability hook PR 7 adds to the per-shard
lock; until it is called, acquisitions must skip all bookkeeping.
"""

import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.serve.rwlock import ReadWriteLock, WAIT_BUCKETS
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.client import Client


class TestAttachMetrics:
    def test_unattached_lock_records_nothing(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert lock._metrics is None

    def test_waits_land_in_per_side_histograms(self):
        registry = MetricsRegistry()
        lock = ReadWriteLock()
        lock.attach_metrics(registry, {"shard": "3"})
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        read_wait = registry.histogram(
            "repro_rwlock_wait_seconds", "",
            {"shard": "3", "side": "read"}, buckets=WAIT_BUCKETS)
        write_wait = registry.histogram(
            "repro_rwlock_wait_seconds", "",
            {"shard": "3", "side": "write"}, buckets=WAIT_BUCKETS)
        assert read_wait.count == 1
        assert write_wait.count == 1

    def test_holder_gauges_track_live_state(self):
        registry = MetricsRegistry()
        lock = ReadWriteLock()
        lock.attach_metrics(registry, {"shard": "0"})
        readers = registry.gauge("repro_rwlock_holders", "",
                                 {"shard": "0", "side": "read"})
        writers = registry.gauge("repro_rwlock_holders", "",
                                 {"shard": "0", "side": "write"})
        with lock.read_locked():
            assert readers.value == 1
            with lock.read_locked():
                assert readers.value == 2
        assert readers.value == 0
        with lock.write_locked():
            assert writers.value == 1
        assert writers.value == 0

    def test_contended_write_wait_is_measured(self):
        registry = MetricsRegistry()
        lock = ReadWriteLock()
        lock.attach_metrics(registry, {"shard": "0"})
        release = threading.Event()
        acquired = threading.Event()

        def reader():
            with lock.read_locked():
                acquired.set()
                release.wait(5.0)

        thread = threading.Thread(target=reader)
        thread.start()
        assert acquired.wait(5.0)
        time.sleep(0.05)  # make the writer's wait measurable
        release.set()
        with lock.write_locked():
            pass
        thread.join(5.0)
        write_wait = registry.histogram(
            "repro_rwlock_wait_seconds", "",
            {"shard": "0", "side": "write"}, buckets=WAIT_BUCKETS)
        assert write_wait.count == 1
        assert write_wait.sum > 0.0

    def test_exposition_renders_both_sides(self):
        registry = MetricsRegistry()
        lock = ReadWriteLock()
        lock.attach_metrics(registry, {"shard": "1"})
        with lock.read_locked():
            pass
        text = registry.render_prometheus()
        assert 'repro_rwlock_wait_seconds_bucket{shard="1",side="read"' \
            in text
        assert 'repro_rwlock_holders{shard="1",side="read"}' in text


class TestServerWiring:
    def test_thread_backend_locks_feed_the_server_registry(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, 101), page_capacity=8))
        try:
            with Client(handle.host, handle.port) as client:
                client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
                client.repin()
                client.execute("SELECT SUM(value) WHERE key IN [1, 101)")
                text = client.metrics_text()
        finally:
            handle.stop()
        assert "repro_rwlock_wait_seconds" in text
        assert 'side="read"' in text and 'side="write"' in text
        assert 'shard="0"' in text and 'shard="1"' in text
