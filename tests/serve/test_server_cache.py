"""Server-level cache wiring: default-on, ``cache=False`` opt-out, and
the ``metrics`` op's merged cache gauges."""

from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread


def _drive(config):
    handle = serve_in_thread(config)
    try:
        with Client(handle.host, handle.port) as client:
            for k in range(1, 41):
                client.execute(f"INSERT KEY {k} VALUE {k} AT {k}")
            client.repin()
            tql = "SELECT SUM(value) WHERE key IN [1, 81) " \
                  "AND time DURING [1, 30)"
            first = client.execute(tql)
            second = client.execute(tql)
            metrics = client.metrics()
        return first, second, metrics, handle.server.warehouse
    finally:
        handle.stop()


def test_cache_on_by_default_and_exported():
    first, second, metrics, warehouse = _drive(
        ServerConfig(port=0, shards=2, key_space=(1, 81)))
    assert first == second
    hits = metrics["repro_cache_hits"]["series"]
    by_layer = {row["labels"]["cache"]: row["value"] for row in hits}
    assert by_layer["result"] >= 1  # the repeated SELECT was served hot
    assert all(shard.result_cache is not None
               for shard in warehouse.shards)


def test_no_cache_opt_out_is_inert():
    first, second, metrics, warehouse = _drive(
        ServerConfig(port=0, shards=2, key_space=(1, 81), cache=False))
    assert first == second
    assert "repro_cache_hits" not in metrics  # no gauges, no layers
    assert all(shard.result_cache is None
               for shard in warehouse.shards)
