"""ShardedWarehouse: routing and scatter-gather exactness.

The acceptance property: for SUM/COUNT/AVG/MIN/MAX, a sharded warehouse
with N ∈ {1, 2, 4} shards answers bit-identically to one
:class:`TemporalWarehouse` over the same workload.  Values are
integer-valued floats, for which float addition is exact, so "identical"
means ``==`` with no tolerance.
"""

import random

import pytest

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError, ShardRoutingError
from repro.serve.sharded import ShardedWarehouse

KEY_SPACE = (1, 401)


def apply_workload(target, events):
    for op, key, value, t in events:
        if op == "insert":
            target.insert(key, value, t)
        else:
            target.delete(key, t)


def random_workload(seed, keys=KEY_SPACE, events=300):
    """A valid 1TNF update stream with integer values.

    Never deletes a key at its own insertion instant: a zero-length
    tuple is counted by the MVSBT reduction but can never be retrieved,
    so the two plans would (legitimately) disagree on it.
    """
    rng = random.Random(seed)
    alive = {}  # key -> insertion time
    out = []
    t = 1
    for _ in range(events):
        deletable = sorted(k for k, born in alive.items() if born < t)
        if deletable and rng.random() < 0.3:
            key = rng.choice(deletable)
            del alive[key]
            out.append(("delete", key, 0.0, t))
        else:
            key = rng.randint(keys[0], keys[1] - 1)
            if key in alive:
                continue
            alive[key] = t
            out.append(("insert", key, float(rng.randint(1, 50)), t))
        if rng.random() < 0.5:
            t += 1
    return out


class TestRouting:
    def test_boundaries_partition_key_space(self):
        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE)
        assert sharded.boundaries[0] == KEY_SPACE[0]
        assert sharded.boundaries[-1] == KEY_SPACE[1]
        assert sharded.shard_count == 4
        # Every key maps to exactly one shard whose range contains it.
        for key in range(KEY_SPACE[0], KEY_SPACE[1]):
            index = sharded.shard_index(key)
            lo, hi = (sharded.boundaries[index],
                      sharded.boundaries[index + 1])
            assert lo <= key < hi

    def test_out_of_domain_key_rejected(self):
        sharded = ShardedWarehouse(shards=2, key_space=KEY_SPACE)
        with pytest.raises(ShardRoutingError):
            sharded.insert(KEY_SPACE[1], 1.0, 1)
        with pytest.raises(ShardRoutingError):
            sharded.shard_index(0)

    def test_query_ranges_clip_silently(self):
        sharded = ShardedWarehouse(shards=2, key_space=KEY_SPACE)
        sharded.insert(5, 3.0, 1)
        # A range wider than the key space still answers (no routing error).
        assert sharded.sum(KeyRange(1, 10**6), Interval(1, 5)) == 3.0
        # A range entirely outside holds nothing.
        assert sharded.sum(KeyRange(KEY_SPACE[1], 10**6),
                           Interval(1, 5)) == 0.0
        assert sharded.min(KeyRange(KEY_SPACE[1], 10**6),
                           Interval(1, 5)) is None

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedWarehouse(shards=50, key_space=(1, 20))
        with pytest.raises(ValueError):
            ShardedWarehouse(shards=0)


class TestScatterGatherExactness:
    """The acceptance property test, N in {1, 2, 4}."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("seed", [7, 21])
    def test_bit_identical_to_single_warehouse(self, shards, seed):
        events = random_workload(seed)
        single = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8,
                                   buffer_pages=32)
        sharded = ShardedWarehouse(shards=shards, key_space=KEY_SPACE,
                                   page_capacity=8, buffer_pages=32)
        apply_workload(single, events)
        apply_workload(sharded, events)
        assert sharded.now == single.now

        rng = random.Random(seed + 1)
        aggregates = (SUM, COUNT, AVG, MIN, MAX)
        for _ in range(40):
            lo = rng.randint(1, KEY_SPACE[1] - 2)
            hi = rng.randint(lo + 1, KEY_SPACE[1])
            t0 = rng.randint(1, max(single.now, 1))
            t1 = rng.randint(t0 + 1, single.now + 1)
            key_range, interval = KeyRange(lo, hi), Interval(t0, t1)
            for aggregate in aggregates:
                expected = single.aggregate(key_range, interval, aggregate)
                actual = sharded.aggregate(key_range, interval, aggregate)
                assert actual == expected, (
                    f"{aggregate.name} over {key_range} x {interval}: "
                    f"sharded={actual!r} single={expected!r}"
                )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_snapshot_history_tuples_match(self, shards):
        events = random_workload(11)
        single = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
        sharded = ShardedWarehouse(shards=shards, key_space=KEY_SPACE,
                                   page_capacity=8)
        apply_workload(single, events)
        apply_workload(sharded, events)

        r = KeyRange(*KEY_SPACE)
        for t in (1, single.now // 2, single.now):
            t = max(t, 1)
            assert sharded.snapshot(r, t) == single.snapshot(r, t)
        interval = Interval(1, single.now + 1)
        by_key = lambda tup: (tup.key, tup.interval.start)
        assert (sorted(sharded.tuples_in(r, interval), key=by_key)
                == sorted(single.tuples_in(r, interval), key=by_key))
        touched = {key for op, key, _v, _t in events}
        for key in sorted(touched)[:20]:
            assert sharded.history(key) == single.history(key)

    @pytest.mark.parametrize("aggregate", [SUM, COUNT, AVG])
    def test_timeline_matches(self, aggregate):
        events = random_workload(13)
        single = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE,
                                   page_capacity=8)
        apply_workload(single, events)
        apply_workload(sharded, events)
        r = KeyRange(50, 350)
        interval = Interval(1, single.now + 1)
        buckets = min(6, interval.length)
        assert (sharded.aggregates.timeline(r, interval, buckets, aggregate)
                == single.aggregates.timeline(r, interval, buckets,
                                              aggregate))

    def test_timeline_validation_matches_rta(self):
        sharded = ShardedWarehouse(shards=2, key_space=KEY_SPACE)
        sharded.insert(10, 1.0, 1)
        with pytest.raises(QueryError):
            sharded.aggregates.timeline(KeyRange(1, 10), Interval(1, 5), 0)
        with pytest.raises(QueryError):
            sharded.aggregates.timeline(KeyRange(1, 10), Interval(1, 3), 9)


class TestExplainAndMaintenance:
    def test_explain_reports_intersecting_shards_only(self):
        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE)
        for key in range(1, 40):
            sharded.insert(key, 1.0, key)
        plans = sharded.explain(KeyRange(1, 150), Interval(1, 10))
        assert [p.shard for p in plans] == [0, 1]
        assert plans[0].key_range.high <= sharded.boundaries[1]
        for plan in plans:
            assert plan.plan.plan in ("mvsbt", "mvbt-scan")

    def test_invariants_and_page_count(self):
        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE,
                                   page_capacity=8)
        apply_workload(sharded, random_workload(3))
        sharded.check_invariants()
        assert sharded.page_count() > 0


class TestDurability:
    def test_open_durable_round_trip(self, tmp_path):
        events = random_workload(17)
        sharded = ShardedWarehouse.open_durable(str(tmp_path), shards=4,
                                                key_space=KEY_SPACE,
                                                page_capacity=8)
        apply_workload(sharded, events)
        expected = sharded.sum(KeyRange(*KEY_SPACE),
                               Interval(1, sharded.now + 1))
        sharded.checkpoint()
        sharded.close()
        assert sharded.closed

        reopened = ShardedWarehouse.open_durable(str(tmp_path))
        assert reopened.sum(KeyRange(*KEY_SPACE),
                            Interval(1, reopened.now + 1)) == expected
        reopened.close()

    def test_layout_frozen_across_reopen(self, tmp_path):
        sharded = ShardedWarehouse.open_durable(str(tmp_path), shards=4,
                                                key_space=KEY_SPACE)
        boundaries = sharded.boundaries
        sharded.close()
        # Conflicting shard/key-space arguments are ignored on reopen.
        reopened = ShardedWarehouse.open_durable(str(tmp_path), shards=2,
                                                 key_space=(1, 50))
        assert reopened.boundaries == boundaries
        assert reopened.key_space == KEY_SPACE
        reopened.close()

    def test_recovery_without_checkpoint_replays_wal(self, tmp_path):
        sharded = ShardedWarehouse.open_durable(str(tmp_path), shards=2,
                                                key_space=KEY_SPACE)
        sharded.insert(10, 5.0, 1)
        sharded.insert(300, 7.0, 2)
        # Simulate a crash: no checkpoint, no close.
        del sharded

        recovered = ShardedWarehouse.open_durable(str(tmp_path))
        assert recovered.sum(KeyRange(*KEY_SPACE), Interval(1, 3)) == 12.0
        recovered.close()
