"""Open-loop (Poisson) arrivals in the load generator.

The accounting identity is the contract: every measured arrival the
schedule generates is either answered (a latency sample), dropped (the
loop fell more than ``drop_after`` behind schedule), or errored —
``offered == requests + dropped + sum(errors)`` exactly.  A rate far
beyond one worker's closed-loop capacity must therefore show drops
instead of silently slowing the offered load (coordinated omission).
"""

from __future__ import annotations

import pytest

from repro.serve.loadgen import run_load
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 40


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(ServerConfig(shards=2, key_space=(1, KEYS + 1)))
    yield handle
    handle.stop()


def _identity(report):
    totals = report["totals"]
    return (totals["requests"] + totals["dropped"]
            + sum(totals["errors"].values()))


class TestOpenLoop:
    def test_poisson_accounting(self, server):
        report = run_load(server.host, server.port, workers=2,
                          duration=1.0, seed_keys=KEYS, seed=7,
                          arrivals="poisson", rate=100.0)
        totals = report["totals"]
        assert report["config"]["arrivals"] == "poisson"
        assert report["config"]["rate"] == 100.0
        assert totals["offered"] > 0
        assert totals["offered"] == _identity(report)
        # A modest rate is comfortably served: nearly all arrivals land.
        assert totals["requests"] > 0.5 * totals["offered"]
        assert report["latency_ms"]["p50"] > 0.0

    def test_overload_drops_instead_of_slowing(self, server):
        # One worker, zero lateness tolerance, a rate far above its
        # closed-loop capacity: the schedule keeps arriving regardless,
        # so lateness shows up as drops — never as a reduced offer.
        report = run_load(server.host, server.port, workers=1,
                          duration=1.0, seed_keys=KEYS, seed=8,
                          skip_seed=True, arrivals="poisson",
                          rate=5000.0, drop_after=0.0)
        totals = report["totals"]
        assert totals["dropped"] > 0
        assert totals["offered"] == _identity(report)

    def test_closed_loop_reports_zero_drops(self, server):
        report = run_load(server.host, server.port, workers=1,
                          duration=0.5, seed_keys=KEYS, seed=9,
                          skip_seed=True)
        totals = report["totals"]
        assert totals["dropped"] == 0
        assert totals["offered"] == _identity(report)

    def test_validation(self, server):
        with pytest.raises(ValueError):
            run_load(server.host, server.port, workers=1, duration=0.1,
                     seed_keys=KEYS, seed=1, arrivals="uniform")
        with pytest.raises(ValueError):
            run_load(server.host, server.port, workers=1, duration=0.1,
                     seed_keys=KEYS, seed=1, arrivals="poisson", rate=0.0)
