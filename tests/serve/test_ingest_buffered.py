"""Buffered ingestion through the serving stack.

The ``--ingest buffered`` knob, the load op's ``mode`` field, TQL ``LOAD
[BUFFERED]`` over the wire, and the procpool packed-batch fan-out
(``load_bytes`` gauges) — all must leave answers identical to direct
ingestion.
"""

from __future__ import annotations

import random

import pytest

from repro.core.model import Interval, KeyRange
from repro.serve.client import Client
from repro.serve.procpool import ProcessShardedWarehouse
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.sharded import ShardedWarehouse

KEYS = 60
KEY_SPACE = (1, KEYS + 1)


def _events(keys: int, seed: int):
    rng = random.Random(seed)
    events, t = [], 1
    for key in range(1, keys + 1):
        events.append(("insert", key, float(rng.randint(1, 50)), t))
        if rng.random() < 0.4:
            t += 1
    for key in range(1, keys + 1, 7):
        t += 1
        events.append(("delete", key, 0.0, t))
    return events, t


def _rectangles(now: int, count: int, seed: int):
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        lo = rng.randint(1, KEYS)
        hi = rng.randint(lo + 1, KEYS + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 1)
        rects.append((KeyRange(lo, hi), Interval(t0, t1)))
    return rects


class TestShardedBuffered:
    def test_thread_backend_buffered_matches_direct(self):
        events, now = _events(KEYS, 41)
        direct = ShardedWarehouse(shards=3, key_space=KEY_SPACE)
        buffered = ShardedWarehouse(shards=3, key_space=KEY_SPACE)
        direct.load_events(events)
        report = buffered.load_events(events, mode="buffered")
        assert report.events == len(events)
        assert report.buffered_events > 0
        for key_range, interval in _rectangles(now, 20, 43):
            assert repr(buffered.sum(key_range, interval)) == repr(
                direct.sum(key_range, interval))

    def test_process_backend_buffered_matches_and_counts_bytes(self):
        events, now = _events(KEYS, 57)
        reference = ShardedWarehouse(shards=3, key_space=KEY_SPACE)
        reference.load_events(events)
        process = ProcessShardedWarehouse(shards=3, key_space=KEY_SPACE)
        try:
            report = process.load_events(events, mode="buffered")
            assert report.events == len(events)
            assert report.buffered_events > 0
            for key_range, interval in _rectangles(now, 12, 59):
                assert repr(process.sum(key_range, interval)) == repr(
                    reference.sum(key_range, interval))
            stats = process.worker_stats()
            # Each partition crossed the worker pipe as one packed blob.
            assert sum(row["load_bytes"] for row in stats) > 0
        finally:
            process.close()


class TestServerIngestKnob:
    def test_default_buffered_and_explicit_override(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, 101), ingest="buffered", cache=False))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                report = client.load(
                    [["insert", i, 2.0, i] for i in range(1, 11)])
                assert report["buffered_events"] == 10
                report = client.load(
                    [["insert", 50 + i, 1.0, 20 + i] for i in range(1, 6)],
                    mode="direct")
                assert report["buffered_events"] == 0
                client.repin()
                total = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)")
                assert total == pytest.approx(25.0)
        finally:
            handle.stop()

    def test_invalid_mode_rejected(self):
        handle = serve_in_thread(ServerConfig(
            shards=1, key_space=(1, 101), cache=False))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                from repro.errors import ReproError

                with pytest.raises(ReproError):
                    client.load([["insert", 1, 1.0, 1]], mode="turbo")
        finally:
            handle.stop()

    def test_tql_load_over_the_wire(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, 101), ingest="buffered", cache=False))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                # A plain LOAD inherits the server's --ingest default.
                message = client.execute(
                    "LOAD INSERT KEY 5 VALUE 2 AT 1, "
                    "INSERT KEY 80 VALUE 3 AT 2")
                assert "mode=buffered" in message
                client.repin()
                assert client.execute(
                    "SELECT SUM(value)") == pytest.approx(5.0)
        finally:
            handle.stop()

    def test_tql_load_buffered_on_direct_server(self):
        handle = serve_in_thread(ServerConfig(
            shards=1, key_space=(1, 101), cache=False))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                message = client.execute(
                    "LOAD BUFFERED INSERT KEY 9 VALUE 4 AT 3")
                assert "mode=buffered" in message
                message = client.execute("LOAD INSERT KEY 10 VALUE 1 AT 5")
                assert "mode=direct" in message
                client.repin()
                assert client.execute(
                    "SELECT SUM(value)") == pytest.approx(5.0)
        finally:
            handle.stop()


class TestProcpoolGauges:
    def test_load_bytes_gauge_published(self, tmp_path):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, 101), executor="process",
            ingest="buffered", cache=False,
            durable_dir=str(tmp_path / "wh")))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                report = client.load(
                    [["insert", i, 1.0, i] for i in range(1, 21)])
                assert report["events"] == 20
                metrics = client.metrics()
                gauges = [entry["value"]
                          for name, payload in metrics.items()
                          if "procpool_load_bytes" in name
                          for entry in payload["series"]]
                assert gauges, sorted(metrics)
                assert sum(gauges) > 0
        finally:
            handle.stop()
