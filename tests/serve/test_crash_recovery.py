"""Crash safety of the serving path: kill -9 must never lose an ack.

Satellite requirement: graceful shutdown is crash-safe — a ``kill -9``
arriving mid-drain (or at any other point) leaves a WAL from which
reopening recovers every acknowledged write.  We run the real server as
a subprocess, acknowledge inserts over the wire, SIGKILL the process at
nasty moments, and reopen the durable directory single-threaded.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.model import Interval, KeyRange
from repro.serve.client import Client
from repro.serve.sharded import ShardedWarehouse

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn_server(durable_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--durable-dir", durable_dir,
         "--shards", "2", "--key-lo", "1", "--key-hi", "1001", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    line = proc.stdout.readline().strip()
    if not line.startswith("LISTENING"):
        proc.kill()
        pytest.fail(f"server did not start: {line!r} / "
                    f"{proc.stderr.read()[:500]}")
    _tag, host, port = line.split()
    return proc, host, int(port)


def recovered_sum(durable_dir):
    warehouse = ShardedWarehouse.open_durable(durable_dir)
    try:
        return warehouse.sum(KeyRange(1, 1001),
                             Interval(1, warehouse.now + 1))
    finally:
        warehouse.close()


class TestKillNine:
    def test_kill_while_serving_recovers_acknowledged_writes(self, tmp_path):
        durable = str(tmp_path / "wh")
        proc, host, port = spawn_server(durable)
        try:
            with Client(host, port, timeout=10) as client:
                for i in range(1, 21):
                    client.execute(f"INSERT KEY {i} VALUE 2.0 AT {i}")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        # Every acknowledged insert survives via WAL replay.
        assert recovered_sum(durable) == 40.0

    def test_kill_during_drain_recovers_acknowledged_writes(self, tmp_path):
        """kill -9 while the server drains a slow request mid-shutdown."""
        durable = str(tmp_path / "wh")
        proc, host, port = spawn_server(durable, "--drain-timeout", "30")
        try:
            slow = Client(host, port, timeout=30)
            control = Client(host, port, timeout=10)
            for i in range(1, 11):
                control.execute(f"INSERT KEY {i} VALUE 3.0 AT {i}")
            # Occupy a slot so the drain has something to wait for, then
            # start the graceful shutdown and SIGKILL in the middle of it.
            slow._sock.sendall(b'{"op": "sleep", "seconds": 20, "id": 1}\n')
            time.sleep(0.3)
            control.shutdown()
            time.sleep(0.5)  # draining now, checkpoint not yet written
            assert proc.poll() is None, "server exited before the kill"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        assert recovered_sum(durable) == 30.0

    def test_graceful_shutdown_then_reopen(self, tmp_path):
        """The non-crash path: drain + checkpoint + clean exit."""
        durable = str(tmp_path / "wh")
        proc, host, port = spawn_server(durable)
        with Client(host, port, timeout=10) as client:
            for i in range(1, 6):
                client.execute(f"INSERT KEY {i} VALUE 5.0 AT {i}")
            client.shutdown()
        assert proc.wait(timeout=15) == 0
        # A checkpoint exists (CURRENT pointer per shard) and loads clean.
        assert os.path.exists(os.path.join(durable, "shard-00", "CURRENT"))
        assert recovered_sum(durable) == 25.0

    def test_second_boot_continues_the_timeline(self, tmp_path):
        durable = str(tmp_path / "wh")
        proc, host, port = spawn_server(durable)
        with Client(host, port, timeout=10) as client:
            client.execute("INSERT KEY 1 VALUE 1.0 AT 1")
            client.shutdown()
        proc.wait(timeout=15)

        proc, host, port = spawn_server(durable)
        try:
            with Client(host, port, timeout=10) as client:
                assert client.snapshot >= 1
                client.execute("INSERT KEY 2 VALUE 2.0 AT 5")
                client.repin()
                total = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 1001)")
                assert total == 3.0
                client.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
