"""Concurrency stress: one writer, many snapshot readers, oracle-checked.

The acceptance criterion: a writer streams updates into a thread-safe
:class:`ShardedWarehouse` while at least four reader threads issue
snapshot (AS OF) aggregate queries, and **every** reader answer equals a
single-threaded :class:`TupleStoreOracle` evaluated at the same snapshot
time.

Why the check is deterministic despite scheduling races: a reader only
queries rectangles ending at ``watermark + 1``, where the watermark
trails the writer by one instant, so every contributing version is
already closed.  And the answer to ``[1, snap+1)`` never changes once
the stream passes ``snap`` — later inserts start after the window and a
later delete only moves a tuple's end somewhere still above 1 — so the
full-history oracle states the expected value for *any* snapshot.
"""

import random
import threading

from repro.core.model import Interval, KeyRange
from repro.serve.sharded import ShardedWarehouse

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 201)
READERS = 4
EVENTS = 400


def build_events(seed):
    """Time-ordered 1TNF updates, no zero-length tuples."""
    rng = random.Random(seed)
    alive = {}
    events = []
    t = 1
    while len(events) < EVENTS:
        deletable = sorted(k for k, born in alive.items() if born < t)
        if deletable and rng.random() < 0.3:
            key = rng.choice(deletable)
            del alive[key]
            events.append(("delete", key, 0.0, t))
        else:
            key = rng.randint(KEY_SPACE[0], KEY_SPACE[1] - 1)
            if key in alive:
                continue
            alive[key] = t
            events.append(("insert", key, float(rng.randint(1, 9)), t))
        if rng.random() < 0.4:
            t += 1
    return events


class TestWriterReaderStress:
    def test_snapshot_reads_match_oracle(self):
        events = build_events(29)
        final_t = max(t for *_rest, t in events)
        probes = [
            (KeyRange(1, 201), "sum"),
            (KeyRange(1, 201), "count"),
            (KeyRange(40, 120), "sum"),
            (KeyRange(90, 180), "count"),
        ]

        oracle = TupleStoreOracle()
        for op, key, value, t in events:
            if op == "insert":
                oracle.insert(key, value, t)
            else:
                oracle.delete(key, t)

        def expected(probe_index, snap):
            kr, kind = probes[probe_index]
            fn = oracle.rta_sum if kind == "sum" else oracle.rta_count
            return fn(kr.low, kr.high, 1, snap + 1)

        sharded = ShardedWarehouse(shards=4, key_space=KEY_SPACE,
                                   page_capacity=8, thread_safe=True)
        # Highest instant the writer has fully passed: once an event at
        # time t lands, no further update can carry a time below t.
        watermark = {"t": 0}
        stop = threading.Event()
        failures = []
        checked = [0] * READERS

        def writer():
            try:
                for op, key, value, t in events:
                    if op == "insert":
                        sharded.insert(key, value, t)
                    else:
                        sharded.delete(key, t)
                    watermark["t"] = max(watermark["t"], t - 1)
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader(index):
            rng = random.Random(1000 + index)
            try:
                while not failures:
                    snap = watermark["t"]
                    if snap < 1:
                        if stop.is_set():
                            break
                        continue
                    pi = rng.randrange(len(probes))
                    kr, kind = probes[pi]
                    interval = Interval(1, snap + 1)
                    got = (sharded.sum(kr, interval) if kind == "sum"
                           else sharded.count(kr, interval))
                    want = expected(pi, snap)
                    if got != want:
                        failures.append(
                            f"reader {index}: {kind} {kr} AS OF {snap}: "
                            f"got {got!r} want {want!r}")
                        return
                    checked[index] += 1
                    if stop.is_set() and checked[index] >= 5:
                        break
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(f"reader {index}: {exc!r}")

        threads = [threading.Thread(target=writer)]
        threads += [threading.Thread(target=reader, args=(i,))
                    for i in range(READERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "stress test hung"
        assert not failures, failures[:5]
        # Every reader actually exercised the concurrent path.
        assert all(n > 0 for n in checked), checked

        # After the dust settles the full history matches the oracle too.
        for pi in range(len(probes)):
            kr, kind = probes[pi]
            interval = Interval(1, final_t + 1)
            got = (sharded.sum(kr, interval) if kind == "sum"
                   else sharded.count(kr, interval))
            assert got == expected(pi, final_t)
        sharded.check_invariants()
