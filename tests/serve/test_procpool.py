"""The process-per-shard backend answers exactly like the thread backend.

Both backends route and gather through :class:`ShardRouter`, so equality
is structural — these tests prove it holds end to end anyway: same
fixed-seed workload in, ``repr``-identical answers out, through the
direct API and through a TCP server running ``executor="process"``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.model import Interval, KeyRange
from repro.serve.client import Client
from repro.serve.procpool import ProcessShardedWarehouse
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.sharded import ShardedWarehouse

KEYS = 60
SEED = 99


def _events(keys: int, seed: int):
    rng = random.Random(seed)
    events = []
    t = 1
    for key in range(1, keys + 1):
        events.append(("insert", key, float(rng.randint(1, 50)), t))
        if rng.random() < 0.4:
            t += 1
    for key in range(1, keys + 1, 7):
        t += 1
        events.append(("delete", key, 0.0, t))
    return events, t


def _rectangles(keys: int, now: int, count: int, seed: int):
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        lo = rng.randint(1, keys)
        hi = rng.randint(lo + 1, keys + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 1)
        rects.append((KeyRange(lo, hi), Interval(t0, t1)))
    return rects


@pytest.fixture(scope="module")
def twins():
    events, now = _events(KEYS, SEED)
    thread_backend = ShardedWarehouse(shards=3, key_space=(1, KEYS + 1))
    process_backend = ProcessShardedWarehouse(
        shards=3, key_space=(1, KEYS + 1), scan_batch=4)
    thread_backend.load_events(events)
    process_backend.load_events(events)
    yield thread_backend, process_backend, now
    process_backend.close()


class TestTwinAnswers:
    def test_aggregates_byte_identical(self, twins):
        thread_backend, process_backend, now = twins
        for key_range, interval in _rectangles(KEYS, now, 40, SEED + 1):
            for method in ("sum", "count", "avg", "min", "max"):
                expect = repr(getattr(thread_backend, method)(key_range,
                                                              interval))
                got = repr(getattr(process_backend, method)(key_range,
                                                            interval))
                assert got == expect, (method, key_range, interval)

    def test_snapshot_and_history_identical(self, twins):
        thread_backend, process_backend, now = twins
        key_range = KeyRange(1, KEYS + 1)
        assert (process_backend.snapshot(key_range, now)
                == thread_backend.snapshot(key_range, now))
        assert (process_backend.tuples_in(key_range, Interval(1, now + 1))
                == thread_backend.tuples_in(key_range, Interval(1, now + 1)))
        for key in (1, KEYS // 2, KEYS):
            assert (process_backend.history(key)
                    == thread_backend.history(key))

    def test_explain_plans_identical(self, twins):
        thread_backend, process_backend, now = twins
        plans_thread = thread_backend.explain(KeyRange(5, KEYS),
                                              Interval(1, now + 1))
        plans_process = process_backend.explain(KeyRange(5, KEYS),
                                                Interval(1, now + 1))
        assert [(p.shard, p.key_range) for p in plans_process] \
            == [(p.shard, p.key_range) for p in plans_thread]

    def test_worker_stats_cover_every_shard(self, twins):
        _, process_backend, now = twins
        # Queue a burst of reads on one worker's pipe so the shared-scan
        # drain finds compatible neighbors to batch.
        client = process_backend._clients[0]
        part = KeyRange(*client.spec.key_space)
        futures = [client.call_async("sum", part, Interval(1, now + 1))
                   for _ in range(12)]
        results = {future.result(timeout=30) for future in futures}
        assert len(results) == 1  # identical queries, identical answers

        stats = process_backend.worker_stats()
        assert [row["shard"] for row in stats] == [0, 1, 2]
        assert all(row["alive"] for row in stats)
        assert all(row["requests"] > 0 for row in stats)
        assert stats[0]["shared_batches"] > 0
        assert stats[0]["batched_reads"] > 0

    def test_warehouse_is_not_picklable(self, twins):
        import pickle

        thread_backend, _, _ = twins
        with pytest.raises(TypeError):
            pickle.dumps(thread_backend.shards[0])


class TestProcessServer:
    def test_server_drives_process_backend(self, tmp_path):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, 101), executor="process",
            cache=False, durable_dir=str(tmp_path / "wh")))
        try:
            with Client(handle.host, handle.port, timeout=30) as client:
                assert client.ping()
                for i in range(1, 11):
                    client.execute(f"INSERT KEY {i} VALUE 1.5 AT {i}")
                client.repin()
                total = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)")
                assert total == pytest.approx(15.0)

                report = client.load(
                    [["insert", 50 + i, 2.0, 10 + i] for i in range(1, 6)])
                assert report["events"] == 5
                client.repin()
                total = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)")
                assert total == pytest.approx(25.0)

                plans = client.execute(
                    "EXPLAIN SELECT SUM(value) WHERE key IN [1, 101)")
                assert {p["shard"] for p in plans} == {0, 1}

                metrics = client.metrics()
                assert any("procpool" in name for name in metrics), \
                    sorted(metrics)

                respawned = client.respawn(1)
                assert respawned["shard"] == 1
                total = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)")
                assert total == pytest.approx(25.0)
        finally:
            handle.stop()
