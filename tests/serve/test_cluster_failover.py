"""Router failover: kill -9 a primary, keep serving, heal, promote.

The contract: with at least one caught-up replica per group, a SIGKILL'd
primary is invisible to readers — reads redirect to the replica while a
background respawn replays the WAL; writes block briefly on the heal and
then land.  Without replicas the same kill surfaces as the typed
``SHARD_DOWN`` (the procpool's behavior — the control case the cluster
bench gates against).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.model import Interval, KeyRange
from repro.serve.cluster import ClusterWarehouse

KEYS = 60


def _seed(warehouse):
    events = [("insert", key, float(key), 1 + key % 5)
              for key in range(1, KEYS + 1)]
    events.sort(key=lambda e: e[3])
    warehouse.load_events(events)


def _wait(predicate, timeout=15.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


class TestPrimaryFailover:
    def test_reads_survive_sigkill_and_writes_land_after_heal(
            self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, KEYS + 1), durable_dir=str(tmp_path),
            replicas=1, planner_interval=0.2)
        try:
            _seed(warehouse)
            warehouse.sync_replicas(0)
            interval = Interval(1, warehouse.now + 1)
            whole = KeyRange(1, KEYS + 1)
            baseline = repr(warehouse.sum(whole, interval))

            os.kill(warehouse.shard_pid(0), signal.SIGKILL)
            _wait(lambda: not warehouse.shard_alive(0),
                  message="pipe EOF detection")

            # reads keep answering through the replica, exactly
            for _ in range(5):
                assert repr(warehouse.sum(whole, interval)) == baseline

            # the write blocks on the heal (respawn + WAL replay), then
            # applies to a state containing every acked write: deleting
            # a seeded key only succeeds if replay restored it alive
            t = warehouse.now + 1
            assert warehouse.delete(KEYS, t) == float(KEYS)
            assert warehouse.failovers == 1
            assert warehouse.shard_alive(0)
        finally:
            warehouse.close()

    def test_promotion_when_respawn_is_impossible(self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, KEYS + 1), durable_dir=str(tmp_path),
            replicas=1, planner_interval=0.2)
        try:
            _seed(warehouse)
            warehouse.sync_replicas(0)
            interval = Interval(1, warehouse.now + 1)
            whole = KeyRange(1, KEYS + 1)
            baseline = repr(warehouse.sum(whole, interval))

            result = warehouse.promote(0)
            assert result["gid"] == 0
            assert warehouse.promotions == 1
            # the promoted replica is now the group's writer
            assert repr(warehouse.sum(whole, interval)) == baseline
            t = warehouse.now + 1
            assert warehouse.delete(1, t) == 1.0
            # at the instant after the delete, key 1 is no longer alive
            total = sum(range(1, KEYS + 1))
            assert warehouse.sum(whole, Interval(t, t + 1)) == \
                float(total - 1)
            # the planner (or ensure_replicas) backfills the replica slot
            _wait(lambda: len(warehouse._groups_by_gid[0].replicas) == 1,
                  message="replica backfill after promotion")
        finally:
            warehouse.close()

    def test_sigkill_without_replicas_heals_by_respawn(self, tmp_path):
        """No replica to redirect to: the read blocks on the synchronous
        heal path and still answers (durable respawn), counting one
        failover."""
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, KEYS + 1), durable_dir=str(tmp_path),
            replicas=0)
        try:
            _seed(warehouse)
            interval = Interval(1, warehouse.now + 1)
            whole = KeyRange(1, KEYS + 1)
            baseline = repr(warehouse.sum(whole, interval))
            os.kill(warehouse.shard_pid(0), signal.SIGKILL)
            _wait(lambda: not warehouse.shard_alive(0),
                  message="pipe EOF detection")
            assert repr(warehouse.sum(whole, interval)) == baseline
            assert warehouse.failovers == 1
        finally:
            warehouse.close()
