"""Slow-query log end to end: capture, EXPLAIN enrichment, rendering.

A server with ``slow_ms=0`` treats every request as slow, so the ring
fills deterministically; the EXPLAIN capture runs as a background task
after the response is sent, so tests poll for it.
"""

import time

import pytest

from repro.analyze import _explain_cell, slowlog_table
from repro.serve.client import Client
from repro.serve.server import ServerConfig, serve_in_thread

KEY_SPACE = (1, 1001)


def _wait_for_explain(client, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        entries = client.slowlog()["entries"]
        select_entries = [e for e in entries
                          if e["op"] == "query" and e["tql"]
                          and e["tql"].startswith("SELECT")]
        if select_entries and select_entries[0]["explain"] is not None:
            return select_entries[0]
        time.sleep(0.05)
    raise AssertionError("EXPLAIN capture never completed")


@pytest.fixture
def server():
    handle = serve_in_thread(ServerConfig(
        shards=2, key_space=KEY_SPACE, page_capacity=8, slow_ms=0.0))
    yield handle
    handle.stop()


class TestSlowCapture:
    def test_every_request_captured_at_zero_threshold(self, server):
        with Client(server.host, server.port) as c:
            c.execute("INSERT KEY 5 VALUE 1.0 AT 1")
            payload = c.slowlog()
        # The INSERT at minimum (the slowlog op itself lands after).
        assert payload["total"] >= 1
        ops = {e["op"] for e in payload["entries"]}
        assert "query" in ops

    def test_entry_shape(self, server):
        with Client(server.host, server.port) as c:
            c.execute("INSERT KEY 5 VALUE 1.0 AT 1")
            entry = c.slowlog()["entries"][0]
        for key in ("request_id", "op", "status", "elapsed_ms", "queue_ms",
                    "exec_ms", "shard_seconds", "trace_id", "tql",
                    "explain"):
            assert key in entry

    def test_select_gets_explain_span_tree(self, server):
        with Client(server.host, server.port) as c:
            c.execute("INSERT KEY 5 VALUE 1.0 AT 1")
            c.execute("INSERT KEY 800 VALUE 2.0 AT 1")
            c.repin()
            c.execute("SELECT SUM(value) WHERE key IN [1, 1001)")
            entry = _wait_for_explain(c)
        rows = entry["explain"]
        assert isinstance(rows, list) and len(rows) == 2
        for row in rows:
            assert row["record"]["name"]  # a span tree, JSONL shape
            assert "plan" in row

    def test_non_select_has_no_explain(self, server):
        with Client(server.host, server.port) as c:
            c.execute("INSERT KEY 5 VALUE 1.0 AT 1")
            time.sleep(0.2)
            entries = c.slowlog()["entries"]
        inserts = [e for e in entries
                   if e["tql"] and e["tql"].startswith("INSERT")]
        assert inserts and all(e["explain"] is None for e in inserts)


class TestSlowlogRendering:
    def _entry(self, **overrides):
        entry = {
            "request_id": "r-1", "op": "query", "status": "ok",
            "elapsed_ms": 12.5, "queue_ms": 1.0, "exec_ms": 11.5,
            "shard_seconds": {"0": 0.01}, "trace_id": "ab" * 16,
            "tql": "SELECT SUM(value) WHERE key IN [1, 1001)",
            "explain": None,
        }
        entry.update(overrides)
        return entry

    def test_table_renders_all_columns(self):
        table = slowlog_table([self._entry()], total=3)
        text = table.render()
        assert "r-1" in text and "query" in text
        assert "abababab" in text  # 8-char trace id prefix
        assert "SELECT SUM(value)" in text

    def test_explain_cell_states(self):
        assert _explain_cell(None) == "-"
        assert _explain_cell({"error": {"code": "QUERY"}}) == \
            "error[QUERY]"
        assert _explain_cell([{"shard": 0}, {"shard": 1}]) == "2 shard(s)"

    def test_missing_trace_id_renders_dash(self):
        table = slowlog_table([self._entry(trace_id=None)], total=1)
        assert table.render()  # must not raise
