"""The server's shared-scan queue and the batch path under writes.

Concurrent SELECT aggregates on a ``scan_batch > 1`` server drain
through ``_group_scan`` into vectorized sweeps; the answers (and the
per-statement errors) must be exactly what a ``scan_batch=1`` server
produces, and the ``repro_batchscan_*`` gauges must account for the
groups.  The MVCC section pins batched readers to an AS OF snapshot
while a writer advances the clock — epoch batching may never leak a
mid-write state into a pinned answer.
"""

import random
import threading

import pytest

from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange
from repro.serve.client import Client, ServerReplyError
from repro.serve.server import ServerConfig, serve_in_thread
from repro.serve.sharded import ShardedWarehouse
from repro.tql import executor
from repro.tql.parser import parse

KEYS = 80
KEY_SPACE = (1, KEYS + 1)


def _metric(registry, name):
    family = registry.get(name) or {}
    return sum(entry.get("value", 0.0)
               for entry in family.get("series", []))


def _seed(handle):
    events = [("insert", key, float(key), key) for key in range(1, KEYS + 1)]
    with Client(handle.host, handle.port) as client:
        client.load(events)


def _statements(count, seed=41):
    rng = random.Random(seed)
    aggs = ("SUM(value)", "COUNT(*)", "AVG(value)", "MIN(value)",
            "MAX(value)")
    out = []
    for _ in range(count):
        lo = rng.randint(1, KEYS - 5)
        hi = rng.randint(lo + 1, KEYS + 1)
        t0 = rng.randint(1, KEYS - 1)
        t1 = rng.randint(t0 + 1, KEYS + 1)
        out.append(f"SELECT {rng.choice(aggs)} WHERE key IN [{lo}, {hi}) "
                   f"AND TIME DURING [{t0}, {t1})")
    return out


def _drive(handle, stmts, threads):
    """Each thread executes its stripe; returns ``stmt -> repr(answer)``."""
    answers = {}
    errors = []
    lock = threading.Lock()

    def run(w):
        try:
            with Client(handle.host, handle.port) as client:
                client.repin()
                for stmt in stmts[w::threads]:
                    value = repr(client.execute(stmt))
                    with lock:
                        answers[stmt] = value
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(w,), daemon=True)
            for w in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, errors[0]
    return answers


class TestSharedScanGroups:
    def test_grouped_answers_match_serial_server(self):
        stmts = _statements(96)
        results = {}
        for tag, scan_batch in (("batch", 8), ("serial", 1)):
            handle = serve_in_thread(ServerConfig(
                shards=2, key_space=KEY_SPACE, cache=False,
                scan_batch=scan_batch, readers=6))
            try:
                _seed(handle)
                results[tag] = _drive(handle, stmts, threads=6)
                if tag == "batch":
                    with Client(handle.host, handle.port) as client:
                        registry = client.metrics()
            finally:
                handle.stop()
        assert results["batch"] == results["serial"]
        assert _metric(registry, "repro_batchscan_batches") > 0
        assert _metric(registry, "repro_batchscan_epoch_fallbacks") == 0

    def test_bad_statement_fails_only_itself_under_grouping(self):
        good = _statements(40)
        # An empty interval fails rectangle resolution: the server must
        # answer every good statement and fail exactly the bad ones,
        # grouped or not.
        bad = ("SELECT SUM(value) WHERE key IN [1, 10) "
               f"AND TIME DURING [{KEYS}, 10)")
        stmts = []
        for i, stmt in enumerate(good):
            stmts.append(stmt)
            if i % 5 == 0:
                stmts.append(bad)
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, cache=False, scan_batch=8,
            readers=6))
        try:
            _seed(handle)
            outcomes = {}
            errors = []
            lock = threading.Lock()

            def run(w):
                try:
                    with Client(handle.host, handle.port) as client:
                        client.repin()
                        for stmt in stmts[w::6]:
                            try:
                                value = repr(client.execute(stmt))
                            except ServerReplyError as exc:
                                value = f"error:{exc.code}"
                            with lock:
                                outcomes[stmt] = value
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            pool = [threading.Thread(target=run, args=(w,), daemon=True)
                    for w in range(6)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert not errors, errors[0]
        finally:
            handle.stop()
        assert outcomes[bad].startswith("error:")
        serial = {}
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, cache=False, scan_batch=1))
        try:
            _seed(handle)
            with Client(handle.host, handle.port) as client:
                client.repin()
                for stmt in good:
                    serial[stmt] = repr(client.execute(stmt))
        finally:
            handle.stop()
        for stmt in good:
            assert outcomes[stmt] == serial[stmt]


class TestBatchUnderWrites:
    def test_pinned_batches_survive_concurrent_writes(self):
        warehouse = ShardedWarehouse(shards=2, key_space=KEY_SPACE,
                                     thread_safe=True, mvcc=True)
        for key in range(1, KEYS + 1):
            warehouse.insert(key, float(key), key)
        pinned = warehouse.now
        stmts = [parse(s) for s in _statements(32, seed=42)]
        requests = [(stmt, pinned) for stmt in stmts]
        expected = [repr(x) for x in
                    executor.execute_select_batch(warehouse, requests)]

        stop = threading.Event()

        def write():
            t = warehouse.now + 1
            key = KEYS
            while not stop.is_set():
                warehouse.delete(key, t)
                warehouse.insert(key, float(t), t)
                t += 1

        writer = threading.Thread(target=write, daemon=True)
        writer.start()
        try:
            for _ in range(20):
                observed = [repr(x) for x in
                            executor.execute_select_batch(warehouse,
                                                          requests)]
                assert observed == expected
        finally:
            stop.set()
            writer.join()
        stats = warehouse.batch_snapshot()
        assert stats["epoch_validations"] >= stats["batches"] > 0
        # Mid-write epochs may tear individual batches; fallbacks are
        # bounded by the queries that rode batches, never silently more.
        assert 0 <= stats["epoch_fallbacks"] <= stats["batched_queries"]
