"""WAL shipping edges: cursor semantics, truncation rebase, replica death.

The replication channel is a read-only tail cursor over the primary's
log file.  Its hard cases — a torn final line, a checkpoint truncating
the file under the reader, a sequence gap proving records were lost —
are unit-tested directly on :class:`~repro.storage.wal.WALCursor`, then
end-to-end through a live replica (catch-up across a checkpoint
truncation; kill -9 of the replica mid-apply with planner respawn).
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.model import Interval, KeyRange
from repro.errors import WALTruncatedError
from repro.serve.cluster import ClusterWarehouse
from repro.storage.wal import WALCursor, WriteAheadLog


class TestWALCursor:
    def test_tails_complete_records_and_buffers_torn_lines(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        cursor = WALCursor(str(tmp_path))
        log.append("insert", 1, 1.0, 1)
        log.append("insert", 2, 2.0, 2)
        records = cursor.poll()
        assert [(seq, e.key) for seq, e in records] == [(1, 1), (2, 2)]
        assert cursor.poll() == []

        # a torn tail (no newline) is buffered, not consumed
        with open(log.path, "a") as fh:
            fh.write("3,insert,3,3.0")
        assert cursor.poll() == []
        with open(log.path, "a") as fh:
            fh.write(",3\n")
        assert [(s, e.key) for s, e in cursor.poll()] == [(3, 3)]

    def test_truncation_restart_deduplicates_by_seq(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        cursor = WALCursor(str(tmp_path))
        log.append("insert", 1, 1.0, 1)
        assert len(cursor.poll()) == 1
        # checkpoint owner truncates; numbering continues from 1
        log.truncate()
        log.bump_seq(1)
        log.append("insert", 2, 2.0, 2)
        # file shrank below the cursor's offset -> restart at byte 0;
        # the fresh record is exactly seq+1, so nothing was lost
        assert [(s, e.key) for s, e in cursor.poll()] == [(2, 2)]

    def test_gap_after_truncation_raises_for_rebase(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        cursor = WALCursor(str(tmp_path))
        log.append("insert", 1, 1.0, 1)
        assert len(cursor.poll()) == 1
        log.truncate()
        log.bump_seq(5)  # records 2..5 were checkpointed away unseen
        log.append("insert", 9, 9.0, 9)
        with pytest.raises(WALTruncatedError):
            cursor.poll()
        # rebase to the covered seq heals the cursor
        cursor.rebase(5)
        assert [(s, e.key) for s, e in cursor.poll()] == [(6, 9)]

    def test_owner_trims_torn_tail_before_appending(self, tmp_path):
        log = WriteAheadLog(str(tmp_path))
        log.append("insert", 1, 1.0, 1)
        log.close()
        # simulate a crash mid-append: a torn fragment with no newline
        with open(os.path.join(str(tmp_path), "updates.wal"), "a") as fh:
            fh.write("2,insert,2")
        reopened = WriteAheadLog(str(tmp_path))
        reopened.append("insert", 3, 3.0, 3)
        # without the trim, record 3 would glue onto the fragment and
        # every replay would stop at the merged garbage line
        events = [(s, e.key) for s, e in reopened.replay_with_seq()]
        assert events == [(1, 1), (2, 3)]
        reopened.close()


KEYS = 40


def _seed(warehouse, n=KEYS, t0=1):
    events = [("insert", key, float(key), t0 + key % 3)
              for key in range(1, n + 1)]
    events.sort(key=lambda e: e[3])
    warehouse.load_events(events)


class TestReplicaShipping:
    def test_catch_up_across_checkpoint_truncation(self, tmp_path):
        """The replica's cursor is invalidated by the primary's
        checkpoint (truncate + gap); it must rebase from the checkpoint
        and still converge to byte-identical answers."""
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, 1001), durable_dir=str(tmp_path),
            replicas=1)
        try:
            _seed(warehouse)
            warehouse.sync_replicas(0)

            # checkpoint truncates the WAL the replica was tailing
            warehouse.checkpoint()
            t = warehouse.now + 1
            for key in range(KEYS + 1, KEYS + 21):
                warehouse.insert(key, float(key), t)
            warehouse.sync_replicas(0)

            interval = Interval(1, t + 1)
            whole = KeyRange(1, 1001)
            primary = warehouse.primary_probe(0, "sum", whole, interval)
            replica = warehouse.replica_probe(0, 0, "sum", whole,
                                              interval)
            assert repr(primary) == repr(replica)
        finally:
            warehouse.close()

    def test_replica_kill9_mid_apply_is_respawned(self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, 1001), durable_dir=str(tmp_path),
            replicas=1, planner_interval=0.2)
        try:
            _seed(warehouse)
            group = warehouse._groups_by_gid[0]
            victim = group.replicas[0]
            # kill while a stream of writes keeps the applier busy
            t = warehouse.now + 1
            for key in range(KEYS + 1, KEYS + 11):
                warehouse.insert(key, 1.0, t)
            os.kill(victim.pid, signal.SIGKILL)
            for key in range(KEYS + 11, KEYS + 21):
                warehouse.insert(key, 1.0, t)

            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                replicas = warehouse._groups_by_gid[0].replicas
                if replicas and not replicas[0].dead \
                        and replicas[0] is not victim:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("planner did not respawn the dead replica")

            # the fresh replica rebuilds from checkpoint + WAL and serves
            # fenced reads identical to the primary
            warehouse.sync_replicas(0)
            interval = Interval(1, t + 1)
            whole = KeyRange(1, 1001)
            assert repr(warehouse.replica_probe(0, 0, "sum", whole,
                                                interval)) == \
                repr(warehouse.primary_probe(0, "sum", whole, interval))
        finally:
            warehouse.close()
