"""Fairness properties of the writer-preferring readers-writer lock.

Two starvation hazards, one test each:

* a steady stream of overlapping readers must not starve a queued
  writer — writer preference means *new* readers wait as soon as a
  writer is queued, so writer wait is bounded by the queries already
  inside;
* writers must keep making progress under a continuous mixed load —
  100 write acquisitions interleaved with looping readers all complete,
  none times out, and the shared/exclusive invariants hold at every
  acquisition.
"""

from __future__ import annotations

import threading
import time

from repro.serve.rwlock import ReadWriteLock


def _spin_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return predicate()


def test_new_readers_wait_behind_queued_writer():
    """A queued writer fences new readers: no reader starvation of it."""
    lock = ReadWriteLock()
    assert lock.acquire_read()

    writer_acquired = threading.Event()

    def writer() -> None:
        assert lock.acquire_write(timeout=5.0)
        writer_acquired.set()
        lock.release_write()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    assert _spin_until(lambda: lock._writers_waiting == 1)

    # The writer is queued, so a *new* reader must not slip in ahead of
    # it — writer preference is exactly this refusal.
    assert lock.acquire_read(timeout=0.2) is False
    assert not writer_acquired.is_set()

    # The reader already inside finishes; the writer (not the rejected
    # reader) goes next, and afterwards readers flow again.
    lock.release_read()
    assert writer_acquired.wait(timeout=5.0)
    thread.join(timeout=5.0)
    assert lock.acquire_read(timeout=5.0)
    lock.release_read()


def test_writers_progress_under_mixed_load():
    """100 write acquisitions complete against looping readers."""
    lock = ReadWriteLock()
    stop = threading.Event()
    violations = []
    write_count = 0
    write_lock = threading.Lock()

    def reader() -> None:
        while not stop.is_set():
            if not lock.acquire_read(timeout=5.0):
                violations.append("reader timed out")
                return
            if lock.writer_active:
                violations.append("reader overlapped a writer")
            time.sleep(0.0005)
            lock.release_read()

    def writer(acquisitions: int) -> None:
        nonlocal write_count
        for _ in range(acquisitions):
            if not lock.acquire_write(timeout=5.0):
                violations.append("writer starved (timed out)")
                return
            if lock.readers != 0:
                violations.append("writer overlapped readers")
            time.sleep(0.0005)
            lock.release_write()
            with write_lock:
                write_count += 1

    readers = [threading.Thread(target=reader, daemon=True)
               for _ in range(6)]
    writers = [threading.Thread(target=writer, args=(50,), daemon=True)
               for _ in range(2)]
    for thread in readers + writers:
        thread.start()
    for thread in writers:
        thread.join(timeout=30.0)
    stop.set()
    for thread in readers:
        thread.join(timeout=5.0)

    assert not violations, violations
    assert write_count == 100
