"""Cluster plane correctness: routing, split, merge, replicas, protocol.

The elastic backend must be answer-identical to a single
:class:`~repro.core.warehouse.TemporalWarehouse` over the same update
stream — through splits, merges, and replica-served reads.  Replica reads
are checked for *byte-identical* results (``repr`` equality) at the same
pinned version: partial persistence makes a version-pinned read touch
only closed versions, so a caught-up replica's answer is exactly the
primary's.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError, ShardRedirectError
from repro.serve.client import Client
from repro.serve.cluster import ClusterWarehouse
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 80


def _seed_events(n=KEYS):
    events = [("insert", key, float(key), 1 + key % 5)
              for key in range(1, n + 1)]
    events.sort(key=lambda e: e[3])
    return events


def _oracle(events, key_space=(1, KEYS + 1)):
    warehouse = TemporalWarehouse(key_space=key_space)
    warehouse.load_events(events)
    return warehouse


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster")
    warehouse = ClusterWarehouse(
        shards=2, key_space=(1, KEYS + 1), durable_dir=str(root),
        replicas=1, planner_interval=0.25)
    warehouse.load_events(_seed_events())
    yield warehouse
    warehouse.close()


class TestClusterAnswers:
    def test_matches_single_warehouse_oracle(self, cluster):
        oracle = _oracle(_seed_events())
        interval = Interval(1, cluster.now + 1)
        for key_range in (KeyRange(1, KEYS + 1), KeyRange(10, 30),
                          KeyRange(35, 70)):
            assert repr(cluster.sum(key_range, interval)) == \
                repr(oracle.sum(key_range, interval))
            assert repr(cluster.aggregate_all(key_range, interval)) == \
                repr(oracle.aggregate_all(key_range, interval))
        assert repr(cluster.snapshot(KeyRange(1, KEYS + 1), cluster.now)) \
            == repr(oracle.snapshot(KeyRange(1, KEYS + 1), oracle.now))

    def test_replica_read_byte_identical_at_pinned_version(self, cluster):
        cluster.sync_replicas(0)
        interval = Interval(1, cluster.now + 1)
        span = KeyRange(*cluster._groups_by_gid[0].wh_key_space)
        for method in ("sum", "aggregate_all", "tuples_in"):
            primary = cluster.primary_probe(0, method, span, interval)
            replica = cluster.replica_probe(0, 0, method, span, interval)
            assert repr(primary) == repr(replica)

    def test_worker_stats_has_replica_rows_with_lag(self, cluster):
        rows = cluster.worker_stats()
        roles = {row["role"] for row in rows}
        assert roles == {"primary", "replica"}
        for row in rows:
            if row["role"] == "replica":
                assert row["lag"] >= 0
                assert "applied_seq" in row
            else:
                assert "acked_seq" in row


class TestSplitMerge:
    def test_split_preserves_answers_and_routes_new_writes(self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, KEYS + 1),
            durable_dir=str(tmp_path / "split"), replicas=0)
        try:
            warehouse.load_events(_seed_events())
            oracle = _oracle(_seed_events())
            interval = Interval(1, warehouse.now + 1)
            whole = KeyRange(1, KEYS + 1)
            before = repr(oracle.sum(whole, interval))

            result = warehouse.split(0)
            assert result["at"] == (1 + KEYS + 1) // 2
            assert warehouse.topology_version == 2
            assert repr(warehouse.sum(whole, interval)) == before

            # both halves answer exactly from their own group
            child = result["child"]
            lo, hi = (warehouse._groups_by_gid[child].lo,
                      warehouse._groups_by_gid[child].hi)
            assert repr(warehouse.sum(KeyRange(lo, hi), interval)) == \
                repr(oracle.sum(KeyRange(lo, hi), interval))

            # writes on either side of the cut route to the right group
            # (delete-then-reinsert keeps 1TNF: seeded keys are alive)
            t = warehouse.now + 1
            for target in (warehouse, oracle):
                target.delete(result["at"] - 1, t)
                target.delete(result["at"], t)
                target.insert(result["at"] - 1, 1.0, t + 1)
                target.insert(result["at"], 2.0, t + 1)
            t += 1
            interval = Interval(1, t + 1)
            assert repr(warehouse.sum(whole, interval)) == \
                repr(oracle.sum(whole, interval))
        finally:
            warehouse.close()

    def test_merge_rebuilds_one_group_with_identical_answers(self,
                                                             tmp_path):
        warehouse = ClusterWarehouse(
            shards=2, key_space=(1, KEYS + 1),
            durable_dir=str(tmp_path / "merge"), replicas=0)
        try:
            events = _seed_events()
            warehouse.load_events(events)
            # a few deletes so merged histories carry closed intervals
            t = warehouse.now + 1
            for key in (3, 41, 77):
                warehouse.delete(key, t)
            oracle = _oracle(events)
            for key in (3, 41, 77):
                oracle.delete(key, t)

            gids = [gid for gid, _lo, _hi in warehouse._topology.entries]
            result = warehouse.merge(gids[0], gids[1])
            assert len(warehouse._topology.entries) == 1
            interval = Interval(1, t + 1)
            whole = KeyRange(1, KEYS + 1)
            assert repr(warehouse.sum(whole, interval)) == \
                repr(oracle.sum(whole, interval))
            assert repr(warehouse.tuples_in(whole, interval)) == \
                repr(oracle.tuples_in(whole, interval))

            # retired gids now redirect (the client retries transparently)
            with pytest.raises(ShardRedirectError):
                warehouse._group(gids[0])
            # the merged group accepts writes
            warehouse.insert(3, 9.0, t + 1)
            oracle.insert(3, 9.0, t + 1)
            interval = Interval(1, t + 2)
            assert repr(warehouse.sum(whole, interval)) == \
                repr(oracle.sum(whole, interval))
            assert result["gid"] in warehouse._groups_by_gid
        finally:
            warehouse.close()

    def test_merge_rejects_non_adjacent_groups(self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=3, key_space=(1, 31),
            durable_dir=str(tmp_path / "nonadj"), replicas=0)
        try:
            gids = [gid for gid, _lo, _hi in warehouse._topology.entries]
            with pytest.raises(QueryError):
                warehouse.merge(gids[0], gids[2])
        finally:
            warehouse.close()

    def test_split_rejects_unsplittable_span(self, tmp_path):
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, 2),
            durable_dir=str(tmp_path / "narrow"), replicas=0)
        try:
            with pytest.raises(QueryError):
                warehouse.split(0)
        finally:
            warehouse.close()


class TestTopologyPersistence:
    def test_reopen_recovers_post_split_topology_and_data(self, tmp_path):
        root = str(tmp_path / "persist")
        warehouse = ClusterWarehouse(
            shards=2, key_space=(1, KEYS + 1), durable_dir=root,
            replicas=0)
        warehouse.load_events(_seed_events())
        warehouse.split(1)
        interval = Interval(1, warehouse.now + 1)
        whole = KeyRange(1, KEYS + 1)
        before = repr(warehouse.sum(whole, interval))
        entries = list(warehouse._topology.entries)
        warehouse.checkpoint()
        warehouse.close()

        reopened = ClusterWarehouse(
            shards=2, key_space=(1, KEYS + 1), durable_dir=root,
            replicas=0)
        try:
            assert reopened._topology.entries == entries
            assert repr(reopened.sum(whole, interval)) == before
        finally:
            reopened.close()


class TestClusterProtocol:
    @pytest.fixture(scope="class")
    def handle(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("server")
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, KEYS + 1), executor="process",
            durable_dir=str(root), replicas=1, planner_interval=0.25))
        yield handle
        handle.stop()

    def test_topology_split_merge_promote_ops(self, handle):
        with Client(handle.host, handle.port) as client:
            client.load(_seed_events())
            client.repin()
            total = client.execute(
                f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})")

            topo = client.topology()
            assert topo["version"] == 1
            assert [g["span"] for g in topo["groups"]] == \
                [[1, 41], [41, KEYS + 1]]
            assert all(g["primary"]["alive"] for g in topo["groups"])
            assert all(len(g["replicas"]) == 1 for g in topo["groups"])

            split = client.split(topo["groups"][0]["gid"])
            assert split["version"] == 2
            client.repin()
            assert client.execute(
                f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})") == total

            merged = client.merge(split["parent"], split["child"])
            assert merged["version"] == 3
            client.repin()
            assert client.execute(
                f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})") == total

            promoted = client.promote(merged["gid"])
            assert promoted["gid"] == merged["gid"]
            client.repin()
            assert client.execute(
                f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})") == total
            # the promoted primary accepts writes through its adopted WAL
            # (delete-then-reinsert keeps 1TNF: key 5 is alive)
            t = client.repin() + 1
            client.execute(f"DELETE KEY 5 AT {t}")
            client.execute(f"INSERT KEY 5 VALUE 1.0 AT {t + 1}")
            client.repin()
            # history-interval sum: the reinserted tuple adds its value,
            # the closed original still counts
            assert client.execute(
                f"SELECT SUM(value) WHERE key IN [1, {KEYS + 1})") == \
                total + 1.0

    def test_metrics_text_exports_cluster_gauges(self, handle):
        with Client(handle.host, handle.port) as client:
            text = client.metrics_text()
        for needle in ("repro_procpool_shard_qps",
                       "repro_procpool_shard_queue_depth",
                       "repro_cluster_replica_lag",
                       "repro_cluster_splits", "repro_cluster_merges",
                       "repro_cluster_failovers",
                       "repro_cluster_promotions",
                       "repro_cluster_topology_version",
                       "repro_cluster_groups"):
            assert needle in text, f"missing gauge {needle}"
        # replica series are disambiguated from their primary's
        assert 'replica="0"' in text


class TestClientRetry:
    """Satellite contract: one transparent re-send on the retriable
    routing codes, counted so harnesses can surface it."""

    @staticmethod
    def _scripted_server(replies):
        """A one-connection server answering each request from a list of
        ``(ok, payload)`` scripts; returns (host, port, thread)."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)

        def serve():
            conn, _ = listener.accept()
            with conn, conn.makefile("rb") as reader:
                conn.sendall(b'{"server":"fake","snapshot":0}\n')
                for ok, payload in replies:
                    line = reader.readline()
                    if not line:
                        return
                    rid = json.loads(line).get("id")
                    body = {"id": rid, "ok": ok}
                    body.update(payload)
                    conn.sendall((json.dumps(body) + "\n").encode())
            listener.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        return listener.getsockname() + (thread,)

    def test_retries_shard_down_once_and_counts_recovery(self):
        host, port, thread = self._scripted_server([
            (False, {"error": {"code": "SHARD_DOWN", "message": "dead"}}),
            (True, {"result": "pong"}),
        ])
        with Client(host, port, retry_backoff=0.0) as client:
            assert client.ping()
            assert client.retries_sent == 1
            assert client.retries_recovered == 1
        thread.join(timeout=5)

    def test_redirect_exhausting_retries_surfaces_typed_error(self):
        from repro.serve.client import ServerReplyError

        host, port, thread = self._scripted_server([
            (False, {"error": {"code": "SHARD_REDIRECT",
                               "message": "moved"}}),
            (False, {"error": {"code": "SHARD_REDIRECT",
                               "message": "moved"}}),
        ])
        with Client(host, port, retry_backoff=0.0) as client:
            with pytest.raises(ServerReplyError) as excinfo:
                client.ping()
            assert excinfo.value.code == "SHARD_REDIRECT"
            assert client.retries_sent == 1
            assert client.retries_recovered == 0
        thread.join(timeout=5)

    def test_non_retriable_errors_are_not_retried(self):
        from repro.serve.client import ServerReplyError

        host, port, thread = self._scripted_server([
            (False, {"error": {"code": "QUERY", "message": "bad"}}),
        ])
        with Client(host, port, retry_backoff=0.0) as client:
            with pytest.raises(ServerReplyError) as excinfo:
                client.ping()
            assert excinfo.value.code == "QUERY"
            assert client.retries_sent == 0
        thread.join(timeout=5)


class TestSplitLoadBarrier:
    def test_split_waits_for_buffered_ingest_window(self, tmp_path):
        """A split racing a buffered LOAD must fence behind it: the
        topology write lock cannot be granted while the load holds the
        read lock, so every event of the batch lands exactly once."""
        warehouse = ClusterWarehouse(
            shards=1, key_space=(1, 2001), durable_dir=str(tmp_path),
            replicas=0)
        try:
            warehouse.load_events(
                [("insert", key, 1.0, 1) for key in range(1, 1001)])
            batch = [("insert", key, 1.0, 2)
                     for key in range(1001, 2001)]
            started = threading.Event()

            def load():
                started.set()
                warehouse.load_events(batch, batch_size=64,
                                      mode="buffered")

            loader = threading.Thread(target=load)
            loader.start()
            started.wait()
            warehouse.split(0)  # blocks until the batch has drained
            loader.join(timeout=60)
            assert not loader.is_alive()

            interval = Interval(1, warehouse.now + 1)
            assert warehouse.count(KeyRange(1, 2001), interval) == 2000
            assert len(warehouse._topology.entries) == 2
        finally:
            warehouse.close()
