"""Semantics of the per-shard readers-writer lock."""

import threading
import time

import pytest

from repro.serve.rwlock import ReadWriteLock


class TestSharedSide:
    def test_many_readers_share(self):
        lock = ReadWriteLock()
        entered = threading.Barrier(4, timeout=5)

        def reader():
            with lock.read_locked():
                entered.wait()  # all four inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert lock.readers == 0

    def test_release_without_acquire_rejected(self):
        with pytest.raises(RuntimeError):
            ReadWriteLock().release_read()
        with pytest.raises(RuntimeError):
            ReadWriteLock().release_write()


class TestExclusiveSide:
    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        lock.acquire_write()
        assert not lock.acquire_read(timeout=0.05)
        lock.release_write()
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_reader_blocks_writer_until_release(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        assert not lock.acquire_write(timeout=0.05)
        lock.release_read()
        assert lock.acquire_write(timeout=1)
        lock.release_write()

    def test_writer_preference_blocks_new_readers(self):
        lock = ReadWriteLock()
        lock.acquire_read()
        got_write = threading.Event()

        def writer():
            lock.acquire_write()
            got_write.set()
            lock.release_write()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        # Wait until the writer is queued, then a new reader must wait too.
        deadline = time.time() + 5
        while not lock._writers_waiting and time.time() < deadline:
            time.sleep(0.005)
        assert not lock.acquire_read(timeout=0.05)
        lock.release_read()
        assert got_write.wait(timeout=5)
        t.join(timeout=5)
        assert lock.acquire_read(timeout=1)
        lock.release_read()

    def test_writers_serialize(self):
        lock = ReadWriteLock()
        counter = {"value": 0}

        def writer():
            with lock.write_locked():
                counter["value"] += 1

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert counter["value"] == 8
        assert not lock.writer_active
