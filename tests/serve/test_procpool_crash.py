"""kill -9 of a single shard worker: detection, isolation, recovery.

The failure contract of the process backend, end to end:

* the parent detects the dead worker through pipe EOF (no polling) and
  fails requests routed to it with the typed ``SHARD_DOWN`` error;
* the other shards keep answering — one worker's death never poisons
  its siblings;
* ``respawn`` builds a fresh worker that recovers the shard's state by
  WAL replay from the durable directory, after which answers match the
  pre-kill baseline exactly.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.model import Interval, KeyRange
from repro.errors import ShardDownError
from repro.serve.client import Client, ServerReplyError
from repro.serve.procpool import ProcessShardedWarehouse
from repro.serve.server import ServerConfig, serve_in_thread

KEYS = 100
LOW = KeyRange(1, 51)    # shard 0 of a two-way split of [1, 101)
HIGH = KeyRange(51, 101)  # shard 1


def _wait_dead(warehouse, index: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not warehouse.shard_alive(index):
            return
        time.sleep(0.02)
    pytest.fail(f"shard {index} still alive {timeout}s after SIGKILL")


def _seed(warehouse) -> int:
    events = [("insert", key, float(key), 1 + key % 7)
              for key in range(1, KEYS + 1)]
    events.sort(key=lambda e: e[3])
    warehouse.load_events(events)
    return warehouse.now


class TestKillWorker:
    def test_shard_down_is_typed_and_isolated(self, tmp_path):
        warehouse = ProcessShardedWarehouse(
            shards=2, key_space=(1, KEYS + 1),
            durable_dir=str(tmp_path / "wh"))
        try:
            now = _seed(warehouse)
            interval = Interval(1, now + 1)
            baseline_all = repr(warehouse.sum(KeyRange(1, KEYS + 1),
                                              interval))
            baseline_low = repr(warehouse.sum(LOW, interval))

            victim_pid = warehouse.shard_pid(1)
            os.kill(victim_pid, signal.SIGKILL)
            _wait_dead(warehouse, 1)

            with pytest.raises(ShardDownError) as excinfo:
                warehouse.sum(HIGH, interval)
            assert excinfo.value.code == "SHARD_DOWN"

            # A scatter over both shards fails the same way...
            with pytest.raises(ShardDownError):
                warehouse.sum(KeyRange(1, KEYS + 1), interval)
            # ...but the surviving shard alone still answers.
            assert repr(warehouse.sum(LOW, interval)) == baseline_low

            new_pid = warehouse.respawn(1)
            assert new_pid != victim_pid
            assert warehouse.shard_alive(1)

            # WAL replay in the fresh worker restored the shard exactly.
            assert repr(warehouse.sum(KeyRange(1, KEYS + 1), interval)) \
                == baseline_all
        finally:
            warehouse.close()

    def test_server_returns_shard_down_and_respawns(self, tmp_path):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=(1, KEYS + 1), executor="process",
            cache=False, durable_dir=str(tmp_path / "wh")))
        try:
            warehouse = handle.server.warehouse
            with Client(handle.host, handle.port, timeout=30) as client:
                for i in range(1, 11):
                    client.execute(
                        f"INSERT KEY {i * 10} VALUE 3.0 AT {i}")
                client.repin()
                baseline = client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)")

                os.kill(warehouse.shard_pid(0), signal.SIGKILL)
                _wait_dead(warehouse, 0)

                with pytest.raises(ServerReplyError) as excinfo:
                    client.execute(
                        "SELECT SUM(value) WHERE key IN [1, 101)")
                assert excinfo.value.code == "SHARD_DOWN"

                respawned = client.respawn(0)
                assert respawned["shard"] == 0
                assert client.execute(
                    "SELECT SUM(value) WHERE key IN [1, 101)") == baseline
        finally:
            handle.stop()
