"""Load-generator warm-up phase and the read-hot statement mix."""

from repro.serve.loadgen import hot_rectangles, run_load
from repro.serve.server import ServerConfig, serve_in_thread


def test_hot_rectangles_deterministic_and_bounded():
    first = hot_rectangles(100, 8, seed=7)
    assert first == hot_rectangles(100, 8, seed=7)
    assert first != hot_rectangles(100, 8, seed=8)
    assert len(first) == 8
    for agg, lo, hi in first:
        assert agg in ("SUM(value)", "COUNT(*)", "AVG(value)")
        assert 1 <= lo < hi <= 101


def test_warmup_samples_excluded_from_report():
    handle = serve_in_thread(ServerConfig(port=0, shards=2,
                                          key_space=(1, 81)))
    try:
        report = run_load(handle.host, handle.port, workers=2,
                          duration=0.4, seed_keys=80, seed=3,
                          warmup=0.4, mix="read-hot")
        assert report["config"]["warmup_s"] == 0.4
        assert report["config"]["mix"] == "read-hot"
        measured = report["totals"]["requests"]
        assert measured > 0
        # The server saw seeding + warm-up + measured query requests;
        # more landed on it than the report counted, which is exactly
        # the warm-up exclusion.
        series = report["server_metrics"]["repro_serve_requests_total"]
        server_query_ops = sum(
            row["value"] for row in series["series"]
            if row["labels"].get("op") == "query")
        seeded = 80
        assert server_query_ops > seeded + measured
    finally:
        handle.stop()


def test_zero_warmup_keeps_legacy_behavior():
    handle = serve_in_thread(ServerConfig(port=0, shards=2,
                                          key_space=(1, 41)))
    try:
        report = run_load(handle.host, handle.port, workers=1,
                          duration=0.3, seed_keys=40, seed=3)
        assert report["config"]["warmup_s"] == 0.0
        assert report["config"]["mix"] == "uniform"
        assert report["totals"]["requests"] > 0
    finally:
        handle.stop()
