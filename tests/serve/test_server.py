"""End-to-end protocol tests against a live in-process server."""

import json
import socket
import threading
import time

import pytest

from repro.serve.client import Client, ServerReplyError
from repro.serve.server import ServerConfig, serve_in_thread

KEY_SPACE = (1, 1001)


@pytest.fixture
def server():
    handle = serve_in_thread(ServerConfig(shards=4, key_space=KEY_SPACE,
                                          page_capacity=8))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with Client(server.host, server.port) as c:
        yield c


class TestBasicProtocol:
    def test_hello_announces_protocol(self, client):
        assert client.hello["server"] == "repro.serve"
        assert client.hello["version"] == 1
        assert client.hello["shards"] == 4
        assert client.ping()

    def test_insert_select_round_trip(self, client):
        client.execute("INSERT KEY 7 VALUE 3.0 AT 1")
        client.execute("INSERT KEY 900 VALUE 5.0 AT 2")
        client.repin()
        total = client.execute("SELECT SUM(value) WHERE key IN [1, 1001)")
        assert total == 8.0
        count = client.execute(
            "SELECT COUNT(*) WHERE key IN [1, 1001) AND TIME DURING [1, 3)")
        assert count == 2.0

    def test_explain_reports_shard_plans(self, client):
        client.execute("INSERT KEY 10 VALUE 1.0 AT 1")
        client.execute("INSERT KEY 600 VALUE 2.0 AT 1")
        client.repin()
        plans = client.execute(
            "EXPLAIN SELECT SUM(value) WHERE key IN [1, 1001)")
        assert isinstance(plans, list) and len(plans) == 4
        assert {p["shard"] for p in plans} == {0, 1, 2, 3}
        for p in plans:
            assert p["plan"]["plan"] in ("mvsbt", "mvbt-scan")

    def test_metrics_exposes_per_shard_counters(self, client):
        client.execute("INSERT KEY 10 VALUE 1.0 AT 1")
        client.repin()
        client.execute("SELECT SUM(value) WHERE key IN [1, 100)")
        metrics = client.metrics()
        assert "repro_serve_requests_total" in metrics
        assert "repro_serve_shard_writes_total" in metrics
        writes = metrics["repro_serve_shard_writes_total"]["series"]
        assert sum(s["value"] for s in writes) == 1

    def test_raw_protocol_over_socket(self, server):
        # The protocol must be speakable without the Client class.
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as sock:
            fh = sock.makefile("rb")
            hello = json.loads(fh.readline())
            assert hello["server"] == "repro.serve"
            sock.sendall(b'{"op": "ping", "id": 1}\n')
            reply = json.loads(fh.readline())
            assert reply == {"id": 1, "ok": True, "result": "pong",
                             "snapshot": reply["snapshot"],
                             "elapsed_ms": reply["elapsed_ms"]}


class TestSnapshotIsolation:
    def test_reads_pin_to_session_snapshot(self, server):
        with Client(server.host, server.port) as writer:
            writer.execute("INSERT KEY 5 VALUE 1.0 AT 1")
            writer.execute("INSERT KEY 6 VALUE 1.0 AT 2")
        with Client(server.host, server.port) as reader:
            pinned = reader.snapshot
            assert pinned >= 2
            before = reader.execute(
                "SELECT COUNT(*) WHERE key IN [1, 1001)")
            # A later write is invisible until the session re-pins.
            with Client(server.host, server.port) as writer:
                writer.execute("INSERT KEY 7 VALUE 1.0 AT 5")
            assert reader.execute(
                "SELECT COUNT(*) WHERE key IN [1, 1001)") == before
            reader.repin()
            assert reader.execute(
                "SELECT COUNT(*) WHERE key IN [1, 1001)") == before + 1

    def test_explicit_as_of_overrides_session(self, client):
        client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
        client.execute("INSERT KEY 6 VALUE 2.0 AT 3")
        client.repin()
        early = client.execute("SELECT SUM(value) WHERE key IN [1, 1001)",
                               as_of=1)
        assert early == 1.0
        late = client.execute("SELECT SUM(value) WHERE key IN [1, 1001)")
        assert late == 3.0


class TestErrorReporting:
    def test_syntax_error_code(self, client):
        with pytest.raises(ServerReplyError) as excinfo:
            client.execute("SELEKT nothing")
        assert excinfo.value.code == "SYNTAX"

    def test_query_error_code(self, client):
        with pytest.raises(ServerReplyError) as excinfo:
            client.execute("SELECT SUM(value) WHERE key IN [9, 9)")
        assert excinfo.value.code in ("SYNTAX", "QUERY")

    def test_duplicate_insert_reports_code(self, client):
        client.execute("INSERT KEY 5 VALUE 1.0 AT 1")
        with pytest.raises(ServerReplyError) as excinfo:
            client.execute("INSERT KEY 5 VALUE 2.0 AT 2")
        assert excinfo.value.code == "DUPLICATE_KEY"

    def test_protocol_errors(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=5) as sock:
            fh = sock.makefile("rb")
            fh.readline()  # hello
            sock.sendall(b'this is not json\n')
            reply = json.loads(fh.readline())
            assert not reply["ok"]
            assert reply["error"]["code"] == "PROTOCOL"
            sock.sendall(b'{"op": "no-such-op"}\n')
            reply = json.loads(fh.readline())
            assert reply["error"]["code"] == "PROTOCOL"

    def test_errors_do_not_kill_the_connection(self, client):
        with pytest.raises(ServerReplyError):
            client.execute("SELEKT")
        assert client.ping()


class TestAdmissionControl:
    def test_excess_requests_get_server_busy(self):
        """Acceptance: max_inflight=1 + a slow query => SERVER_BUSY,
        not a hang and not a crash."""
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, max_inflight=1, max_queue=0,
            readers=2))
        try:
            slow = Client(handle.host, handle.port, timeout=10)
            fast = Client(handle.host, handle.port, timeout=10)
            errors = []

            def occupy():
                slow.sleep(1.0)

            t = threading.Thread(target=occupy)
            t.start()
            time.sleep(0.2)  # let the sleeper take the only slot
            with pytest.raises(ServerReplyError) as excinfo:
                fast.execute("SELECT SUM(value) WHERE key IN [1, 100)")
            assert excinfo.value.code == "SERVER_BUSY"
            t.join(timeout=10)
            # The server recovered: the slot is free again.
            assert fast.ping()
            slow.close()
            fast.close()
        finally:
            handle.stop()

    def test_queue_admits_up_to_max_queue(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, max_inflight=1, max_queue=8,
            readers=4))
        try:
            slow = Client(handle.host, handle.port, timeout=10)
            t = threading.Thread(target=lambda: slow.sleep(0.5))
            t.start()
            time.sleep(0.1)
            # This request queues behind the sleeper instead of failing.
            with Client(handle.host, handle.port, timeout=10) as c:
                assert c.execute(
                    "SELECT COUNT(*) WHERE key IN [1, 100)") == 0.0
            t.join(timeout=10)
            slow.close()
        finally:
            handle.stop()

    def test_request_timeout_returns_timeout_code(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, request_timeout=0.2, readers=2))
        try:
            with Client(handle.host, handle.port, timeout=10) as c:
                with pytest.raises(ServerReplyError) as excinfo:
                    c.sleep(2.0)
                assert excinfo.value.code == "TIMEOUT"
                # The connection survives a timed-out request.
                assert c.ping()
        finally:
            handle.stop()

    def test_rejections_are_counted(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, max_inflight=1, max_queue=0,
            readers=2))
        try:
            slow = Client(handle.host, handle.port, timeout=10)
            t = threading.Thread(target=lambda: slow.sleep(0.6))
            t.start()
            time.sleep(0.1)
            with Client(handle.host, handle.port, timeout=10) as c:
                for _ in range(3):
                    with pytest.raises(ServerReplyError):
                        c.ping_slot = c.execute(
                            "SELECT COUNT(*) WHERE key IN [1, 100)")
                t.join(timeout=10)
                rejected = c.metrics()["repro_serve_rejected_total"]
                total = sum(s["value"] for s in rejected["series"])
                assert total >= 3
            slow.close()
        finally:
            handle.stop()


class TestShutdown:
    def test_shutdown_drains_and_stops(self, server):
        with Client(server.host, server.port) as c:
            c.execute("INSERT KEY 3 VALUE 1.0 AT 1")
            assert c.shutdown() == "draining"
        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                Client(server.host, server.port, timeout=0.5).close()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept accepting connections after shutdown")

    def test_requests_during_drain_get_shutting_down(self):
        handle = serve_in_thread(ServerConfig(
            shards=2, key_space=KEY_SPACE, drain_timeout=5.0, readers=2))
        try:
            holder = Client(handle.host, handle.port, timeout=10)
            other = Client(handle.host, handle.port, timeout=10)
            t = threading.Thread(target=lambda: holder.sleep(0.8))
            t.start()
            time.sleep(0.2)
            other.shutdown()
            with pytest.raises(ServerReplyError) as excinfo:
                other.execute("SELECT COUNT(*) WHERE key IN [1, 100)")
            assert excinfo.value.code == "SHUTTING_DOWN"
            t.join(timeout=10)
            holder.close()
            other.close()
        finally:
            handle.stop()
