"""Planner-driven split-then-automerge against the topology oracle.

The ``merge_qps`` knob is autosplit's inverse: when two *adjacent*
groups both sit at or below the threshold, the planner folds them back
into one.  This test drives the full cycle deterministically — manual
``tick()`` calls, no timer races: a read burst makes one group hot
enough to split, going quiet makes both children cold enough to merge —
and checks every topology against a single-warehouse oracle for
byte-identical answers.
"""

import pytest

from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.serve.cluster import ClusterWarehouse

KEYS = 60
KEY_SPACE = (1, KEYS + 1)


def _events():
    return [("insert", key, float(key), key) for key in range(1, KEYS + 1)]


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    root = tmp_path_factory.mktemp("automerge")
    warehouse = ClusterWarehouse(
        shards=1, key_space=KEY_SPACE, durable_dir=str(root),
        replicas=0, autosplit=True, split_qps=50.0, split_min_share=0.0,
        split_cooldown=0.0, merge_qps=20.0,
        planner_interval=3600.0)  # ticks are driven manually
    warehouse.load_events(_events())
    yield warehouse
    warehouse.close()


def _oracle():
    warehouse = TemporalWarehouse(key_space=KEY_SPACE)
    warehouse.load_events(_events())
    return warehouse


def _assert_matches_oracle(cluster, oracle):
    interval = Interval(1, oracle.now + 1)
    for key_range in (KeyRange(*KEY_SPACE), KeyRange(10, 40),
                      KeyRange(25, 26)):
        assert repr(cluster.sum(key_range, interval)) == \
            repr(oracle.sum(key_range, interval))
    assert repr(cluster.snapshot(KeyRange(*KEY_SPACE), oracle.now)) == \
        repr(oracle.snapshot(KeyRange(*KEY_SPACE), oracle.now))


def test_split_then_automerge_round_trip(cluster):
    import time

    oracle = _oracle()
    planner = cluster._planner
    assert planner is not None and planner.merge_qps == 20.0

    # Tick 1: baseline scrape.  One group only, so the automerge arm
    # (adjacent pairs) has nothing to consider and must not fire.
    planner.tick()
    assert len(cluster._topology.entries) == 1
    assert cluster.merges == 0

    # Burst of reads -> the lone group's scrape-to-scrape rate clears
    # split_qps on the next tick, and the planner splits it.
    interval = Interval(1, oracle.now + 1)
    for _ in range(300):
        cluster.sum(KeyRange(*KEY_SPACE), interval)
    planner.tick()
    assert cluster.splits == 1
    assert len(cluster._topology.entries) == 2
    version_after_split = cluster.topology_version
    _assert_matches_oracle(cluster, oracle)

    # Quiet period: the next scrape sees only the oracle-check reads
    # spread over a real second — both groups well under merge_qps —
    # and the planner merges them back.
    time.sleep(1.2)
    planner.tick()
    assert cluster.merges == 1
    assert len(cluster._topology.entries) == 1
    assert cluster.topology_version > version_after_split
    _assert_matches_oracle(cluster, oracle)

    # The merged group keeps accepting writes with a correct clock.
    t = oracle.now + 1
    cluster.update(5, 500.0, t)
    oracle.update(5, 500.0, t)
    _assert_matches_oracle(cluster, oracle)


def test_merge_qps_none_never_merges(tmp_path):
    warehouse = ClusterWarehouse(
        shards=2, key_space=KEY_SPACE, durable_dir=str(tmp_path),
        replicas=0, autosplit=True, split_qps=1e9,
        planner_interval=3600.0)
    try:
        warehouse.load_events(_events())
        planner = warehouse._planner
        assert planner is not None and planner.merge_qps is None
        planner.tick()  # both groups idle: would merge if armed
        planner.tick()
        assert warehouse.merges == 0
        assert len(warehouse._topology.entries) == 2
    finally:
        warehouse.close()
