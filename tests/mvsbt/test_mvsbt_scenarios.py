"""Scenario tests for the MVSBT: boundary keys, tiny key spaces, bursty
instants, long monotone streams, and physical-mode structural parity."""

import pytest

from repro.core.model import NOW
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import DominanceSumOracle


def fresh_tree(key_space=(1, 1001), **config_kwargs):
    defaults = dict(capacity=6, strong_factor=0.5)
    defaults.update(config_kwargs)
    pool = BufferPool(InMemoryDiskManager(), capacity=2048)
    return MVSBT(pool, MVSBTConfig(**defaults), key_space=key_space)


class TestBoundaryKeys:
    def test_repeated_inserts_at_space_bottom(self):
        tree = fresh_tree()
        for t in range(1, 50):
            tree.insert(1, t, 1.0)
        assert tree.query(1, 49) == 49.0
        assert tree.query(1000, 49) == 49.0
        tree.check_invariants()

    def test_repeated_inserts_at_space_top_minus_one(self):
        tree = fresh_tree()
        for t in range(1, 50):
            tree.insert(1000, t, 1.0)
        assert tree.query(1000, 49) == 49.0
        assert tree.query(999, 49) == 0.0
        tree.check_invariants()

    def test_two_key_space(self):
        tree = fresh_tree(key_space=(1, 3))
        tree.insert(1, 5, 1.0)
        tree.insert(2, 6, 2.0)
        assert tree.query(1, 10) == 1.0
        assert tree.query(2, 10) == 3.0
        assert tree.query(1, 5) == 1.0
        tree.check_invariants()

    def test_every_key_of_a_small_space_becomes_a_boundary(self):
        tree = fresh_tree(key_space=(1, 33), capacity=4,
                          strong_factor=0.9)
        oracle = DominanceSumOracle()
        t = 1
        for sweep in range(4):
            for key in range(1, 33):
                tree.insert(key, t, float(key % 5 + 1))
                oracle.insert(key, t, float(key % 5 + 1))
                t += 1
        tree.check_invariants()
        for qt in range(1, t, 11):
            for qk in range(1, 33, 3):
                assert tree.query(qk, qt) == oracle.query(qk, qt)


class TestBurstyInstants:
    def test_thousand_updates_at_one_instant(self):
        tree = fresh_tree(capacity=8)
        oracle = DominanceSumOracle()
        state = 5
        for _ in range(1000):
            state = (state * 48271) % (2**31 - 1)
            key = state % 999 + 1
            value = float(state % 7 - 3) or 2.0
            tree.insert(key, 42, value)
            oracle.insert(key, 42, value)
        tree.check_invariants()
        for qk in range(1, 1001, 97):
            assert tree.query(qk, 42) == pytest.approx(oracle.query(qk, 42))
            assert tree.query(qk, 41) == 0.0
            assert tree.query(qk, 99) == pytest.approx(oracle.query(qk, 42))

    def test_disposal_bounds_same_instant_garbage(self):
        tree = fresh_tree(capacity=4, page_disposal=True)
        for i in range(1, 300):
            tree.insert(i * 3 % 999 + 1, 7, 1.0)
        # Every page alive at the single populated instant is reachable;
        # disposed intermediates are actually gone from the disk.
        assert tree.page_count() == tree.pool.disk.live_page_count
        assert tree.counters.disposals > 0


class TestMonotoneStreams:
    def test_ascending_keys_ascending_times(self):
        tree = fresh_tree(key_space=(1, 10**6), capacity=8)
        for i in range(1, 800):
            tree.insert(i * 1000, i, 1.0)
        tree.check_invariants()
        assert tree.query(10**6 - 1, 799) == 799.0
        assert tree.query(1000, 799) == 1.0
        assert tree.query(500_000, 400) == 400.0

    def test_descending_keys_ascending_times(self):
        tree = fresh_tree(key_space=(1, 10**6), capacity=8)
        for i in range(1, 800):
            tree.insert((800 - i) * 1000, i, 1.0)
        tree.check_invariants()
        assert tree.query(10**6 - 1, 799) == 799.0
        # Key k*1000 was inserted at time 800-k: dominance checks out.
        assert tree.query(400_000, 500) == pytest.approx(101.0)


class TestPhysicalModeStructure:
    def test_physical_mode_splits_all_fully_covered(self):
        # Capacity 12: neither variant overflows during this micro-trace,
        # so the counters isolate the record-split policy itself.
        logical = fresh_tree(capacity=12)
        physical = fresh_tree(capacity=12, logical_split=False,
                              record_merging=False)
        # Three splits at distinct keys, then one insert below them all.
        for tree in (logical, physical):
            tree.insert(800, 2, 1.0)
            tree.insert(600, 3, 1.0)
            tree.insert(400, 4, 1.0)
        base_logical = logical.counters.records_created
        base_physical = physical.counters.records_created
        logical.insert(100, 5, 1.0)
        physical.insert(100, 5, 1.0)
        # Logical: one split.  Physical: every fully-covered record.
        assert logical.counters.records_created - base_logical <= 2
        assert physical.counters.records_created - base_physical >= 4
        for k in (50, 100, 399, 400, 600, 800, 1000):
            assert logical.query(k, 5) == physical.query(k, 5)

    def test_physical_mode_point_reads_one_record_per_page(self):
        physical = fresh_tree(logical_split=False, record_merging=False)
        for t in range(1, 100):
            physical.insert((t * 37) % 999 + 1, t, 1.0)
        physical.check_invariants()
        oracle = DominanceSumOracle()
        for t in range(1, 100):
            oracle.insert((t * 37) % 999 + 1, t, 1.0)
        for qk in range(1, 1001, 111):
            assert physical.query(qk, 99) == oracle.query(qk, 99)


class TestRootHistory:
    def test_roots_partition_time(self):
        tree = fresh_tree(capacity=4)
        for t in range(1, 200):
            tree.insert((t * 13) % 999 + 1, t, 1.0)
        entries = tree.roots.entries()
        assert len(entries) > 3
        starts = [e.start for e in entries]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)
        # Every root answers for its own slice.
        for early, late in zip(entries, entries[1:]):
            probe = late.start - 1
            if probe >= early.start:
                assert tree.roots.find(probe).root_id == early.root_id

    def test_old_roots_stay_queryable_after_many_generations(self):
        tree = fresh_tree(capacity=4)
        oracle = DominanceSumOracle()
        for t in range(1, 400):
            key = (t * 29) % 999 + 1
            tree.insert(key, t, 1.0)
            oracle.insert(key, t, 1.0)
        for qt in (1, 5, 50, 150, 399):
            for qk in (1, 333, 666, 1000):
                assert tree.query(qk, qt) == oracle.query(qk, qt)
