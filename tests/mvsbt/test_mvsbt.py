"""Unit tests for the MVSBT: semantics, structure, optimizations."""

import pytest

from repro.core.model import NOW
from repro.errors import QueryError, TimeOrderError
from repro.mvsbt.tree import MVSBT, MVSBTConfig

from tests.oracles import DominanceSumOracle

KEY_SPACE = (1, 1001)


@pytest.fixture()
def tree(pool):
    return MVSBT(pool, MVSBTConfig(capacity=6, strong_factor=0.5),
                 key_space=KEY_SPACE)


class TestBasicSemantics:
    def test_fresh_tree_is_zero_everywhere(self, tree):
        assert tree.query(1, 1) == 0.0
        assert tree.query(500, 100) == 0.0

    def test_quadrant_update(self, tree):
        tree.insert(100, 10, 5.0)
        # Inside the quadrant [100, max) x [10, max):
        assert tree.query(100, 10) == 5.0
        assert tree.query(999, 99999) == 5.0
        # Outside (lower key or earlier time):
        assert tree.query(99, 10) == 0.0
        assert tree.query(100, 9) == 0.0
        assert tree.query(1, 10**7) == 0.0

    def test_quadrants_accumulate(self, tree):
        tree.insert(100, 10, 1.0)
        tree.insert(200, 20, 2.0)
        assert tree.query(150, 15) == 1.0
        assert tree.query(250, 25) == 3.0
        assert tree.query(250, 15) == 1.0
        assert tree.query(150, 25) == 1.0

    def test_negative_values_cancel(self, tree):
        tree.insert(100, 10, 7.0)
        tree.insert(100, 20, -7.0)
        assert tree.query(500, 15) == 7.0
        assert tree.query(500, 20) == 0.0

    def test_same_instant_updates(self, tree):
        tree.insert(100, 10, 1.0)
        tree.insert(50, 10, 2.0)
        tree.insert(400, 10, 3.0)
        assert tree.query(49, 10) == 0.0
        assert tree.query(50, 10) == 2.0
        assert tree.query(100, 10) == 3.0
        assert tree.query(400, 10) == 6.0

    def test_key_below_space_covers_everything(self, tree):
        tree.insert(0, 5, 4.0)  # clamped to the key-space bottom
        assert tree.query(1, 5) == 4.0
        assert tree.query(1000, 5) == 4.0

    def test_key_at_space_top_is_noop(self, tree):
        tree.insert(1001, 5, 4.0)
        assert tree.query(1000, 10) == 0.0
        assert tree.counters.noop_insertions == 1

    def test_zero_value_is_noop(self, tree):
        tree.insert(100, 5, 0.0)
        assert tree.counters.insertions == 0

    def test_query_before_first_insert_time(self, tree):
        tree.insert(100, 10, 1.0)
        assert tree.query(100, 0) == 0.0


class TestValidation:
    def test_time_order_enforced(self, tree):
        tree.insert(100, 10, 1.0)
        with pytest.raises(TimeOrderError):
            tree.insert(100, 9, 1.0)

    def test_query_key_outside_space_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.query(0, 5)
        with pytest.raises(QueryError):
            tree.query(1001, 5)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MVSBTConfig(capacity=3)
        with pytest.raises(ValueError):
            MVSBTConfig(capacity=8, strong_factor=0.1)  # floor(f*b) < 2
        with pytest.raises(ValueError):
            MVSBTConfig(capacity=8, strong_factor=1.5)
        with pytest.raises(ValueError):
            MVSBTConfig(logical_split=False, record_merging=True)

    def test_strong_bound(self):
        assert MVSBTConfig(capacity=10, strong_factor=0.9).strong_bound == 9
        assert MVSBTConfig(capacity=6, strong_factor=0.5).strong_bound == 3


class TestStructure:
    def test_history_survives_splits(self, tree):
        for i in range(1, 60):
            tree.insert(i * 16 % 997 + 1, i, 1.0)
        tree.check_invariants()
        assert tree.counters.time_splits > 0
        # Every historical version still answers correctly.
        oracle = DominanceSumOracle()
        for i in range(1, 60):
            oracle.insert(i * 16 % 997 + 1, i, 1.0)
        for t in range(1, 60, 5):
            for k in (1, 250, 500, 750, 1000):
                assert tree.query(k, t) == oracle.query(k, t), (k, t)

    def test_key_split_occurs_and_preserves_sums(self, pool):
        tree = MVSBT(pool, MVSBTConfig(capacity=4, strong_factor=0.9),
                     key_space=KEY_SPACE)
        oracle = DominanceSumOracle()
        for i in range(1, 100):
            key = (i * 37) % 999 + 1
            tree.insert(key, i, float(i % 5 + 1))
            oracle.insert(key, i, float(i % 5 + 1))
        assert tree.counters.key_splits > 0
        tree.check_invariants()
        for t in (1, 25, 50, 75, 99):
            for k in range(1, 1001, 111):
                assert tree.query(k, t) == pytest.approx(oracle.query(k, t))

    def test_height_grows_logarithmically(self, pool):
        tree = MVSBT(pool, MVSBTConfig(capacity=8), key_space=(1, 10**6))
        for i in range(1, 500):
            tree.insert((i * 7919) % (10**6 - 1) + 1, i, 1.0)
        assert tree.height() <= 5

    def test_page_count_tracks_disk(self, tree):
        for i in range(1, 80):
            tree.insert(i * 11 % 999 + 1, i, 1.0)
        assert tree.page_count() == tree.pool.disk.live_page_count


class TestOptimizations:
    def _stream(self):
        state = 17
        events = []
        for t in range(1, 150):
            state = (state * 48271) % (2**31 - 1)
            key = state % 999 + 1
            value = float(state % 9 - 4) or 1.0
            events.append((key, t, value))
        return events

    def _build(self, **config_kwargs):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDiskManager

        pool = BufferPool(InMemoryDiskManager(), capacity=1024)
        defaults = dict(capacity=6, strong_factor=0.5)
        defaults.update(config_kwargs)
        tree = MVSBT(pool, MVSBTConfig(**defaults), key_space=KEY_SPACE)
        for key, t, value in self._stream():
            tree.insert(key, t, value)
        return tree

    def _assert_same_answers(self, a, b):
        for t in range(1, 150, 11):
            for k in range(1, 1001, 97):
                assert a.query(k, t) == pytest.approx(b.query(k, t)), (k, t)

    def test_physical_mode_equivalent(self):
        logical = self._build()
        physical = self._build(logical_split=False, record_merging=False)
        self._assert_same_answers(logical, physical)
        physical.check_invariants()

    def test_merging_off_equivalent(self):
        merged = self._build()
        plain = self._build(record_merging=False)
        self._assert_same_answers(merged, plain)
        plain.check_invariants()

    def test_disposal_off_equivalent(self):
        disposing = self._build()
        keeping = self._build(page_disposal=False)
        self._assert_same_answers(disposing, keeping)

    def test_logical_split_creates_fewer_records(self):
        logical = self._build()
        physical = self._build(logical_split=False, record_merging=False)
        assert logical.counters.records_created \
            < physical.counters.records_created

    def test_disposal_frees_pages_under_same_instant_bursts(self):
        from repro.storage.buffer import BufferPool
        from repro.storage.disk import InMemoryDiskManager

        def burst(dispose):
            pool = BufferPool(InMemoryDiskManager(), capacity=1024)
            tree = MVSBT(pool, MVSBTConfig(capacity=4, page_disposal=dispose),
                         key_space=KEY_SPACE)
            for i in range(1, 60):   # all at one instant
                tree.insert(i * 16 + 1, 5, 1.0)
            return tree

        with_disposal = burst(True)
        without = burst(False)
        assert with_disposal.counters.disposals > 0
        assert with_disposal.pool.disk.live_page_count \
            < without.pool.disk.live_page_count
        # Same answers regardless.
        for k in range(1, 1001, 37):
            assert with_disposal.query(k, 5) == without.query(k, 5)
            assert with_disposal.query(k, 99) == without.query(k, 99)

    def test_time_merge_fires_on_cancelling_update(self, tree):
        tree.insert(100, 5, 1.0)
        tree.insert(100, 7, -1.0)   # splits at t=7
        tree.insert(50, 7, 2.0)
        # Records around key 100 at t=7: the -1 then... craft the paper's
        # pattern directly instead:
        assert tree.query(100, 7) == 2.0

    def test_time_merge_undoes_cancelled_split(self, tree):
        """A +v then -v on the same key at one instant resurrects the
        record the first update had split (paper's section 4.3 remark)."""
        tree.insert(100, 2, 5.0)
        tree.insert(100, 3, 1.0)    # vertical split at t=3
        tree.insert(100, 3, -1.0)   # in-place cancel -> time merge
        assert tree.counters.time_merges >= 1
        assert tree.query(500, 2) == 5.0
        assert tree.query(500, 3) == 5.0
        assert tree.query(99, 3) == 0.0

    def test_key_merge_removes_zero_delta(self, tree):
        tree.insert(100, 2, 5.0)
        tree.insert(100, 2, -5.0)   # zero delta next to its lower neighbour
        assert tree.counters.key_merges >= 1
        for k in (1, 99, 100, 1000):
            assert tree.query(k, 2) == 0.0

    def test_merging_reduces_record_count(self):
        def churn(merging):
            from repro.storage.buffer import BufferPool
            from repro.storage.disk import InMemoryDiskManager

            pool = BufferPool(InMemoryDiskManager(), capacity=1024)
            tree = MVSBT(pool, MVSBTConfig(capacity=8,
                                           record_merging=merging),
                         key_space=KEY_SPACE)
            # Split-then-cancel churn across several keys and instants.
            for t in range(2, 60):
                key = (t * 91) % 900 + 1
                tree.insert(key, t, 1.0)
                tree.insert(key, t, -1.0)
            return tree

        merged = churn(True)
        plain = churn(False)
        assert merged.counters.time_merges + merged.counters.key_merges > 0
        assert merged.counters.records_created - merged.counters.time_merges \
            <= plain.counters.records_created
        for t in (2, 30, 59):
            for k in (1, 250, 500, 750, 1000):
                assert merged.query(k, t) == plain.query(k, t)


class TestAgainstOracle:
    def test_dense_stream_all_versions(self, pool):
        tree = MVSBT(pool, MVSBTConfig(capacity=5, strong_factor=0.8),
                     key_space=(1, 101))
        oracle = DominanceSumOracle()
        state = 3
        t = 1
        for _ in range(400):
            state = (state * 48271) % (2**31 - 1)
            key = state % 102  # includes 0 (clamp) and 101 (no-op)
            value = float(state % 7 - 3)
            t += state % 2
            tree.insert(key, t, value)
            if value != 0 and key < 101:
                oracle.insert(max(key, 1), t, value)
        tree.check_invariants()
        for qt in range(1, t + 2, 17):
            for qk in range(1, 101, 7):
                assert tree.query(qk, qt) == pytest.approx(
                    oracle.query(qk, qt)
                ), (qk, qt)
