"""``MVSBT.query_batch``: the frontier-ordered sweep against its serial
oracle — duplicate probes, pre-history instants, memo interaction, and
the page-fetch accounting."""

import random

import pytest

from repro.core.batch import BatchScanStats
from repro.errors import QueryError
from repro.mvsbt.tree import MVSBT, MVSBTConfig

KEY_SPACE = (1, 1001)


@pytest.fixture()
def tree(pool):
    return MVSBT(pool, MVSBTConfig(capacity=6, strong_factor=0.5),
                 key_space=KEY_SPACE)


def _grown(tree, inserts=300, seed=21):
    rng = random.Random(seed)
    t = 1
    for _ in range(inserts):
        tree.insert(rng.randint(1, 1000), t, float(rng.randint(-5, 9)))
        if rng.random() < 0.3:
            t += 1
    return t


def _probes(now, count, seed=22):
    rng = random.Random(seed)
    return [(rng.randint(1, 1000), rng.randint(1, now + 3))
            for _ in range(count)]


class TestSweepOracle:
    def test_matches_serial_descents(self, tree):
        now = _grown(tree)
        probes = _probes(now, 120)
        expected = [tree.query(key, t) for key, t in probes]
        assert tree.query_batch(probes) == expected

    def test_duplicate_probes_dedup_and_fan_out(self, tree):
        now = _grown(tree)
        base = _probes(now, 10)
        probes = [base[i % len(base)] for i in range(60)]
        expected = [tree.query(key, t) for key, t in probes]
        stats = BatchScanStats()
        assert tree.query_batch(probes, stats) == expected
        snapshot = stats.as_dict()
        assert snapshot["probes"] == 60
        assert snapshot["probes_deduped"] >= 50
        assert snapshot["pages_saved"] > 0

    def test_pre_history_probes_are_zero(self, tree):
        _grown(tree)
        assert tree.query_batch([(500, 0), (500, tree.start_time - 1)]) \
            == [0.0, 0.0]

    def test_key_outside_space_raises(self, tree):
        _grown(tree)
        with pytest.raises(QueryError):
            tree.query_batch([(500, 5), (1001, 5)])

    def test_empty_batch(self, tree):
        _grown(tree)
        assert tree.query_batch([]) == []


class TestMemoInteraction:
    def test_batch_prefills_memo_for_serial_hits(self, tree):
        tree.enable_memo(capacity=4096)
        now = _grown(tree)
        probes = _probes(now, 80)
        first = tree.query_batch(probes)
        hits_before = tree.memo.stats.hits
        serial = [tree.query(key, t) for key, t in probes]
        assert serial == first
        assert tree.memo.stats.hits >= hits_before + len(probes)

    def test_memo_hits_serve_second_batch(self, tree):
        tree.enable_memo(capacity=4096)
        now = _grown(tree)
        probes = _probes(now, 80)
        first = tree.query_batch(probes)
        stats = BatchScanStats()
        second = tree.query_batch(probes, stats)
        assert second == first
        # Every probe answered from the memo: nothing left to sweep.
        assert stats.as_dict()["pages_fetched"] == 0
