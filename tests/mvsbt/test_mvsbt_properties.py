"""Hypothesis property tests: MVSBT vs the dominance-sum oracle.

The MVSBT's contract is exactly a dominance sum over the update set:
``query(k, t) = sum { v : (k', t', v) inserted, k' <= k, t' <= t }``.
Streams of quadrant updates with non-decreasing times are generated and the
tree must agree with the oracle at every probed point, under every
combination of optimization toggles, with invariants intact.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import DominanceSumOracle

KEY_SPACE = (1, 120)


@st.composite
def update_streams(draw):
    """(key, dt, value) updates; dt >= 0 keeps times non-decreasing."""
    return draw(st.lists(
        st.tuples(
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
        ),
        min_size=1, max_size=120,
    ))


def build(stream, **config_kwargs):
    pool = BufferPool(InMemoryDiskManager(), capacity=2048)
    defaults = dict(capacity=5, strong_factor=0.8)
    defaults.update(config_kwargs)
    tree = MVSBT(pool, MVSBTConfig(**defaults), key_space=KEY_SPACE)
    oracle = DominanceSumOracle()
    t = 1
    for key, dt, value in stream:
        t += dt
        tree.insert(key, t, float(value))
        oracle.insert(key, t, float(value))
    return tree, oracle, t


@settings(max_examples=60, deadline=None)
@given(update_streams(),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
       st.integers(min_value=1, max_value=600))
def test_query_matches_oracle(stream, key, t):
    tree, oracle, _ = build(stream)
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))


@settings(max_examples=40, deadline=None)
@given(update_streams())
def test_invariants_hold(stream):
    tree, _, _ = build(stream)
    tree.check_invariants()


@settings(max_examples=40, deadline=None)
@given(update_streams(),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
       st.integers(min_value=1, max_value=600))
def test_physical_mode_matches_oracle(stream, key, t):
    tree, oracle, _ = build(stream, logical_split=False,
                            record_merging=False)
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(update_streams(),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
       st.integers(min_value=1, max_value=600))
def test_toggles_do_not_change_answers(stream, key, t):
    reference, _, _ = build(stream)
    for kwargs in (
        dict(record_merging=False),
        dict(page_disposal=False),
        dict(record_merging=False, page_disposal=False),
    ):
        variant, _, _ = build(stream, **kwargs)
        assert variant.query(key, t) == pytest.approx(reference.query(key, t))


@settings(max_examples=30, deadline=None)
@given(update_streams(),
       st.sampled_from([(4, 0.9), (6, 0.5), (8, 0.75), (16, 0.9)]),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
       st.integers(min_value=1, max_value=600))
def test_capacity_and_strong_factor_invisible(stream, params, key, t):
    capacity, factor = params
    tree, oracle, _ = build(stream, capacity=capacity, strong_factor=factor)
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))


@settings(max_examples=30, deadline=None)
@given(update_streams())
def test_latest_version_is_a_full_tiling(stream):
    """At the current instant the alive leaf records across the latest tree
    tile the whole key space exactly once (Property 1 globally)."""
    tree, _, t_end = build(stream)
    covered = []
    stack = [tree.root_id]
    while stack:
        page = tree.pool.fetch(stack.pop())
        if page.kind == "mvsbt-index":
            stack.extend(r.child for r in page.records if r.alive)
        else:
            covered.extend(
                (r.low, r.high) for r in page.records if r.alive
            )
    covered.sort()
    assert covered[0][0] == KEY_SPACE[0]
    assert covered[-1][1] == KEY_SPACE[1]
    for (l1, h1), (l2, h2) in zip(covered, covered[1:]):
        assert h1 == l2
