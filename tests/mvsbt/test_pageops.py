"""Direct unit tests for MVSBT page-level operations."""

import pytest

from repro.core.model import NOW
from repro.mvsbt import pageops as ops
from repro.mvsbt.records import (
    INDEX_KIND,
    LEAF_KIND,
    MVSBTIndexRecord,
    MVSBTLeafRecord,
)
from repro.storage.page import Page


def leaf_page(*records):
    page = Page(0, capacity=8, kind=LEAF_KIND)
    for record in records:
        page.add(record)
    return page


def rec(low, high, start=1, end=NOW, value=0.0):
    return MVSBTLeafRecord(low, high, start, end, value)


def irec(low, high, start=1, end=NOW, value=0.0, child=7):
    return MVSBTIndexRecord(low, high, start, end, value, child)


class TestRecordClassification:
    """The section 4.1 vocabulary: partly/fully/first-fully covered."""

    @pytest.fixture()
    def page(self):
        return leaf_page(rec(1, 10), rec(10, 50, value=2.0), rec(50, 100))

    def test_partly_covered_strictly_inside(self, page):
        found = ops.find_partly_covered(page, 30)
        assert (found.low, found.high) == (10, 50)

    def test_boundary_key_is_not_partly_covered(self, page):
        assert ops.find_partly_covered(page, 10) is None
        assert ops.find_partly_covered(page, 50) is None

    def test_dead_records_ignored(self, page):
        target = page.records[1]
        target.end = 5  # kill it
        assert ops.find_partly_covered(page, 30) is None

    def test_first_fully_covered(self, page):
        found = ops.find_first_fully_covered(page, 10)
        assert found.low == 10
        found = ops.find_first_fully_covered(page, 11)
        assert found.low == 50

    def test_first_fully_covered_none_above_range(self, page):
        assert ops.find_first_fully_covered(page, 100) is None

    def test_find_successor(self, page):
        assert ops.find_successor(page, 50).low == 50
        assert ops.find_successor(page, 49) is None

    def test_find_alive_by_child(self):
        page = Page(0, capacity=8, kind=INDEX_KIND)
        page.add(irec(1, 50, child=3))
        page.add(irec(50, 100, child=4))
        assert ops.find_alive_by_child(page, 4).low == 50
        assert ops.find_alive_by_child(page, 99) is None


class TestSplits:
    def test_vertical_split_closes_and_copies(self):
        page = leaf_page(rec(1, 100, start=1, value=5.0))
        old = page.records[0]
        fresh = ops.vertical_split(page, old, t=10, new_value=7.0)
        assert old.end == 10
        assert (fresh.start, fresh.end, fresh.value) == (10, NOW, 7.0)
        assert (fresh.low, fresh.high) == (1, 100)
        assert len(page.records) == 2

    def test_vertical_split_in_place_at_birth_instant(self):
        page = leaf_page(rec(1, 100, start=10, value=5.0))
        old = page.records[0]
        fresh = ops.vertical_split(page, old, t=10, new_value=7.0)
        assert fresh is old
        assert old.value == 7.0
        assert len(page.records) == 1

    def test_vertical_split_preserves_child(self):
        page = Page(0, capacity=8, kind=INDEX_KIND)
        page.add(irec(1, 100, start=1, value=5.0, child=42))
        fresh = ops.vertical_split(page, page.records[0], t=10,
                                   new_value=6.0)
        assert fresh.child == 42

    def test_horizontal_split_three_pieces(self):
        page = leaf_page(rec(1, 100, start=1, value=5.0))
        upper = ops.horizontal_split_leaf(page, page.records[0], key=40,
                                          t=10, upper_value=1.0)
        pieces = sorted((r.low, r.high, r.start, r.end, r.value)
                        for r in page.records)
        assert pieces == [
            (1, 40, 10, NOW, 5.0),
            (1, 100, 1, 10, 5.0),
            (40, 100, 10, NOW, 1.0),
        ]
        assert (upper.low, upper.high) == (40, 100)

    def test_horizontal_split_in_place_at_birth_instant(self):
        page = leaf_page(rec(1, 100, start=10, value=5.0))
        ops.horizontal_split_leaf(page, page.records[0], key=40, t=10,
                                  upper_value=1.0)
        pieces = sorted((r.low, r.high, r.value) for r in page.records)
        assert pieces == [(1, 40, 5.0), (40, 100, 1.0)]

    def test_horizontal_split_requires_partly_covered(self):
        page = leaf_page(rec(1, 100))
        with pytest.raises(AssertionError):
            ops.horizontal_split_leaf(page, page.records[0], key=100, t=5,
                                      upper_value=1.0)


class TestMerging:
    def test_time_merge_resurrects_dead_record(self):
        dead = rec(1, 100, start=1, end=10, value=5.0)
        fresh = rec(1, 100, start=10, end=NOW, value=5.0)
        page = leaf_page(dead, fresh)
        survivor = ops.try_time_merge(page, fresh)
        assert survivor is dead
        assert dead.end == NOW
        assert len(page.records) == 1

    def test_time_merge_requires_equal_values(self):
        dead = rec(1, 100, start=1, end=10, value=5.0)
        fresh = rec(1, 100, start=10, end=NOW, value=6.0)
        page = leaf_page(dead, fresh)
        assert ops.try_time_merge(page, fresh) is None

    def test_time_merge_requires_same_child(self):
        page = Page(0, capacity=8, kind=INDEX_KIND)
        dead = irec(1, 100, start=1, end=10, value=5.0, child=3)
        fresh = irec(1, 100, start=10, end=NOW, value=5.0, child=4)
        page.add(dead)
        page.add(fresh)
        assert ops.try_time_merge(page, fresh) is None
        fresh.child = 3
        assert ops.try_time_merge(page, fresh) is dead

    def test_key_merge_absorbs_zero_delta(self):
        lower = rec(1, 40, start=10, value=5.0)
        zero = rec(40, 100, start=10, value=0.0)
        page = leaf_page(lower, zero)
        survivor = ops.try_key_merge(page, zero)
        assert survivor is lower
        assert (lower.low, lower.high) == (1, 100)
        assert len(page.records) == 1

    def test_key_merge_requires_equal_starts(self):
        lower = rec(1, 40, start=5, value=5.0)
        zero = rec(40, 100, start=10, value=0.0)
        page = leaf_page(lower, zero)
        assert ops.try_key_merge(page, zero) is None

    def test_key_merge_absorbs_zero_upper_neighbour(self):
        target = rec(1, 40, start=10, value=5.0)
        upper = rec(40, 100, start=10, value=0.0)
        page = leaf_page(target, upper)
        survivor = ops.try_key_merge(page, target)
        assert survivor is target
        assert target.high == 100

    def test_key_merge_skips_index_records(self):
        page = Page(0, capacity=8, kind=INDEX_KIND)
        record = irec(40, 100, start=10, value=0.0)
        page.add(irec(1, 40, start=10, value=5.0))
        page.add(record)
        assert ops.try_key_merge(page, record) is None


class TestHelpers:
    def test_clone_restarts_interval(self):
        original = rec(1, 100, start=1, end=NOW, value=5.0)
        copy = ops.clone(original, start=10)
        assert (copy.start, copy.end, copy.value) == (10, NOW, 5.0)
        assert copy is not original

    def test_prune_born_at(self):
        page = leaf_page(rec(1, 50, start=1), rec(50, 100, start=10))
        ops.prune_born_at(page, 10)
        assert len(page.records) == 1
        assert page.records[0].start == 1

    def test_check_tiling_detects_gap(self):
        page = leaf_page(rec(1, 40), rec(50, 100))
        page.meta.update(low=1, high=100)
        assert "gap" in ops.check_tiling_at(page, 5)

    def test_check_tiling_detects_boundary_mismatch(self):
        page = leaf_page(rec(1, 100))
        page.meta.update(low=1, high=200)
        assert ops.check_tiling_at(page, 5) is not None

    def test_check_tiling_accepts_exact_cover(self):
        page = leaf_page(rec(1, 40), rec(40, 100))
        page.meta.update(low=1, high=100)
        assert ops.check_tiling_at(page, 5) is None

    def test_alive_records_sorted(self):
        page = leaf_page(rec(50, 100), rec(1, 50),
                         rec(1, 100, start=1, end=2))
        alive = ops.alive_records(page)
        assert [(r.low, r.high) for r in alive] == [(1, 50), (50, 100)]
