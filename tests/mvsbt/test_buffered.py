"""Metamorphic tests for the MVSBT buffer-tree ingest path.

The contract under test: a buffered-ingest window (``begin_buffered`` /
``end_buffered``) is *observationally identical* to direct descent — the
same answers at every point inside the window (queries cross the drain
barrier), the same answers after it, and byte-identical on-disk page
images once the window closes.  Buffering may only change CPU cost and
write scheduling; logical I/O is deliberately lower (sealed-page
routing), so I/O counters are exactly what these tests do *not* compare.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.storage.serialization import encode_page_image

from tests.oracles import DominanceSumOracle

KEY_SPACE = (1, 200)
PAGE_BYTES = 4096


def build(capacity=6, pool_pages=4096, disk=None):
    pool = BufferPool(disk or InMemoryDiskManager(), capacity=pool_pages)
    return MVSBT(pool, MVSBTConfig(capacity=capacity, strong_factor=0.8),
                 key_space=KEY_SPACE)


def random_stream(seed, count=600):
    """Chronological (key, t, delta) updates over the shared key space."""
    rng = random.Random(seed)
    t, out = 1, []
    for _ in range(count):
        if rng.random() < 0.4:
            t += 1
        out.append((rng.randrange(*KEY_SPACE), t,
                    float(rng.choice([-3, -2, -1, 1, 2, 3]))))
    return out


def page_images(tree):
    """{page_id: on-disk bytes} — the strongest observable equality."""
    tree.pool.flush_all()
    return {pid: encode_page_image(tree.pool.fetch(pid), PAGE_BYTES)
            for pid in sorted(tree.page_ids())}


def probe_points(stream, rng_seed=4242, extra=24):
    """Probe grid: every touched (key, t) corner plus random points."""
    rng = random.Random(rng_seed)
    horizon = max(t for _, t, _ in stream) + 2
    points = {(key, t) for key, t, _ in stream[:: max(1, len(stream) // 40)]}
    points.update((rng.randrange(*KEY_SPACE), rng.randrange(1, horizon))
                  for _ in range(extra))
    return sorted(points)


class TestBufferedTwins:
    """Buffered vs direct twins fed the identical stream."""

    @pytest.mark.parametrize("capacity", [4, 6, 24])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_page_images_byte_identical(self, seed, capacity):
        stream = random_stream(seed)
        direct, buffered = build(capacity), build(capacity)
        for key, t, value in stream:
            direct.insert(key, t, value)
        buffered.begin_buffered()
        for key, t, value in stream:
            buffered.insert(key, t, value)
        buffered.end_buffered()
        assert page_images(buffered) == page_images(direct)
        buffered.check_invariants()
        direct.check_invariants()

    def test_mid_window_queries_match_direct(self):
        stream = random_stream(11)
        direct, buffered = build(), build()
        buffered.begin_buffered()
        probes = probe_points(stream)
        step = max(1, len(stream) // 8)
        for lo in range(0, len(stream), step):
            for key, t, value in stream[lo:lo + step]:
                direct.insert(key, t, value)
                buffered.insert(key, t, value)
            # The buffered tree answers through the drain barrier while
            # its window is still open; answers must already agree.
            for key, t in probes:
                assert buffered.query(key, t) == direct.query(key, t)
        buffered.end_buffered()
        for key, t in probes:
            assert buffered.query(key, t) == direct.query(key, t)

    def test_counters_and_structure_match(self):
        stream = random_stream(3, count=900)
        direct, buffered = build(capacity=5), build(capacity=5)
        for key, t, value in stream:
            direct.insert(key, t, value)
        buffered.begin_buffered()
        for key, t, value in stream:
            buffered.insert(key, t, value)
        buffered.end_buffered()
        assert buffered.counters == direct.counters
        assert buffered.page_ids() == direct.page_ids()


class TestWindowLifecycle:
    def test_windows_do_not_nest(self):
        tree = build()
        tree.begin_buffered()
        with pytest.raises(ValueError):
            tree.begin_buffered()
        tree.end_buffered()

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            build().end_buffered()

    def test_window_reopens_after_close(self):
        tree = build()
        stream = random_stream(5, count=200)
        half = len(stream) // 2
        tree.begin_buffered()
        for key, t, value in stream[:half]:
            tree.insert(key, t, value)
        tree.end_buffered()
        tree.begin_buffered()
        for key, t, value in stream[half:]:
            tree.insert(key, t, value)
        tree.end_buffered()
        direct = build()
        for key, t, value in stream:
            direct.insert(key, t, value)
        assert page_images(tree) == page_images(direct)


class TestDurability:
    def test_save_mid_window_then_load(self, tmp_path):
        """A checkpoint taken inside an open window captures every update
        absorbed so far — pending leaf buffers land in the page images."""
        stream = random_stream(13, count=400)
        half = len(stream) // 2
        tree = build()
        tree.begin_buffered()
        for key, t, value in stream[:half]:
            tree.insert(key, t, value)
        tree.save(str(tmp_path / "ck"))

        reopened = MVSBT.load(str(tmp_path / "ck"))
        direct_prefix = build()
        for key, t, value in stream[:half]:
            direct_prefix.insert(key, t, value)
        for key, t in probe_points(stream[:half]):
            assert reopened.query(key, t) == direct_prefix.query(key, t)
        reopened.check_invariants()

        # The original window is still open and keeps absorbing.
        for key, t, value in stream[half:]:
            tree.insert(key, t, value)
        tree.end_buffered()
        direct = build()
        for key, t, value in stream:
            direct.insert(key, t, value)
        assert page_images(tree) == page_images(direct)

    def test_file_disk_columnar_round_trip(self, tmp_path):
        """Historical pages stay columnar after the window; their disk
        images must decode back into plain record pages on a cold read."""
        stream = random_stream(17, count=500)
        disk = FileDiskManager(str(tmp_path / "pages.db"),
                               page_bytes=512, default_capacity=6)
        buffered = build(capacity=6, pool_pages=16, disk=disk)
        buffered.begin_buffered()
        for key, t, value in stream:
            buffered.insert(key, t, value)
        buffered.end_buffered()
        buffered.pool.flush_all()
        buffered.pool.clear()  # every later read decodes from the file

        direct = build(capacity=6)
        for key, t, value in stream:
            direct.insert(key, t, value)
        for key, t in probe_points(stream):
            assert buffered.query(key, t) == direct.query(key, t)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
    ),
    min_size=1, max_size=120,
), st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
    st.integers(min_value=1, max_value=600))
def test_buffered_matches_oracle(stream, key, t):
    """Property: buffered ingest agrees with the dominance-sum oracle at
    arbitrary probe points, both mid-window and after the close."""
    pool = BufferPool(InMemoryDiskManager(), capacity=2048)
    tree = MVSBT(pool, MVSBTConfig(capacity=5, strong_factor=0.8),
                 key_space=(1, 120))
    oracle = DominanceSumOracle()
    tree.begin_buffered()
    now = 1
    for k, dt, value in stream:
        now += dt
        tree.insert(k, now, float(value))
        oracle.insert(k, now, float(value))
    key = min(key, 119)
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))
    tree.end_buffered()
    assert tree.query(key, t) == pytest.approx(oracle.query(key, t))
    tree.check_invariants()
