"""Step-by-step reproduction of the paper's Figure 3 example (section 4.3).

Setup: ``b = 6``, ``f = 0.5`` (so a freshly split page holds at most 3
records).  The six insertions of the running example are replayed and the
resulting structure is asserted at every step — page contents, the time
split + key split with the 4.2.1 prefix folding ("note how the value of the
first record in the page with higher range is modified"), and the time merge
triggered by the final insertion.
"""

import pytest

from repro.core.model import NOW
from repro.mvsbt.records import INDEX_KIND, LEAF_KIND
from repro.mvsbt.tree import MVSBT, MVSBTConfig

MAXKEY = 10**6


@pytest.fixture()
def tree(pool):
    return MVSBT(pool, MVSBTConfig(capacity=6, strong_factor=0.5),
                 key_space=(1, MAXKEY))


def rects(page):
    """Sorted (low, high, start, end, value) tuples of a page's records."""
    return sorted(
        (r.low, r.high, r.start, r.end, r.value) for r in page.records
    )


def test_figure3a_initial_root(tree):
    root = tree.pool.fetch(tree.root_id)
    assert root.kind == LEAF_KIND
    assert rects(root) == [(1, MAXKEY, 1, NOW, 0.0)]


def test_figure3b_first_insertion_splits_the_record(tree):
    tree.insert(20, 2, 1.0)
    root = tree.pool.fetch(tree.root_id)
    assert rects(root) == [
        (1, 20, 2, NOW, 0.0),        # lower piece keeps the old value
        (1, MAXKEY, 1, 2, 0.0),      # historical piece closed at t=2
        (20, MAXKEY, 2, NOW, 1.0),   # upper piece carries the delta
    ]


def test_figure3c_only_partly_covered_record_splits(tree):
    tree.insert(20, 2, 1.0)
    tree.insert(10, 3, 1.0)
    root = tree.pool.fetch(tree.root_id)
    # The fully-covered record [20, max) is *not* physically split
    # (aggregation-in-a-page); only the partly-covered [1, 20) splits.
    assert rects(root) == [
        (1, 10, 3, NOW, 0.0),
        (1, 20, 2, 3, 0.0),
        (1, MAXKEY, 1, 2, 0.0),
        (10, 20, 3, NOW, 1.0),
        (20, MAXKEY, 2, NOW, 1.0),
    ]
    assert tree.query(25, 3) == 2.0   # deltas 1 + 1 accumulate


def test_figure3def_overflow_time_split_key_split(tree):
    tree.insert(20, 2, 1.0)
    tree.insert(10, 3, 1.0)
    tree.insert(80, 4, 1.0)   # 7 records > b: overflow
    assert tree.counters.time_splits == 1
    assert tree.counters.key_splits == 1

    root = tree.pool.fetch(tree.root_id)
    assert root.kind == INDEX_KIND
    routers = sorted((r.low, r.high, r.value) for r in root.records)
    assert routers == [(1, 20, 0.0), (20, MAXKEY, 0.0)]

    lower_id = next(r.child for r in root.records if r.low == 1)
    upper_id = next(r.child for r in root.records if r.low == 20)
    lower, upper = tree.pool.fetch(lower_id), tree.pool.fetch(upper_id)
    assert rects(lower) == [(1, 10, 4, NOW, 0.0), (10, 20, 4, NOW, 1.0)]
    # Figure 3e: the first record of the higher page absorbed the prefix
    # sum (0 + 1) of the lower page.
    assert rects(upper) == [(20, 80, 4, NOW, 2.0), (80, MAXKEY, 4, NOW, 1.0)]

    # Semantics across the whole history:
    assert tree.query(25, 2) == 1.0
    assert tree.query(15, 3) == 1.0
    assert tree.query(25, 3) == 2.0
    assert tree.query(85, 4) == 3.0
    assert tree.query(25, 4) == 2.0
    assert tree.query(5, 4) == 0.0


def test_figure3g_recursive_insertion(tree):
    tree.insert(20, 2, 1.0)
    tree.insert(10, 3, 1.0)
    tree.insert(80, 4, 1.0)
    tree.insert(10, 5, -1.0)
    root = tree.pool.fetch(tree.root_id)

    # In the root, the first fully-covered record ([20, max)) was split
    # vertically at t=5 with the -1 delta.
    routers = sorted((r.low, r.high, r.start, r.end, r.value)
                     for r in root.records)
    assert (20, MAXKEY, 4, 5, 0.0) in routers
    assert (20, MAXKEY, 5, NOW, -1.0) in routers

    # The insertion recursed into the partly-covered child A, where the
    # first fully-covered record [10, 20) split at t=5 (delta 1 + -1 = 0).
    lower_id = next(r.child for r in root.records if r.low == 1 and r.alive)
    lower = tree.pool.fetch(lower_id)
    assert (10, 20, 4, 5, 1.0) in rects(lower)
    assert (10, 20, 5, NOW, 0.0) in rects(lower)

    assert tree.query(85, 4) == 3.0   # history intact
    assert tree.query(85, 5) == 2.0   # -1 applied from t=5
    assert tree.query(15, 5) == 0.0


def test_final_insertion_triggers_time_merge(tree):
    """The paper: inserting (5,5):1 after (10,5):-1 leads to a time merge
    in the root (the -1 delta at [20, max) is cancelled in place, restoring
    the record killed at t=5)."""
    tree.insert(20, 2, 1.0)
    tree.insert(10, 3, 1.0)
    tree.insert(80, 4, 1.0)
    tree.insert(10, 5, -1.0)
    tree.insert(5, 5, 1.0)
    assert tree.counters.time_merges >= 1

    root = tree.pool.fetch(tree.root_id)
    routers = sorted((r.low, r.high, r.start, r.end, r.value)
                     for r in root.records if r.alive)
    # The [20, max) router is whole again: one record from t=4.
    assert (20, MAXKEY, 4, NOW, 0.0) in routers

    assert tree.query(85, 5) == 3.0   # -1 (key 10) + 1 (key 5) cancel
    assert tree.query(15, 5) == 1.0   # keys in [10, 20): -1 + 1 cancel
    assert tree.query(7, 5) == 1.0
    assert tree.query(3, 5) == 0.0
    assert tree.query(85, 4) == 3.0
    tree.check_invariants()
