"""Shared fixtures: a fresh buffer pool per test."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager


@pytest.fixture()
def pool():
    """Generously sized buffer pool over an in-memory disk."""
    return BufferPool(InMemoryDiskManager(), capacity=256)


@pytest.fixture()
def tiny_pool():
    """Deliberately small pool (4 frames) to exercise eviction paths."""
    return BufferPool(InMemoryDiskManager(), capacity=4)
