"""Hypothesis property tests for the TemporalWarehouse facade.

Whatever plan the planner picks, every aggregate must equal the oracle,
and MIN/MAX (retrieval path) must match brute force.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 120)


@st.composite
def op_streams(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert", "delete"]),
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-8, max_value=8),
        ),
        min_size=1, max_size=80,
    ))


@st.composite
def rectangles(draw):
    k1 = draw(st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1))
    k2 = draw(st.integers(min_value=k1 + 1, max_value=KEY_SPACE[1]))
    t1 = draw(st.integers(min_value=1, max_value=300))
    t2 = draw(st.integers(min_value=t1 + 1, max_value=400))
    return (k1, k2, t1, t2)


def replay(stream):
    warehouse = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=5)
    oracle = TupleStoreOracle()
    alive = set()
    t = 1
    for op, key, dt, value in stream:
        t += dt
        if op == "insert" and key not in alive:
            warehouse.insert(key, float(value), t)
            oracle.insert(key, float(value), t)
            alive.add(key)
        elif op == "delete" and key in alive:
            warehouse.delete(key, t)
            oracle.delete(key, t)
            alive.discard(key)
    return warehouse, oracle


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles())
def test_sum_and_count_match_oracle_under_any_plan(stream, rect):
    warehouse, oracle = replay(stream)
    k1, k2, t1, t2 = rect
    r, iv = KeyRange(k1, k2), Interval(t1, t2)
    assert warehouse.sum(r, iv) == pytest.approx(
        oracle.rta_sum(k1, k2, t1, t2))
    assert warehouse.count(r, iv) == oracle.rta_count(k1, k2, t1, t2)


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles())
def test_min_max_match_brute_force(stream, rect):
    warehouse, oracle = replay(stream)
    k1, k2, t1, t2 = rect
    rows = oracle.rectangle_tuples(k1, k2, t1, t2)
    r, iv = KeyRange(k1, k2), Interval(t1, t2)
    if rows:
        assert warehouse.min(r, iv) == min(v for *_x, v in rows)
        assert warehouse.max(r, iv) == max(v for *_x, v in rows)
    else:
        assert warehouse.min(r, iv) is None
        assert warehouse.max(r, iv) is None


@settings(max_examples=30, deadline=None)
@given(op_streams(), st.integers(min_value=1, max_value=400))
def test_snapshot_matches_oracle(stream, t):
    warehouse, oracle = replay(stream)
    assert warehouse.snapshot(KeyRange(*KEY_SPACE), t) \
        == sorted(oracle.snapshot(t))


@settings(max_examples=25, deadline=None)
@given(op_streams(), rectangles())
def test_explain_cost_estimates_are_consistent(stream, rect):
    """The planner picks whichever plan it estimated cheaper."""
    warehouse, _ = replay(stream)
    k1, k2, t1, t2 = rect
    plan = warehouse.explain(KeyRange(k1, k2), Interval(t1, t2))
    if plan.plan == "mvsbt":
        assert plan.mvsbt_cost_reads <= plan.mvbt_cost_reads
    else:
        assert plan.mvbt_cost_reads < plan.mvsbt_cost_reads
