"""Tests for the timeline and key-histogram rollup APIs."""

import pytest

from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.errors import QueryError
from repro.mvsbt.tree import MVSBTConfig

KEY_SPACE = (1, 1001)


@pytest.fixture()
def index(pool):
    idx = RTAIndex(pool, MVSBTConfig(capacity=8), key_space=KEY_SPACE)
    idx.insert(100, 10.0, t=10)    # alive [10, 35)
    idx.delete(100, t=35)
    idx.insert(500, 20.0, t=40)    # alive [40, now)
    return idx


class TestTimeline:
    def test_bucket_edges_partition_interval(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(1, 101), 4)
        assert len(series) == 4
        assert series[0][0].start == 1
        assert series[-1][0].end == 101
        for (left, _), (right, _) in zip(series, series[1:]):
            assert left.end == right.start

    def test_uneven_spans_distributed(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(1, 11), 3)
        lengths = [bucket.length for bucket, _ in series]
        assert sum(lengths) == 10
        assert max(lengths) - min(lengths) <= 1

    def test_values_match_direct_queries(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(1, 101), 5,
                                SUM)
        for bucket, value in series:
            assert value == index.sum(KeyRange(1, 1000), bucket)

    def test_sum_series_shape(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(1, 81), 4, SUM)
        # Buckets: [1,21) [21,41) [41,61) [61,81).  Tuple 100 (value 10)
        # lives over [10,35): buckets 1-2.  Tuple 500 (value 20) lives
        # from t=40: it already intersects bucket 2 ([21,41) covers 40).
        values = [value for _, value in series]
        assert values == [10.0, 30.0, 20.0, 20.0]

    def test_straddling_tuple_counted_in_both_buckets(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(20, 40), 2,
                                COUNT)
        # Tuple 100 is alive during [20,30) and [30,40)... it dies at 35,
        # so it intersects both buckets.
        assert [v for _, v in series] == [1.0, 1.0]

    def test_avg_buckets_can_be_none(self, index):
        series = index.timeline(KeyRange(1, 1000), Interval(1, 9), 2, AVG)
        assert [v for _, v in series] == [None, None]

    def test_validation(self, index):
        with pytest.raises(QueryError):
            index.timeline(KeyRange(1, 1000), Interval(1, 10), 0)
        with pytest.raises(QueryError):
            index.timeline(KeyRange(1, 1000), Interval(1, 3), 5)


class TestKeyHistogram:
    def test_bands_report_independently(self, index):
        bands = [KeyRange(1, 300), KeyRange(300, 700), KeyRange(700, 1000)]
        histogram = index.key_histogram(bands, Interval(1, 101), SUM)
        assert [v for _, v in histogram] == [10.0, 20.0, 0.0]

    def test_histogram_matches_direct_queries(self, index):
        bands = [KeyRange(1, 500), KeyRange(500, 1001)]
        for band, value in index.key_histogram(bands, Interval(1, 101)):
            assert value == index.sum(band, Interval(1, 101))

    def test_empty_band_list(self, index):
        assert index.key_histogram([], Interval(1, 101)) == []
