"""Single-flight coalescing in the :class:`ResultCache`.

One leader computes per identical ``(key, epoch)`` miss; followers wait
and re-read the cache, consuming only *committed* entries.  Inside a
deferred-store (optimistic MVCC) section coalescing must disable itself:
the leader's store would not land until validation, so a flight could
hand followers an unvalidated value.
"""

import threading

from repro.core.cache import (ResultCache, begin_deferred_stores,
                              discard_deferred_stores)
from repro.core.model import Interval, KeyRange

KEY = ResultCache.key("SUM", KeyRange(1, 10), Interval(1, 5))


class TestSingleFlight:
    def test_leader_then_follower_roles(self):
        cache = ResultCache(thread_safe=True)
        role, flight = cache.begin_flight(KEY, epoch=0)
        assert role == "leader"
        follower_role, follower_flight = cache.begin_flight(KEY, epoch=0)
        assert follower_role == "follower"
        assert follower_flight is flight
        cache.end_flight(KEY, 0, flight)
        # The flight is gone: the next miss leads again.
        role, flight = cache.begin_flight(KEY, epoch=0)
        assert role == "leader"
        cache.end_flight(KEY, 0, flight)

    def test_follower_shares_the_leaders_committed_store(self):
        cache = ResultCache(thread_safe=True)
        computed = threading.Event()
        shared = []

        role, flight = cache.begin_flight(KEY, epoch=3)
        assert role == "leader"

        def follow():
            follower_role, event = cache.begin_flight(KEY, epoch=3)
            assert follower_role == "follower"
            computed.set()
            shared.append(cache.wait_flight(event, KEY, epoch=3))

        thread = threading.Thread(target=follow)
        thread.start()
        computed.wait(2.0)
        cache.store(KEY, 42.0, closed=True, epoch=3)
        cache.end_flight(KEY, 3, flight)
        thread.join(2.0)
        assert shared == [(42.0, None)]
        assert cache.coalesced == 1

    def test_failed_leader_leaves_follower_computing(self):
        cache = ResultCache(thread_safe=True)
        role, flight = cache.begin_flight(KEY, epoch=0)
        follower_role, event = cache.begin_flight(KEY, epoch=0)
        assert (role, follower_role) == ("leader", "follower")
        # Leader exits without storing (its query raised): the follower
        # wakes to a miss and computes itself — no poisoned sharing.
        cache.end_flight(KEY, 0, flight)
        assert cache.wait_flight(event, KEY, epoch=0) is None
        assert cache.coalesced == 0

    def test_distinct_epochs_do_not_coalesce(self):
        cache = ResultCache(thread_safe=True)
        role_a, flight_a = cache.begin_flight(KEY, epoch=1)
        role_b, flight_b = cache.begin_flight(KEY, epoch=2)
        assert (role_a, role_b) == ("leader", "leader")
        assert flight_a is not flight_b
        cache.end_flight(KEY, 1, flight_a)
        cache.end_flight(KEY, 2, flight_b)

    def test_deferred_section_goes_solo(self):
        cache = ResultCache(thread_safe=True)
        begin_deferred_stores()
        try:
            role, flight = cache.begin_flight(KEY, epoch=0)
            assert (role, flight) == ("solo", None)
        finally:
            discard_deferred_stores()
        # An existing flight is still joinable from a deferred section:
        # waiting only ever reads committed entries.
        role, flight = cache.begin_flight(KEY, epoch=0)
        assert role == "leader"
        begin_deferred_stores()
        try:
            follower_role, event = cache.begin_flight(KEY, epoch=0)
            assert follower_role == "follower"
        finally:
            discard_deferred_stores()
        cache.end_flight(KEY, 0, flight)
