"""Unit tests for the RTA index (Theorem 1 reduction over two MVSBTs)."""

import pytest

from repro.core.aggregates import AVG, COUNT, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.errors import DuplicateKeyError, KeyNotFoundError, QueryError
from repro.mvsbt.tree import MVSBTConfig

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 1001)


@pytest.fixture()
def index(pool):
    return RTAIndex(pool, MVSBTConfig(capacity=8), key_space=KEY_SPACE)


class TestBasics:
    def test_empty_index(self, index):
        r, iv = KeyRange(1, 1000), Interval(1, 100)
        assert index.sum(r, iv) == 0.0
        assert index.count(r, iv) == 0.0
        assert index.avg(r, iv) is None

    def test_single_tuple_alive(self, index):
        index.insert(100, 7.0, t=5)
        r, iv = KeyRange(50, 200), Interval(1, 100)
        assert index.sum(r, iv) == 7.0
        assert index.count(r, iv) == 1.0
        assert index.avg(r, iv) == 7.0

    def test_key_range_excludes(self, index):
        index.insert(100, 7.0, t=5)
        assert index.sum(KeyRange(101, 200), Interval(1, 100)) == 0.0
        assert index.sum(KeyRange(1, 100), Interval(1, 100)) == 0.0
        assert index.sum(KeyRange(100, 101), Interval(1, 100)) == 7.0

    def test_time_interval_excludes(self, index):
        index.insert(100, 7.0, t=50)
        assert index.sum(KeyRange(1, 1000), Interval(1, 50)) == 0.0
        assert index.sum(KeyRange(1, 1000), Interval(1, 51)) == 7.0
        assert index.sum(KeyRange(1, 1000), Interval(60, 70)) == 7.0

    def test_deleted_tuple_counts_while_intersecting(self, index):
        index.insert(100, 7.0, t=10)
        index.delete(100, t=20)   # alive over [10, 20)
        r = KeyRange(1, 1000)
        assert index.sum(r, Interval(15, 30)) == 7.0   # overlaps life
        assert index.sum(r, Interval(20, 30)) == 0.0   # starts at death
        assert index.sum(r, Interval(1, 10)) == 0.0    # ends at birth
        assert index.sum(r, Interval(19, 20)) == 7.0   # last alive instant

    def test_avg_of_mixed_values(self, index):
        index.insert(100, 2.0, t=5)
        index.insert(200, 4.0, t=5)
        index.insert(300, 9.0, t=5)
        r, iv = KeyRange(1, 250), Interval(1, 10)
        assert index.count(r, iv) == 2.0
        assert index.avg(r, iv) == 3.0

    def test_aggregate_all(self, index):
        index.insert(100, 2.0, t=5)
        index.insert(200, 4.0, t=5)
        result = index.aggregate_all(KeyRange(1, 1000), Interval(1, 10))
        assert result.sum == 6.0
        assert result.count == 2.0
        assert result.avg == 3.0

    def test_query_by_aggregate_descriptor(self, index):
        index.insert(100, 2.0, t=5)
        r, iv = KeyRange(1, 1000), Interval(1, 10)
        assert index.query(r, iv, SUM) == 2.0
        assert index.query(r, iv, COUNT) == 1.0
        assert index.query(r, iv, AVG) == 2.0

    def test_update_changes_value_from_t(self, index):
        index.insert(100, 2.0, t=5)
        index.update(100, 10.0, t=8)
        r = KeyRange(1, 1000)
        assert index.sum(r, Interval(5, 8)) == 2.0
        assert index.sum(r, Interval(8, 9)) == 10.0
        # A window spanning the update sees both versions of the tuple
        # (they are distinct tuples in the transaction-time model).
        assert index.count(r, Interval(5, 9)) == 2.0


class TestValidation:
    def test_1tnf_enforced(self, index):
        index.insert(100, 1.0, t=5)
        with pytest.raises(DuplicateKeyError):
            index.insert(100, 2.0, t=6)

    def test_delete_unknown_key(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(100, t=5)

    def test_non_additive_aggregate_rejected(self, pool):
        with pytest.raises(ValueError):
            RTAIndex(pool, aggregates=(MIN,))

    def test_empty_aggregates_rejected(self, pool):
        with pytest.raises(ValueError):
            RTAIndex(pool, aggregates=())

    def test_key_outside_space(self, index):
        with pytest.raises(QueryError):
            index.insert(0, 1.0, t=5)
        with pytest.raises(QueryError):
            index.insert(1001, 1.0, t=5)

    def test_query_rectangle_outside_space(self, index):
        with pytest.raises(QueryError):
            index.sum(KeyRange(1, 5000), Interval(1, 10))
        with pytest.raises(QueryError):
            index.sum(KeyRange(1, 10), Interval(0, 10))

    def test_unmaintained_aggregate_rejected(self, pool):
        index = RTAIndex(pool, aggregates=(SUM,))
        with pytest.raises(QueryError):
            index.query(KeyRange(1, 10), Interval(1, 5), COUNT)
        with pytest.raises(QueryError):
            index.aggregate_all(KeyRange(1, 10), Interval(1, 5))

    def test_delete_without_tracking_needs_value(self, pool):
        index = RTAIndex(pool, key_space=KEY_SPACE, track_values=False)
        index.insert(100, 3.0, t=5)
        with pytest.raises(KeyNotFoundError):
            index.delete(100, t=8)
        index.delete(100, t=8, value=3.0)
        assert index.sum(KeyRange(1, 1000), Interval(8, 9)) == 0.0


class TestBoundaries:
    def test_extreme_keys(self, index):
        index.insert(1, 1.0, t=5)       # lowest legal key
        index.insert(1000, 2.0, t=5)    # highest legal key
        full = KeyRange(1, 1001)
        assert index.sum(full, Interval(1, 10)) == 3.0
        assert index.sum(KeyRange(1000, 1001), Interval(1, 10)) == 2.0
        assert index.sum(KeyRange(1, 2), Interval(1, 10)) == 1.0

    def test_single_instant_window(self, index):
        index.insert(100, 5.0, t=10)
        index.delete(100, t=20)
        assert index.sum(KeyRange(1, 1000), Interval(10, 11)) == 5.0
        assert index.sum(KeyRange(1, 1000), Interval(9, 10)) == 0.0

    def test_whole_space_query(self, index):
        for i in range(1, 20):
            index.insert(i * 50, float(i), t=i)
        assert index.sum(KeyRange(1, 1001), Interval(1, 10**7)) \
            == sum(range(1, 20))

    def test_negative_values(self, index):
        index.insert(100, -5.0, t=5)
        index.insert(200, 3.0, t=5)
        assert index.sum(KeyRange(1, 1000), Interval(1, 10)) == -2.0
        assert index.count(KeyRange(1, 1000), Interval(1, 10)) == 2.0


class TestAgainstOracle:
    def _run_stream(self, index, oracle, n_steps=300, seed=23):
        alive = []
        state = seed
        for t in range(1, n_steps):
            state = (state * 48271) % (2**31 - 1)
            if alive and state % 3 == 0:
                key = alive.pop(state % len(alive))
                index.delete(key, t)
                oracle.delete(key, t)
            else:
                key = state % 999 + 1
                if key not in alive:
                    value = float(state % 17 - 8)
                    index.insert(key, value, t)
                    oracle.insert(key, value, t)
                    alive.append(key)

    def test_sum_count_avg_match_oracle(self, pool):
        index = RTAIndex(pool, MVSBTConfig(capacity=8), key_space=KEY_SPACE)
        oracle = TupleStoreOracle()
        self._run_stream(index, oracle)
        index.check_invariants()
        rectangles = [
            (1, 1000, 1, 300), (100, 300, 50, 80), (400, 900, 200, 210),
            (1, 50, 1, 299), (700, 701, 100, 150), (500, 600, 299, 300),
            (1, 1000, 150, 151),
        ]
        for (k1, k2, t1, t2) in rectangles:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert index.sum(r, iv) == pytest.approx(
                oracle.rta_sum(k1, k2, t1, t2)), (k1, k2, t1, t2)
            assert index.count(r, iv) == oracle.rta_count(k1, k2, t1, t2)
            expected_avg = oracle.rta_avg(k1, k2, t1, t2)
            got_avg = index.avg(r, iv)
            if expected_avg is None:
                assert got_avg is None
            else:
                assert got_avg == pytest.approx(expected_avg)

    def test_additivity_over_rectangle_partition(self, pool):
        """Metamorphic: SUM over a rectangle equals the sum over any
        partition of it (both in key and in time)."""
        index = RTAIndex(pool, MVSBTConfig(capacity=8), key_space=KEY_SPACE)
        oracle = TupleStoreOracle()
        self._run_stream(index, oracle, n_steps=150, seed=99)
        whole = index.sum(KeyRange(1, 1001), Interval(40, 120))
        by_key = (index.sum(KeyRange(1, 500), Interval(40, 120))
                  + index.sum(KeyRange(500, 1001), Interval(40, 120)))
        assert whole == pytest.approx(by_key)
        # Time partitions only add up for COUNT/SUM if no tuple straddles
        # the cut; use disjoint single-instant windows over distinct keys
        # instead: verified via the oracle in the test above.

    def test_count_invariant_under_value_scaling(self, pool):
        a = RTAIndex(pool, key_space=KEY_SPACE)
        b = RTAIndex(pool, key_space=KEY_SPACE)
        for i in range(1, 40):
            a.insert(i * 20, float(i), t=i)
            b.insert(i * 20, float(i) * 1000, t=i)
        r, iv = KeyRange(1, 1000), Interval(1, 50)
        assert a.count(r, iv) == b.count(r, iv)

    def test_page_count_positive(self, index):
        for i in range(1, 40):
            index.insert(i * 20, 1.0, t=i)
        assert index.page_count() >= 4  # at least one page per MVSBT
        assert set(index.trees().keys()) == {"SUM", "COUNT"}
