"""``aggregate_batch``: the vectorized read path must be invisible.

The contract under test is byte-identity with the serial ``aggregate``
loop — across all five aggregates, with the result cache on or off,
with duplicate queries in the batch, and with failing queries isolated
to their own slot.
"""

import random
from types import SimpleNamespace

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAResult
from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError

KEYS = 200
KEY_SPACE = (1, KEYS + 1)
AGGREGATES = (SUM, COUNT, AVG, MIN, MAX)


def make_warehouse(**kwargs):
    kwargs.setdefault("key_space", KEY_SPACE)
    kwargs.setdefault("page_capacity", 8)
    return TemporalWarehouse(**kwargs)


def _loaded(**kwargs):
    warehouse = make_warehouse(**kwargs)
    rng = random.Random(11)
    t = 1
    for key in rng.sample(range(1, KEYS + 1), KEYS):
        warehouse.insert(key, float(rng.randint(1, 50)), t)
        if rng.random() < 0.2:
            t += 1
    return warehouse, t


def _mixed_queries(now, count, seed=12):
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        lo = rng.randint(1, KEYS - 10)
        hi = rng.randint(lo + 1, KEYS + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 2)
        agg = AGGREGATES[rng.randrange(len(AGGREGATES))]
        queries.append((KeyRange(lo, hi), Interval(t0, t1), agg))
    return queries


class TestTwinIdentity:
    def test_five_aggregates_match_serial(self):
        warehouse, now = _loaded()
        queries = _mixed_queries(now, 64)
        serial = [repr(warehouse.aggregate(*q)) for q in queries]
        batched = [repr(x) for x in warehouse.aggregate_batch(queries)]
        assert batched == serial

    def test_cache_on_matches_uncached_twin(self):
        cached, now = _loaded()
        cached.enable_cache()
        plain, _ = _loaded()
        queries = _mixed_queries(now, 48)
        # Two rounds: the second exercises the pass-1 cache-hit slots.
        for _ in range(2):
            batched = [repr(x) for x in cached.aggregate_batch(queries)]
            serial = [repr(plain.aggregate(*q)) for q in queries]
            assert batched == serial
        assert cached.result_cache.stats.hits > 0

    def test_duplicate_queries_collapse_to_identical_answers(self):
        warehouse, now = _loaded()
        base = _mixed_queries(now, 8)
        queries = [base[i % len(base)] for i in range(40)]
        serial = [repr(warehouse.aggregate(*q)) for q in queries]
        before = warehouse.batch_stats.as_dict()
        batched = [repr(x) for x in warehouse.aggregate_batch(queries)]
        after = warehouse.batch_stats.as_dict()
        assert batched == serial
        assert after["batches"] == before["batches"] + 1
        assert after["batched_queries"] == before["batched_queries"] + 40

    def test_memo_prefilled_by_batch(self):
        warehouse, now = _loaded()
        warehouse.enable_cache()
        queries = _mixed_queries(now, 32)
        warehouse.result_cache.clear()
        warehouse.aggregate_batch(queries)
        memo_before = warehouse.cache_snapshot().memo.get("hits", 0)
        warehouse.result_cache.clear()  # force replanning, keep the memo
        for q in queries:
            warehouse.aggregate(*q)
        memo_after = warehouse.cache_snapshot().memo.get("hits", 0)
        assert memo_after > memo_before


class TestErrorIsolation:
    def test_failing_query_fails_only_itself(self):
        warehouse, now = _loaded()
        good = _mixed_queries(now, 6)
        bad = (KeyRange(KEYS + 50, KEYS + 90), Interval(1, now + 1), SUM)
        queries = good[:3] + [bad] + good[3:]
        results = warehouse.aggregate_batch(queries)
        assert isinstance(results[3], QueryError)
        survivors = results[:3] + results[4:]
        serial = [repr(warehouse.aggregate(*q)) for q in good]
        assert [repr(x) for x in survivors] == serial

    def test_unknown_aggregate_is_in_band(self):
        warehouse, now = _loaded()
        fake = SimpleNamespace(name="MEDIAN")
        queries = [(KeyRange(*KEY_SPACE), Interval(1, now + 1), SUM),
                   (KeyRange(*KEY_SPACE), Interval(1, now + 1), fake)]
        results = warehouse.aggregate_batch(queries)
        assert repr(results[0]) == repr(
            warehouse.aggregate(KeyRange(*KEY_SPACE), Interval(1, now + 1),
                                SUM))
        assert isinstance(results[1], QueryError)

    def test_duplicate_of_failing_query_shares_the_error(self):
        warehouse, now = _loaded()
        bad = (KeyRange(KEYS + 50, KEYS + 90), Interval(1, now + 1), SUM)
        results = warehouse.aggregate_batch([bad, bad])
        assert isinstance(results[0], QueryError)
        assert isinstance(results[1], QueryError)


class TestAggregateAllSlots:
    def test_none_aggregate_returns_rta_partials(self):
        warehouse, now = _loaded()
        rectangle = (KeyRange(1, KEYS + 1), Interval(1, now + 1))
        expected = warehouse.aggregates.aggregate_all(*rectangle)
        [result] = warehouse.aggregate_batch([rectangle + (None,)])
        assert isinstance(result, RTAResult)
        assert repr(result) == repr(expected)

    def test_none_slots_mix_with_planned_slots(self):
        warehouse, now = _loaded()
        rectangle = (KeyRange(1, KEYS + 1), Interval(1, now + 1))
        results = warehouse.aggregate_batch(
            [rectangle + (SUM,), rectangle + (None,), rectangle + (MAX,)])
        assert repr(results[0]) == repr(warehouse.aggregate(*rectangle, SUM))
        assert repr(results[1]) == repr(
            warehouse.aggregates.aggregate_all(*rectangle))
        assert repr(results[2]) == repr(warehouse.aggregate(*rectangle, MAX))
