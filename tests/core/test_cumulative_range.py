"""Tests for range cumulative aggregates (the section 2.2 generalization).

Cross-checked against the scalar CumulativeSBTree on full-key-space
windows, and against brute force on restricted key ranges.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregates import COUNT
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.errors import QueryError
from repro.mvsbt.tree import MVSBTConfig
from repro.sbtree.cumulative import CumulativeSBTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 201)
TIME_DOMAIN = (1, 501)


def fresh_pool():
    return BufferPool(InMemoryDiskManager(), capacity=2048)


class TestBasics:
    @pytest.fixture()
    def index(self):
        idx = RTAIndex(fresh_pool(), MVSBTConfig(capacity=8),
                       key_space=KEY_SPACE)
        idx.insert(50, 3.0, t=10)
        idx.delete(50, t=20)      # alive over instants 10..19
        idx.insert(100, 5.0, t=30)
        return idx

    def test_window_covers_dead_tuple(self, index):
        r = KeyRange(1, 200)
        assert index.cumulative(r, t=25, w=10) == 3.0   # window 15..25
        assert index.cumulative(r, t=29, w=10) == 3.0   # window 19..29
        assert index.cumulative(r, t=30, w=10) == 5.0   # window 20..30

    def test_window_zero_is_instantaneous(self, index):
        r = KeyRange(1, 200)
        assert index.cumulative(r, t=15, w=0) == 3.0
        assert index.cumulative(r, t=25, w=0) == 0.0

    def test_key_range_restricts(self, index):
        assert index.cumulative(KeyRange(60, 200), t=25, w=10) == 0.0
        assert index.cumulative(KeyRange(1, 60), t=35, w=10) == 0.0
        assert index.cumulative(KeyRange(60, 200), t=35, w=10) == 5.0

    def test_window_clipped_at_origin(self, index):
        assert index.cumulative(KeyRange(1, 200), t=12, w=10**6) == 3.0

    def test_negative_window_rejected(self, index):
        with pytest.raises(QueryError):
            index.cumulative(KeyRange(1, 200), t=10, w=-1)


@st.composite
def tuple_sets(draw):
    """(key, start, duration, value) tuples; starts drawn sorted."""
    raw = draw(st.lists(
        st.tuples(
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=1, max_value=TIME_DOMAIN[1] - 3),
            st.integers(min_value=1, max_value=100),
            st.integers(min_value=-5, max_value=5).filter(lambda v: v != 0),
        ),
        min_size=1, max_size=50,
    ))
    return sorted(raw, key=lambda item: item[1])


def _normalize(tuples):
    """One tuple per key, clipped to the domain; returns the tuple list
    and its time-ordered event stream (deletes before inserts per tick)."""
    loaded = []
    seen = set()
    for key, start, duration, value in tuples:
        if key in seen:
            continue
        end = min(start + duration, TIME_DOMAIN[1] - 1)
        if end <= start:
            continue
        seen.add(key)
        loaded.append((key, start, end, float(value)))
    events = []
    for key, start, end, value in loaded:
        events.append((start, 1, "insert", key, value))
        events.append((end, 0, "delete", key, value))
    events.sort()
    return loaded, events


def _replay(index, events):
    for _t, _order, op, key, value in events:
        if op == "insert":
            index.insert(key, value, _t)
        else:
            index.delete(key, _t)


@settings(max_examples=40, deadline=None)
@given(tuple_sets(),
       st.integers(min_value=1, max_value=TIME_DOMAIN[1] - 2),
       st.integers(min_value=0, max_value=200))
def test_full_range_cumulative_matches_scalar_sbtree(tuples, t, w):
    """On the whole key space the RTA cumulative must equal the paper's
    two-SB-tree scalar machinery."""
    index = RTAIndex(fresh_pool(), MVSBTConfig(capacity=6),
                     key_space=KEY_SPACE)
    scalar = CumulativeSBTree(fresh_pool(), capacity=8, domain=TIME_DOMAIN)
    loaded, events = _normalize(tuples)
    _replay(index, events)
    for key, start, end, value in loaded:
        scalar.insert_interval(start, end, value)
    result = index.cumulative(KeyRange(*KEY_SPACE), t, w)
    assert result == pytest.approx(scalar.cumulative(t, w))


@settings(max_examples=40, deadline=None)
@given(tuple_sets(),
       st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
       st.integers(min_value=1, max_value=150),
       st.integers(min_value=1, max_value=TIME_DOMAIN[1] - 2),
       st.integers(min_value=0, max_value=100))
def test_restricted_range_cumulative_matches_brute_force(tuples, k1, width,
                                                         t, w):
    index = RTAIndex(fresh_pool(), MVSBTConfig(capacity=6),
                     key_space=KEY_SPACE)
    loaded, events = _normalize(tuples)
    _replay(index, events)
    k2 = min(k1 + width, KEY_SPACE[1])
    window_start = max(t - w, 1)
    expected = sum(
        1 for (key, s, e, _v) in loaded
        if k1 <= key < k2 and s <= t and e > window_start
    )
    assert index.cumulative(KeyRange(k1, k2), t, w, COUNT) == expected
