"""Metamorphic tests for buffered (buffer-tree) warehouse ingestion.

Buffered twins vs direct twins fed the identical chronological stream:
every aggregate answer (SUM/COUNT/AVG/MIN/MAX), every AS OF snapshot,
and the closed on-disk page images must be byte-identical.  EXPLAIN
plans are captured from both twins but *not* asserted equal — the
buffered path legitimately changes I/O statistics (sealed-page routing
reads fewer pages), so plan cost estimates and page counts may differ
while answers may not.  A kill mid-flush must recover every applied
event from the WAL.
"""

import pytest

from repro.bench.harness import BenchSettings, build_rta_index
from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.ingest import BatchLoader, batch_replay
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.storage.serialization import encode_page_image
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

SETTINGS = BenchSettings()
AGGREGATES = (SUM, COUNT, AVG, MIN, MAX)
PAGE_BYTES = 4096


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(paper_config("uniform-long", scale=0.001))


@pytest.fixture(scope="module")
def rects(dataset):
    return generate_query_rectangles(QueryRectangleConfig(
        qrs=0.05, count=12, key_space=dataset.config.key_space,
        time_space=dataset.config.time_space, seed=1729,
    ))


def replay_sequential(target, events):
    for event in events:
        if event.op == "insert":
            target.insert(event.key, event.value, event.time)
        else:
            target.delete(event.key, event.time)


def canonical_tree_dump(tree):
    """Tree structure with page IDs relabeled in DFS visit order.

    The RTA index runs four MVSBTs over ONE pool; buffered flush batches
    legitimately reorder page *allocations* across the trees, so raw page
    IDs (and the child pointers embedded in index records) are not
    comparable across twins.  Everything else must be: records decode
    through the page codecs (representation-independent), child pointers
    are canonicalized, and record payloads compare by repr.
    """
    from repro.storage.serialization import decode_page

    tree.pool.flush_all()
    relabel = {}
    pages = []

    def visit(pid):
        if pid in relabel:
            return relabel[pid]
        relabel[pid] = len(relabel)
        mine = relabel[pid]
        kind, records = decode_page(
            encode_page_image(tree.pool.fetch(pid), PAGE_BYTES))
        rows = []
        for record in records:
            if kind == "mvsbt-index":
                rows.append((record.low, record.high, record.start,
                             record.end, record.value, visit(record.child)))
            else:
                rows.append(repr(record))
        pages.append((mine, kind, tuple(rows)))
        return mine

    roots = tuple((entry.start, visit(entry.root_id))
                  for entry in tree.roots.entries())
    return roots, tuple(sorted(pages))


def answers(warehouse, rects):
    """repr() of every aggregate over every rectangle — byte-level
    equality of the observable results."""
    out = []
    for rect in rects:
        for aggregate in AGGREGATES:
            out.append(repr(warehouse.aggregate(rect.range, rect.interval,
                                                aggregate)))
    return out


class TestBufferedWarehouseTwins:
    def test_rta_tree_structures_identical(self, dataset):
        reference = build_rta_index(SETTINGS, dataset,
                                    aggregates=(SUM, COUNT))
        buffered = build_rta_index(SETTINGS, dataset,
                                   aggregates=(SUM, COUNT))
        replay_sequential(reference, dataset.events)
        batch_replay(buffered, dataset.events, mode="buffered")
        for name, (ref_lkst, ref_lklt) in reference.trees().items():
            buf_lkst, buf_lklt = buffered.trees()[name]
            assert canonical_tree_dump(buf_lkst) == canonical_tree_dump(
                ref_lkst)
            assert canonical_tree_dump(buf_lklt) == canonical_tree_dump(
                ref_lklt)
            assert buf_lkst.counters == ref_lkst.counters
            assert buf_lklt.counters == ref_lklt.counters
        assert (buffered.pool.disk.live_page_count
                == reference.pool.disk.live_page_count)

    def test_all_aggregates_identical(self, dataset, rects):
        reference = TemporalWarehouse(key_space=dataset.config.key_space)
        buffered = TemporalWarehouse(key_space=dataset.config.key_space)
        replay_sequential(reference, dataset.events)
        report = buffered.load_events(dataset.events, mode="buffered")
        assert report.buffered_events > 0
        assert answers(buffered, rects) == answers(reference, rects)

    def test_as_of_snapshots_identical(self, dataset):
        reference = TemporalWarehouse(key_space=dataset.config.key_space)
        buffered = TemporalWarehouse(key_space=dataset.config.key_space)
        replay_sequential(reference, dataset.events)
        buffered.load_events(dataset.events, mode="buffered")
        lo, hi = dataset.config.key_space
        whole = KeyRange(lo, hi)
        horizon = reference.now
        for at in range(1, horizon + 1, max(1, horizon // 12)):
            assert buffered.snapshot(whole, at) == reference.snapshot(
                whole, at)

    def test_explain_page_counts_reported_separately(self, dataset, rects):
        """Plans are captured from both twins; answers must match, plan
        statistics are allowed to differ (and are not asserted equal)."""
        reference = TemporalWarehouse(key_space=dataset.config.key_space)
        buffered = TemporalWarehouse(key_space=dataset.config.key_space)
        replay_sequential(reference, dataset.events)
        buffered.load_events(dataset.events, mode="buffered")
        plans = []
        for rect in rects[:4]:
            ref_plan = reference.explain(rect.range, rect.interval, SUM)
            buf_plan = buffered.explain(rect.range, rect.interval, SUM)
            plans.append((ref_plan, buf_plan))
            assert repr(buffered.sum(rect.range, rect.interval)) == repr(
                reference.sum(rect.range, rect.interval))
        assert all(ref is not None and buf is not None
                   for ref, buf in plans)

    def test_mid_window_reads_stay_live(self, dataset, rects):
        """Queries issued while the buffered window is open observe every
        event applied so far — the drain barrier, end to end."""
        reference = TemporalWarehouse(key_space=dataset.config.key_space)
        buffered = TemporalWarehouse(key_space=dataset.config.key_space)
        loader = BatchLoader(buffered, mode="buffered")
        events = dataset.events
        step = max(1, len(events) // 6)
        with loader:
            for lo in range(0, len(events), step):
                chunk = events[lo:lo + step]
                loader.load(chunk)
                replay_sequential(reference, chunk)
                for rect in rects[:4]:
                    assert repr(buffered.sum(rect.range, rect.interval)) \
                        == repr(reference.sum(rect.range, rect.interval))
        assert answers(buffered, rects) == answers(reference, rects)


class TestKillDuringFlush:
    def test_wal_replay_recovers_abandoned_window(self, tmp_path, dataset):
        """Crash mid-window: the buffered window is never closed, dirty
        pages and pending buffers are lost, but the WAL holds one record
        per applied event — replay must reconstruct every answer."""
        directory = str(tmp_path / "wh")
        key_space = dataset.config.key_space
        events = dataset.events[:800]
        durable = TemporalWarehouse.open_durable(
            directory, key_space=key_space, page_capacity=8)
        loader = BatchLoader(durable, mode="buffered")
        loader.__enter__()
        loader.load(events)
        # Simulated kill: abandon the window (no __exit__, no checkpoint,
        # no flush) and drop the log handle the way a dead process would.
        durable.close()

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=key_space, page_capacity=8)
        reference = TemporalWarehouse(key_space=key_space, page_capacity=8)
        replay_sequential(reference, events)
        whole = KeyRange(*key_space)
        horizon = reference.now
        for t1 in range(1, horizon, max(1, horizon // 8)):
            interval = Interval(t1, horizon + 1)
            for aggregate in AGGREGATES:
                assert repr(recovered.aggregate(whole, interval, aggregate)) \
                    == repr(reference.aggregate(whole, interval, aggregate))
        assert recovered.snapshot(whole, horizon) == reference.snapshot(
            whole, horizon)
        recovered.close()

    def test_clean_close_after_buffered_load_checkpoints(self, tmp_path,
                                                         dataset):
        events = dataset.events[:400]
        directory = str(tmp_path / "wh")
        key_space = dataset.config.key_space
        durable = TemporalWarehouse.open_durable(
            directory, key_space=key_space, page_capacity=8)
        durable.load_events(events, mode="buffered")
        durable.checkpoint()
        durable.close()

        recovered = TemporalWarehouse.open_durable(
            directory, key_space=key_space, page_capacity=8)
        reference = TemporalWarehouse(key_space=key_space, page_capacity=8)
        replay_sequential(reference, events)
        whole = KeyRange(*key_space)
        interval = Interval(1, reference.now + 1)
        assert repr(recovered.sum(whole, interval)) == repr(
            reference.sum(whole, interval))
        assert repr(recovered.count(whole, interval)) == repr(
            reference.count(whole, interval))
        recovered.close()


class TestBufferedLoaderProtocol:
    def test_report_counts_buffered_events(self, dataset):
        index = build_rta_index(SETTINGS, dataset, aggregates=(SUM, COUNT))
        report = batch_replay(index, dataset.events, mode="buffered")
        assert report.events == len(dataset.events)
        assert report.buffered_events == len(dataset.events)

    def test_direct_mode_reports_zero_buffered(self, dataset):
        index = build_rta_index(SETTINGS, dataset, aggregates=(SUM, COUNT))
        report = batch_replay(index, dataset.events[:100])
        assert report.buffered_events == 0

    def test_rejects_unknown_mode(self, dataset):
        index = build_rta_index(SETTINGS, dataset, aggregates=(SUM, COUNT))
        with pytest.raises(ValueError, match="mode"):
            BatchLoader(index, mode="turbo")

    def test_windows_closed_after_buffered_load(self, dataset):
        index = build_rta_index(SETTINGS, dataset, aggregates=(SUM, COUNT))
        batch_replay(index, dataset.events[:200], mode="buffered")
        assert not index.pool.in_batch
        for lkst, lklt in index.trees().values():
            assert lkst._buffer is None
            assert lklt._buffer is None
