"""Tests for the TemporalWarehouse facade and its cost-based planner."""

import pytest

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 1001)


@pytest.fixture()
def warehouse():
    return TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)


def loaded_warehouse(steps=200, seed=77):
    warehouse = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
    oracle = TupleStoreOracle()
    alive = []
    state = seed
    for t in range(1, steps):
        state = (state * 48271) % (2**31 - 1)
        if alive and state % 3 == 0:
            key = alive.pop(state % len(alive))
            warehouse.delete(key, t)
            oracle.delete(key, t)
        else:
            key = state % 999 + 1
            if key not in alive:
                warehouse.insert(key, float(state % 23 - 11), t)
                oracle.insert(key, float(state % 23 - 11), t)
                alive.append(key)
    return warehouse, oracle


class TestUpdatesAndRetrieval:
    def test_insert_query_delete(self, warehouse):
        warehouse.insert(100, 5.0, t=10)
        assert warehouse.sum(KeyRange(1, 1000), Interval(10, 20)) == 5.0
        warehouse.delete(100, t=15)
        assert warehouse.sum(KeyRange(1, 1000), Interval(15, 20)) == 0.0

    def test_update(self, warehouse):
        warehouse.insert(100, 5.0, t=10)
        warehouse.update(100, 9.0, t=12)
        assert warehouse.snapshot(KeyRange(1, 1000), 11) == [(100, 5.0)]
        assert warehouse.snapshot(KeyRange(1, 1000), 12) == [(100, 9.0)]

    def test_history(self, warehouse):
        warehouse.insert(100, 1.0, t=5)
        warehouse.update(100, 2.0, t=10)
        warehouse.delete(100, t=20)
        versions = warehouse.history(100)
        assert [(v.interval.start, v.value) for v in versions] \
            == [(5, 1.0), (10, 2.0)]
        assert versions[1].interval.end == 20

    def test_tuples_in_rectangle(self, warehouse):
        warehouse.insert(100, 1.0, t=5)
        warehouse.insert(500, 2.0, t=8)
        warehouse.delete(100, t=10)
        hits = warehouse.tuples_in(KeyRange(1, 1000), Interval(9, 12))
        assert sorted(t.key for t in hits) == [100, 500]
        hits = warehouse.tuples_in(KeyRange(1, 200), Interval(10, 12))
        assert hits == []

    def test_now_advances(self, warehouse):
        warehouse.insert(1, 1.0, t=7)
        assert warehouse.now == 7


class TestAggregates:
    def test_additive_aggregates_match_oracle(self):
        warehouse, oracle = loaded_warehouse()
        for (k1, k2, t1, t2) in [(1, 1000, 1, 250), (200, 400, 50, 100),
                                 (1, 50, 100, 150)]:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert warehouse.sum(r, iv) == pytest.approx(
                oracle.rta_sum(k1, k2, t1, t2))
            assert warehouse.count(r, iv) == oracle.rta_count(k1, k2, t1, t2)
            got = warehouse.avg(r, iv)
            want = oracle.rta_avg(k1, k2, t1, t2)
            assert (got is None and want is None) \
                or got == pytest.approx(want)

    def test_min_max_via_retrieval(self):
        warehouse, oracle = loaded_warehouse()
        k1, k2, t1, t2 = 1, 1000, 50, 150
        rows = oracle.rectangle_tuples(k1, k2, t1, t2)
        r, iv = KeyRange(k1, k2), Interval(t1, t2)
        assert warehouse.min(r, iv) == min(v for *_x, v in rows)
        assert warehouse.max(r, iv) == max(v for *_x, v in rows)

    def test_min_max_empty_rectangle(self, warehouse):
        warehouse.insert(100, 5.0, t=10)
        assert warehouse.min(KeyRange(500, 600), Interval(1, 5)) is None
        assert warehouse.max(KeyRange(500, 600), Interval(1, 5)) is None

    def test_aggregate_all(self, warehouse):
        warehouse.insert(100, 2.0, t=5)
        warehouse.insert(200, 6.0, t=5)
        result = warehouse.aggregate_all(KeyRange(1, 1000), Interval(1, 10))
        assert (result.sum, result.count, result.avg) == (8.0, 2.0, 4.0)


class TestPlanner:
    def test_min_max_always_scan(self, warehouse):
        warehouse.insert(100, 5.0, t=10)
        plan = warehouse.explain(KeyRange(1, 1000), Interval(1, 20), MIN)
        assert plan.plan == "mvbt-scan"
        assert "open problem" in plan.reason
        plan = warehouse.explain(KeyRange(1, 1000), Interval(1, 20), MAX)
        assert plan.plan == "mvbt-scan"

    def test_large_rectangle_takes_mvsbt_plan(self):
        warehouse, _ = loaded_warehouse(steps=250)
        plan = warehouse.explain(KeyRange(1, 1000), Interval(1, 300), SUM)
        assert plan.plan == "mvsbt"
        assert plan.mvsbt_cost_reads <= plan.mvbt_cost_reads

    def test_empty_rectangle_takes_scan_plan(self):
        warehouse, _ = loaded_warehouse(steps=250)
        # Nothing qualifies: retrieval is essentially free.
        plan = warehouse.explain(KeyRange(1, 2), Interval(999, 1000), SUM)
        assert plan.plan == "mvbt-scan"
        assert plan.estimated_tuples == 0

    def test_plans_agree_on_answers(self):
        """Whatever the planner picks must equal the MVSBT answer."""
        warehouse, oracle = loaded_warehouse()
        rect_sets = [(1, 1000, 1, 250),     # mvsbt plan
                     (1, 3, 240, 245)]      # scan plan (selective)
        for (k1, k2, t1, t2) in rect_sets:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert warehouse.sum(r, iv) == pytest.approx(
                oracle.rta_sum(k1, k2, t1, t2))

    def test_explain_is_printable(self):
        warehouse, _ = loaded_warehouse(steps=50)
        text = str(warehouse.explain(KeyRange(1, 1000), Interval(1, 50)))
        assert "reads" in text

    def test_unknown_aggregate_rejected(self, warehouse):
        from repro.core.aggregates import Aggregate
        bogus = Aggregate(name="MEDIAN", identity=0, combine=max,
                          additive=False, lift=lambda v: v)
        # MEDIAN is in neither the additive nor the order set.
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            warehouse.explain(KeyRange(1, 10), Interval(1, 5), bogus)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        warehouse, oracle = loaded_warehouse(steps=120)
        warehouse.check_invariants()
        warehouse.save(str(tmp_path / "wh"))
        reopened = TemporalWarehouse.load(str(tmp_path / "wh"))
        r, iv = KeyRange(1, 1000), Interval(1, 200)
        assert reopened.sum(r, iv) == warehouse.sum(r, iv)
        assert reopened.count(r, iv) == warehouse.count(r, iv)
        assert reopened.snapshot(r, 100) == warehouse.snapshot(r, 100)
        # And it keeps accepting the stream.
        reopened.insert(1000, 42.0, t=500)
        assert reopened.sum(KeyRange(1000, 1001), Interval(500, 501)) == 42.0

    def test_page_count_counts_both_structures(self):
        warehouse, _ = loaded_warehouse(steps=100)
        assert warehouse.page_count() \
            == (warehouse.tuples.pool.disk.live_page_count
                + warehouse.aggregates.pool.disk.live_page_count)
