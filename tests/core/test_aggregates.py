"""Unit tests for aggregate descriptors."""

from repro.core.aggregates import (
    ADDITIVE_AGGREGATES,
    AVG,
    COUNT,
    MAX,
    MIN,
    ORDER_AGGREGATES,
    SUM,
)


def test_sum_lifts_identity():
    assert SUM.lift(7.5) == 7.5
    assert SUM.combine(3, 4) == 7
    assert SUM.identity == 0
    assert SUM.additive


def test_count_lifts_to_one():
    assert COUNT.lift(999.0) == 1
    assert COUNT.combine(2, 3) == 5
    assert COUNT.additive


def test_min_max_are_order_aggregates():
    assert MIN.combine(3, 7) == 3
    assert MAX.combine(3, 7) == 7
    assert MIN.identity == float("inf")
    assert MAX.identity == float("-inf")
    assert not MIN.additive
    assert not MAX.additive


def test_avg_is_declared_additive_derivation():
    assert AVG.additive  # maintained via SUM and COUNT


def test_registries_partition():
    assert SUM in ADDITIVE_AGGREGATES
    assert COUNT in ADDITIVE_AGGREGATES
    assert MIN in ORDER_AGGREGATES
    assert MAX in ORDER_AGGREGATES


def test_str_is_name():
    assert str(SUM) == "SUM"
    assert str(AVG) == "AVG"
