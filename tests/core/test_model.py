"""Unit tests for the temporal data model types."""

import pytest

from repro.core.model import (
    Interval,
    KeyRange,
    NOW,
    Rectangle,
    TemporalTuple,
    validate_query_rectangle,
)
from repro.errors import QueryError


class TestInterval:
    def test_contains_half_open(self):
        iv = Interval(5, 10)
        assert iv.contains(5)
        assert iv.contains(9)
        assert not iv.contains(10)
        assert not iv.contains(4)

    def test_empty_interval_rejected(self):
        with pytest.raises(QueryError):
            Interval(5, 5)
        with pytest.raises(QueryError):
            Interval(6, 5)

    def test_instant_interval(self):
        assert Interval(5, 6).is_instant
        assert not Interval(5, 7).is_instant

    def test_alive_sentinel(self):
        assert Interval(5, NOW).alive
        assert not Interval(5, 100).alive

    def test_intersects_and_intersection(self):
        a, b = Interval(1, 10), Interval(5, 20)
        assert a.intersects(b) and b.intersects(a)
        assert a.intersection(b) == Interval(5, 10)
        c = Interval(10, 12)
        assert not a.intersects(c)         # half-open: [1,10) + [10,12)
        assert a.intersection(c) is None

    def test_contains_interval(self):
        assert Interval(1, 10).contains_interval(Interval(3, 7))
        assert Interval(1, 10).contains_interval(Interval(1, 10))
        assert not Interval(1, 10).contains_interval(Interval(3, 11))

    def test_length_and_instants(self):
        iv = Interval(3, 6)
        assert iv.length == 3
        assert list(iv.instants()) == [3, 4, 5]

    def test_str_shows_now(self):
        assert str(Interval(3, NOW)) == "[3,now)"


class TestKeyRange:
    def test_single_key_constructor(self):
        r = KeyRange.single(42)
        assert r.contains(42)
        assert not r.contains(43)
        assert r.is_single_key

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            KeyRange(5, 5)

    def test_lower_than_order(self):
        assert KeyRange(1, 5).is_lower_than(KeyRange(5, 9))
        assert not KeyRange(1, 6).is_lower_than(KeyRange(5, 9))

    def test_intersection(self):
        assert KeyRange(1, 10).intersection(KeyRange(5, 20)) == KeyRange(5, 10)
        assert KeyRange(1, 5).intersection(KeyRange(5, 9)) is None

    def test_contains_range(self):
        assert KeyRange(1, 10).contains_range(KeyRange(2, 9))
        assert not KeyRange(1, 10).contains_range(KeyRange(2, 11))


class TestRectangleAndTuple:
    def test_rectangle_point_membership(self):
        rect = Rectangle(KeyRange(10, 20), Interval(5, 15))
        assert rect.contains_point(10, 5)
        assert not rect.contains_point(20, 5)
        assert not rect.contains_point(10, 15)
        assert rect.area == 100

    def test_rectangle_intersection(self):
        a = Rectangle(KeyRange(1, 10), Interval(1, 10))
        b = Rectangle(KeyRange(5, 20), Interval(5, 20))
        c = Rectangle(KeyRange(10, 20), Interval(1, 10))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_tuple_in_rectangle_uses_interval_intersection(self):
        rect = Rectangle(KeyRange(10, 20), Interval(100, 200))
        inside = TemporalTuple(15, Interval(50, 150), 1.0)
        before = TemporalTuple(15, Interval(50, 100), 1.0)
        wrong_key = TemporalTuple(20, Interval(150, 160), 1.0)
        assert inside.in_rectangle(rect)
        assert not before.in_rectangle(rect)    # ends as window opens
        assert not wrong_key.in_rectangle(rect)

    def test_alive_tuple(self):
        assert TemporalTuple(1, Interval(1, NOW), 0.0).alive
        assert not TemporalTuple(1, Interval(1, 5), 0.0).alive


class TestValidateQueryRectangle:
    def test_accepts_in_space(self):
        validate_query_rectangle(KeyRange(1, 100), Interval(1, 50),
                                 max_key=1000, max_time=1000)

    def test_rejects_out_of_key_space(self):
        with pytest.raises(QueryError):
            validate_query_rectangle(KeyRange(1, 2000), Interval(1, 50),
                                     max_key=1000, max_time=1000)

    def test_rejects_out_of_time_space(self):
        with pytest.raises(QueryError):
            validate_query_rectangle(KeyRange(1, 100), Interval(1, 2000),
                                     max_key=1000, max_time=1000)

    def test_accepts_now_ended_interval(self):
        validate_query_rectangle(KeyRange(1, 100), Interval(1, NOW),
                                 max_key=1000, max_time=1000)
