"""Metamorphic tests for batched ingestion (``repro.core.ingest``).

The contract under test: replaying a chronological update stream through
:class:`~repro.core.ingest.BatchLoader` is *observationally identical* to
replaying it one event at a time — bit-identical page contents, identical
tree counters, identical query answers, and identical per-query I/O
counters.  Batching may only change CPU cost and write scheduling.
"""

import pytest

from repro.bench.harness import (
    BenchSettings,
    build_heap_baseline,
    build_mvbt_baseline,
    build_rta_index,
)
from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.ingest import BatchLoader, batch_replay
from repro.core.warehouse import TemporalWarehouse
from repro.workloads.datasets import paper_config
from repro.workloads.generator import UpdateEvent, generate_dataset
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

SETTINGS = BenchSettings()

BUILDERS = {
    "two-mvsbt": lambda dataset: build_rta_index(SETTINGS, dataset,
                                                 aggregates=(SUM, COUNT)),
    "mvbt": lambda dataset: build_mvbt_baseline(SETTINGS, dataset),
    "heap": lambda dataset: build_heap_baseline(SETTINGS, dataset),
}


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(paper_config("uniform-long", scale=0.001))


@pytest.fixture(scope="module")
def rects(dataset):
    return generate_query_rectangles(QueryRectangleConfig(
        qrs=0.05, count=12, key_space=dataset.config.key_space,
        time_space=dataset.config.time_space, seed=917,
    ))


def replay_sequential(target, events):
    """Event-at-a-time reference replay through the public update API."""
    for event in events:
        if event.op == "insert":
            target.insert(event.key, event.value, event.time)
        else:
            target.delete(event.key, event.time)


def dump_pages(pool):
    """Full on-disk image of a pool: {page_id: (kind, record reprs)}."""
    pool.flush_all()
    disk = pool.disk
    return {
        page_id: (disk.read(page_id).kind,
                  [repr(record) for record in disk.read(page_id).records])
        for page_id in sorted(disk.live_page_ids())
    }


def per_query_ios(index, rects, aggregate):
    """(answer, logical_reads, physical_reads) per rectangle, cold cache."""
    results = []
    for rect in rects:
        index.pool.clear()
        before = index.pool.stats.snapshot()
        answer = index.query(rect.range, rect.interval, aggregate)
        delta = index.pool.stats.delta(before)
        results.append((answer, delta.logical_reads, delta.reads))
    return results


class TestMetamorphicEquivalence:
    """Batched vs sequential: same bits, same answers, same query I/O."""

    @pytest.mark.parametrize("name", ["two-mvsbt", "mvbt", "heap"])
    def test_page_images_identical(self, dataset, name):
        reference = BUILDERS[name](dataset)
        batched = BUILDERS[name](dataset)
        replay_sequential(reference, dataset.events)
        batch_replay(batched, dataset.events, batch_size=256)
        assert dump_pages(batched.pool) == dump_pages(reference.pool)

    @pytest.mark.parametrize("name", ["two-mvsbt", "mvbt", "heap"])
    @pytest.mark.parametrize("aggregate", [SUM, COUNT, AVG],
                             ids=lambda a: a.name)
    def test_query_answers_and_ios_identical(self, dataset, rects, name,
                                             aggregate):
        reference = BUILDERS[name](dataset)
        batched = BUILDERS[name](dataset)
        replay_sequential(reference, dataset.events)
        batch_replay(batched, dataset.events, batch_size=256)
        assert (per_query_ios(batched, rects, aggregate)
                == per_query_ios(reference, rects, aggregate))

    @pytest.mark.parametrize("name", ["two-mvsbt", "mvbt", "heap"])
    def test_aggregate_all_identical(self, dataset, rects, name):
        reference = BUILDERS[name](dataset)
        batched = BUILDERS[name](dataset)
        replay_sequential(reference, dataset.events)
        batch_replay(batched, dataset.events)
        for rect in rects:
            assert (batched.aggregate_all(rect.range, rect.interval)
                    == reference.aggregate_all(rect.range, rect.interval))

    def test_mvsbt_counters_identical(self, dataset):
        reference = BUILDERS["two-mvsbt"](dataset)
        batched = BUILDERS["two-mvsbt"](dataset)
        replay_sequential(reference, dataset.events)
        batch_replay(batched, dataset.events, batch_size=128)
        for agg, (ref_lkst, ref_lklt) in reference.trees().items():
            bat_lkst, bat_lklt = batched.trees()[agg]
            assert bat_lkst.counters == ref_lkst.counters
            assert bat_lklt.counters == ref_lklt.counters

    def test_batch_size_one_is_still_identical(self, dataset):
        events = dataset.events[:400]
        reference = BUILDERS["two-mvsbt"](dataset)
        batched = BUILDERS["two-mvsbt"](dataset)
        replay_sequential(reference, events)
        batch_replay(batched, events, batch_size=1)
        assert dump_pages(batched.pool) == dump_pages(reference.pool)

    def test_warehouse_target(self, dataset, rects):
        reference = TemporalWarehouse(key_space=dataset.config.key_space)
        batched = TemporalWarehouse(key_space=dataset.config.key_space)
        replay_sequential(reference, dataset.events)
        batch_replay(batched, dataset.events, batch_size=512)
        assert (dump_pages(batched.tuples.pool)
                == dump_pages(reference.tuples.pool))
        assert (dump_pages(batched.aggregates.pool)
                == dump_pages(reference.aggregates.pool))
        for rect in rects:
            assert (batched.sum(rect.range, rect.interval)
                    == reference.sum(rect.range, rect.interval))
            assert (batched.avg(rect.range, rect.interval)
                    == reference.avg(rect.range, rect.interval))


class TestBatchLoaderProtocol:
    """Loader bookkeeping, validation, and window lifecycle."""

    def test_report_counts(self, dataset):
        index = BUILDERS["two-mvsbt"](dataset)
        report = batch_replay(index, dataset.events, batch_size=300)
        inserts = sum(1 for e in dataset.events if e.op == "insert")
        assert report.events == len(dataset.events)
        assert report.inserts == inserts
        assert report.deletes == len(dataset.events) - inserts
        assert report.batches == -(-len(dataset.events) // 300)
        assert report.flushed_pages > 0

    def test_windows_closed_after_load(self, dataset):
        index = BUILDERS["two-mvsbt"](dataset)
        batch_replay(index, dataset.events[:100])
        assert not index.pool.in_batch
        for lkst, lklt in index.trees().values():
            assert lkst._batch_depth == 0
            assert lklt._batch_depth == 0

    def test_rejects_out_of_order_events(self, dataset):
        index = BUILDERS["two-mvsbt"](dataset)
        events = [
            UpdateEvent("insert", key=10, value=1.0, time=5),
            UpdateEvent("insert", key=20, value=1.0, time=4),
        ]
        with pytest.raises(ValueError, match="chronological"):
            batch_replay(index, events)

    def test_rejects_unknown_op(self, dataset):
        index = BUILDERS["two-mvsbt"](dataset)
        events = [UpdateEvent("upsert", key=10, value=1.0, time=5)]
        with pytest.raises(ValueError, match="unknown event op"):
            batch_replay(index, events)

    def test_rejects_non_positive_batch_size(self, dataset):
        with pytest.raises(ValueError, match="batch size"):
            BatchLoader(BUILDERS["two-mvsbt"](dataset), batch_size=0)

    def test_coalescing_is_observable(self, dataset):
        # A pool far smaller than the working set must defer dirty
        # evictions inside the window and count them.
        index = build_rta_index(SETTINGS, dataset, buffer_pages=8)
        batch_replay(index, dataset.events)
        assert index.pool.stats.coalesced_writes > 0
