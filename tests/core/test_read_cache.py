"""Version-pinned result cache and MVSBT point memo: correctness under
writes, epoch invalidation, bounded capacity, and clean opt-out."""

import random

import pytest

from repro.core.aggregates import COUNT, SUM
from repro.core.cache import CacheConfig, ResultCache, _VersionedLRU
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse


def make_warehouse(**kwargs):
    kwargs.setdefault("key_space", (1, 201))
    kwargs.setdefault("page_capacity", 8)
    return TemporalWarehouse(**kwargs)


PROBES = [
    (SUM, KeyRange(1, 201)),
    (COUNT, KeyRange(1, 201)),
    (SUM, KeyRange(40, 120)),
    (COUNT, KeyRange(90, 180)),
]


class TestCachedEqualsUncached:
    def test_interleaved_writes_and_repeated_queries(self):
        """The oracle is an uncached twin fed the identical stream; every
        answer must match at every point, hits or not."""
        cached = make_warehouse()
        cached.enable_cache()
        twin = make_warehouse()
        rng = random.Random(5)
        alive = set()
        history = []
        t = 1
        for step in range(250):
            deletable = sorted(alive)
            if deletable and rng.random() < 0.3:
                key = rng.choice(deletable)
                alive.discard(key)
                cached.delete(key, t)
                twin.delete(key, t)
            else:
                key = rng.randint(1, 200)
                if key in alive:
                    continue
                alive.add(key)
                value = float(rng.randint(1, 9))
                cached.insert(key, value, t)
                twin.insert(key, value, t)
            if rng.random() < 0.4:
                t += 1
            if step % 3 == 0:
                agg, kr = PROBES[rng.randrange(len(PROBES))]
                lo = rng.randint(1, t)
                interval = Interval(lo, t + 1)
                for _ in range(2):  # immediate repeat: same-epoch hit
                    assert cached.aggregate(kr, interval, agg) == \
                        twin.aggregate(kr, interval, agg)
                history.append((agg, kr, interval))
            if history and rng.random() < 0.5:
                # Replay an older rectangle: closed by now, or an open
                # entry whose epoch the writes above invalidated.
                agg, kr, interval = rng.choice(history)
                assert cached.aggregate(kr, interval, agg) == \
                    twin.aggregate(kr, interval, agg)
        stats = cached.result_cache.stats
        assert stats.hits > 0            # repetition actually hit
        assert stats.stale_drops > 0     # epoch bumps actually dropped

    def test_open_entry_never_stale_across_epoch_bump(self):
        cached = make_warehouse()
        cached.enable_cache()
        twin = make_warehouse()
        for w in (cached, twin):
            w.insert(1, 10.0, 1)
            w.insert(2, 20.0, 2)
        open_interval = Interval(1, cached.now + 1)  # end > now: open
        kr = KeyRange(1, 201)
        assert cached.sum(kr, open_interval) == twin.sum(kr, open_interval)
        assert cached.sum(kr, open_interval) == twin.sum(kr, open_interval)
        assert cached.result_cache.stats.hits == 1
        drops_before = cached.result_cache.stats.stale_drops
        cached.insert(3, 30.0, 2)  # epoch bump at the open frontier
        twin.insert(3, 30.0, 2)
        assert cached.sum(kr, open_interval) == twin.sum(kr, open_interval)
        assert cached.result_cache.stats.stale_drops == drops_before + 1

    def test_closed_entry_survives_epoch_bumps(self):
        cached = make_warehouse()
        cached.enable_cache()
        cached.insert(1, 10.0, 1)
        cached.insert(2, 20.0, 5)
        closed = Interval(1, 4)  # end <= now: immutable history
        kr = KeyRange(1, 201)
        first = cached.sum(kr, closed)
        cached.insert(3, 30.0, 9)  # bumps the epoch, can't touch [1, 4)
        assert cached.sum(kr, closed) == first
        assert cached.result_cache.stats.hits == 1


class TestCacheMechanics:
    def test_result_cache_capacity_is_bounded(self):
        warehouse = make_warehouse()
        warehouse.enable_cache(CacheConfig(result_entries=4,
                                           memo_entries=0))
        warehouse.insert(1, 1.0, 1)
        warehouse.insert(2, 2.0, 10)
        for end in range(2, 12):  # 10 distinct closed rectangles
            warehouse.sum(KeyRange(1, 201), Interval(1, end))
        assert len(warehouse.result_cache) <= 4
        assert warehouse.result_cache.stats.evictions >= 6

    def test_cache_probe_reports_without_mutating(self):
        warehouse = make_warehouse()
        kr, interval = KeyRange(1, 201), Interval(1, 3)
        assert warehouse.cache_probe(kr, interval) is None  # no cache
        warehouse.enable_cache()
        warehouse.insert(1, 1.0, 1)
        warehouse.insert(2, 2.0, 5)
        assert warehouse.cache_probe(kr, interval) == "miss"
        warehouse.sum(kr, interval)
        hits_before = warehouse.result_cache.stats.hits
        assert warehouse.cache_probe(kr, interval) == "hit"
        assert warehouse.result_cache.stats.hits == hits_before

    def test_zero_capacity_layers_stay_detached(self):
        warehouse = make_warehouse()
        warehouse.enable_cache(CacheConfig(result_entries=0,
                                           memo_entries=0))
        assert warehouse.result_cache is None
        warehouse.insert(1, 1.0, 1)
        assert warehouse.sum(KeyRange(1, 201), Interval(1, 2)) == 1.0

    def test_disable_cache_restores_uncached_path(self):
        warehouse = make_warehouse()
        warehouse.enable_cache()
        warehouse.insert(1, 1.0, 1)
        warehouse.insert(2, 2.0, 4)
        kr, interval = KeyRange(1, 201), Interval(1, 3)
        before = warehouse.sum(kr, interval)
        warehouse.disable_cache()
        assert warehouse.result_cache is None
        assert warehouse.cache_probe(kr, interval) is None
        assert warehouse.sum(kr, interval) == before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(result_entries=-1)
        with pytest.raises(ValueError):
            CacheConfig(memo_entries=-1)

    def test_snapshot_layers(self):
        warehouse = make_warehouse()
        warehouse.enable_cache()
        warehouse.insert(1, 1.0, 1)
        warehouse.insert(2, 2.0, 4)
        warehouse.sum(KeyRange(1, 201), Interval(1, 3))
        warehouse.sum(KeyRange(1, 201), Interval(1, 3))
        snapshot = warehouse.cache_snapshot().as_dict()
        assert snapshot["result"]["hits"] == 1
        assert snapshot["result"]["misses"] == 1
        assert snapshot["memo"]["misses"] > 0


class TestPointMemo:
    def test_repeated_point_queries_save_pages(self):
        warehouse = make_warehouse()
        warehouse.enable_cache()
        for k in range(1, 40):
            warehouse.insert(k, float(k), k)
        interval = Interval(5, 20)
        kr = KeyRange(1, 201)
        first = warehouse.sum(kr, interval)
        warehouse.result_cache.clear()  # force a re-descent
        assert warehouse.sum(kr, interval) == first
        memo = warehouse.cache_snapshot().as_dict()["memo"]
        assert memo["hits"] > 0
        assert memo["pages_saved"] > 0

    def test_memo_epoch_invalidates_open_frontier(self):
        warehouse = make_warehouse()
        warehouse.enable_cache(CacheConfig(result_entries=0))
        twin = make_warehouse()
        for w in (warehouse, twin):
            for k in range(1, 20):
                w.insert(k, float(k), k)
        open_interval = Interval(1, warehouse.now + 1)
        kr = KeyRange(1, 201)
        assert warehouse.sum(kr, open_interval) == \
            twin.sum(kr, open_interval)
        warehouse.insert(50, 100.0, warehouse.now)  # same-instant insert
        twin.insert(50, 100.0, twin.now)
        assert warehouse.sum(kr, open_interval) == \
            twin.sum(kr, open_interval)


class TestVersionedLRU:
    def test_closed_entries_ignore_epoch(self):
        lru = _VersionedLRU(capacity=4)
        lru.store("k", 1.0, closed=True, epoch=5)
        assert lru.lookup("k", 99) == (1.0, None)

    def test_open_entries_drop_on_epoch_mismatch(self):
        lru = _VersionedLRU(capacity=4)
        lru.store("k", 1.0, closed=False, epoch=5)
        assert lru.lookup("k", 5) == (1.0, None)
        assert lru.lookup("k", 6) is None
        assert lru.stats.stale_drops == 1
        assert len(lru) == 0  # stale entry removed, not retained

    def test_lru_eviction_order(self):
        lru = _VersionedLRU(capacity=2)
        lru.store("a", 1, closed=True, epoch=0)
        lru.store("b", 2, closed=True, epoch=0)
        lru.lookup("a", 0)                     # refresh a
        lru.store("c", 3, closed=True, epoch=0)
        assert lru.lookup("b", 0) is None      # b was the LRU
        assert lru.lookup("a", 0) == (1, None)

    def test_result_cache_key_includes_aggregate(self):
        kr, interval = KeyRange(1, 10), Interval(1, 5)
        assert ResultCache.key("SUM", kr, interval) != \
            ResultCache.key("COUNT", kr, interval)
