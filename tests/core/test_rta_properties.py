"""Hypothesis property tests: RTAIndex vs the tuple-store oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 150)


@st.composite
def op_streams(draw):
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert", "delete"]),
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-9, max_value=9),
        ),
        min_size=1, max_size=100,
    ))


def replay(stream):
    pool = BufferPool(InMemoryDiskManager(), capacity=4096)
    index = RTAIndex(pool, MVSBTConfig(capacity=5), key_space=KEY_SPACE)
    oracle = TupleStoreOracle()
    alive = set()
    t = 1
    for op, key, dt, value in stream:
        t += dt
        if op == "insert" and key not in alive:
            index.insert(key, float(value), t)
            oracle.insert(key, float(value), t)
            alive.add(key)
        elif op == "delete" and key in alive:
            index.delete(key, t)
            oracle.delete(key, t)
            alive.discard(key)
    return index, oracle, t


@st.composite
def rectangles(draw):
    k1 = draw(st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1))
    k2 = draw(st.integers(min_value=k1 + 1, max_value=KEY_SPACE[1]))
    t1 = draw(st.integers(min_value=1, max_value=400))
    t2 = draw(st.integers(min_value=t1 + 1, max_value=500))
    return (k1, k2, t1, t2)


@settings(max_examples=60, deadline=None)
@given(op_streams(), rectangles())
def test_sum_matches_oracle(stream, rect):
    index, oracle, _ = replay(stream)
    k1, k2, t1, t2 = rect
    assert index.sum(KeyRange(k1, k2), Interval(t1, t2)) \
        == pytest.approx(oracle.rta_sum(k1, k2, t1, t2))


@settings(max_examples=60, deadline=None)
@given(op_streams(), rectangles())
def test_count_matches_oracle(stream, rect):
    index, oracle, _ = replay(stream)
    k1, k2, t1, t2 = rect
    assert index.count(KeyRange(k1, k2), Interval(t1, t2)) \
        == oracle.rta_count(k1, k2, t1, t2)


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles())
def test_avg_consistent_with_sum_and_count(stream, rect):
    index, _, _ = replay(stream)
    k1, k2, t1, t2 = rect
    r, iv = KeyRange(k1, k2), Interval(t1, t2)
    result = index.aggregate_all(r, iv)
    if result.count:
        assert result.avg == pytest.approx(result.sum / result.count)
    else:
        assert result.avg is None


@settings(max_examples=40, deadline=None)
@given(op_streams(), rectangles(),
       st.integers(min_value=KEY_SPACE[0] + 1, max_value=KEY_SPACE[1] - 1))
def test_key_partition_additivity(stream, rect, cut):
    index, _, _ = replay(stream)
    k1, k2, t1, t2 = rect
    if not (k1 < cut < k2):
        return
    iv = Interval(t1, t2)
    whole = index.sum(KeyRange(k1, k2), iv)
    parts = index.sum(KeyRange(k1, cut), iv) + index.sum(KeyRange(cut, k2), iv)
    assert whole == pytest.approx(parts)
