"""Trace-invariance: observability must never change what it observes.

Twin runs of the same deterministic workload — one plain, one with a
tracer attached for the *whole* run (build and queries) — must agree on

* every answer, bit for bit,
* every ``IOStats`` counter (an enabled tracer adds zero physical I/Os),
* every page image on disk, byte for byte.

The default state (no tracer attached, every site guarded by the shared
``NULL_TRACER``) is exercised by the plain twin of each pair, so these
tests simultaneously pin the disabled path and the enabled path.
"""

import pytest

from repro.bench.harness import (
    BenchSettings,
    build_mvbt_baseline,
    build_rta_index,
)
from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.ingest import BatchLoader
from repro.core.warehouse import TemporalWarehouse
from repro.obs.attach import traced
from repro.sbtree.tree import SBTree
from repro.storage.serialization import encode_page
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

SETTINGS = BenchSettings()
AGGREGATES = (SUM, COUNT, AVG)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(paper_config("uniform-long", scale=0.0008))


@pytest.fixture(scope="module")
def rects(dataset):
    return generate_query_rectangles(QueryRectangleConfig(
        qrs=0.1, count=6, key_space=dataset.config.key_space,
        time_space=dataset.config.time_space, seed=4242,
    ))


def disk_fingerprint(pool):
    """Byte image + metadata of every live page, keyed by page id."""
    out = {}
    for page_id in sorted(pool.disk.live_page_ids()):
        page = pool.disk.read(page_id)
        out[page_id] = (
            encode_page(page.kind, page.records, 8192),
            repr(sorted(page.meta.items())),
        )
    return out


def run_queries(index, rects):
    """Every aggregate over every rectangle, in a fixed order."""
    return [index.query(rect.range, rect.interval, aggregate)
            for aggregate in AGGREGATES for rect in rects]


def replay(index, dataset):
    for event in dataset.events:
        if event.op == "insert":
            index.insert(event.key, event.value, event.time)
        else:
            index.delete(event.key, event.time)


class TestTwinRuns:
    """One plain twin vs one fully-traced twin, per engine."""

    def check_twins(self, build, exercise):
        plain = build()
        plain_answers = exercise(plain)
        traced_twin = build()
        with traced(traced_twin) as tracer:
            traced_answers = exercise(traced_twin)
        assert tracer.roots, "tracer captured nothing — wiring broken?"
        assert traced_answers == plain_answers
        assert traced_twin.pool.stats == plain.pool.stats
        assert disk_fingerprint(traced_twin.pool) \
            == disk_fingerprint(plain.pool)

    def test_rta_index_mvsbt_path(self, dataset, rects):
        self.check_twins(
            build=lambda: build_rta_index(SETTINGS, dataset,
                                          aggregates=(SUM, COUNT)),
            exercise=lambda index: (replay(index, dataset),
                                    run_queries(index, rects))[1],
        )

    def test_mvbt_baseline_scan_path(self, dataset, rects):
        self.check_twins(
            build=lambda: build_mvbt_baseline(SETTINGS, dataset),
            exercise=lambda index: (replay(index, dataset),
                                    run_queries(index, rects))[1],
        )

    def test_sbtree_path(self):
        def build():
            from repro.storage.buffer import BufferPool
            from repro.storage.disk import InMemoryDiskManager
            pool = BufferPool(InMemoryDiskManager(), capacity=8)
            return SBTree(pool, capacity=4, domain=(1, 201))

        def exercise(tree):
            state = 12345
            for _ in range(60):
                state = (state * 48271) % (2**31 - 1)
                start = state % 150 + 1
                tree.insert(start, start + state % 40 + 1,
                            float(state % 17 - 8))
            return [tree.query(t) for t in range(1, 201, 7)]

        self.check_twins(build, exercise)


class TestWarehouseTwins:
    """The full warehouse: both planner paths, every aggregate."""

    def build(self, dataset):
        warehouse = TemporalWarehouse(key_space=dataset.config.key_space,
                                      page_capacity=SETTINGS.mvsbt_capacity)
        return warehouse

    def exercise(self, warehouse, dataset, rects):
        dataset.replay_into(warehouse)
        answers = []
        for aggregate in AGGREGATES:
            for rect in rects:
                answers.append(warehouse.aggregate(rect.range, rect.interval,
                                                   aggregate))
            # Tiny rectangle: forces the mvbt-scan plan alongside mvsbt.
            lo = dataset.config.key_space[0]
            from repro.core.model import Interval, KeyRange
            answers.append(warehouse.aggregate(KeyRange(lo, lo + 2),
                                               Interval(1, 3), aggregate))
        return answers

    def test_warehouse_twin_runs_agree(self, dataset, rects):
        plain = self.build(dataset)
        plain_answers = self.exercise(plain, dataset, rects)
        twin = self.build(dataset)
        with traced(twin) as tracer:
            traced_answers = self.exercise(twin, dataset, rects)
        assert tracer.roots
        assert traced_answers == plain_answers
        for pool_name in ("tuples", "aggregates"):
            plain_pool = getattr(plain, pool_name).pool
            traced_pool = getattr(twin, pool_name).pool
            assert traced_pool.stats == plain_pool.stats, pool_name
            assert disk_fingerprint(traced_pool) \
                == disk_fingerprint(plain_pool), pool_name


class TestBatchedIngestTwins:
    """Tracing the BatchLoader path perturbs nothing either."""

    def test_batched_ingest_invariance(self, dataset, rects):
        def build_and_load(trace):
            index = build_rta_index(SETTINGS, dataset,
                                    aggregates=(SUM, COUNT))
            loader = BatchLoader(index, batch_size=64)
            if trace:
                with traced(index) as tracer:
                    loader.load(dataset.events)
                assert tracer.roots
            else:
                loader.load(dataset.events)
            index.pool.flush_all()
            return index

        plain = build_and_load(trace=False)
        traced_index = build_and_load(trace=True)
        assert traced_index.pool.stats == plain.pool.stats
        assert disk_fingerprint(traced_index.pool) \
            == disk_fingerprint(plain.pool)
        assert run_queries(traced_index, rects) == run_queries(plain, rects)
