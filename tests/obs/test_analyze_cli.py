"""The ``python -m repro.analyze`` trace subcommands."""

import json

import pytest

from repro.analyze import main, top_spans_table
from repro.obs.tracefile import TRACE_RECORD_SCHEMA, write_trace


def sample_records():
    return [
        {"name": "bench.queries", "reads": 10, "writes": 2,
         "logical_reads": 40, "cpu_s": 0.02,
         "attrs": {"experiment": "fig4b"}},
        {"name": "bench.updates", "reads": 1, "writes": 30,
         "logical_reads": 90, "cpu_s": 0.5,
         "attrs": {"experiment": "fig4a"},
         "children": [
             {"name": "ingest.flush", "reads": 0, "writes": 25,
              "logical_reads": 0, "cpu_s": 0.1},
         ]},
    ]


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_trace(sample_records(), str(path))
    return path


class TestTopSpans:
    def test_ranking_by_ios_includes_children(self):
        table = top_spans_table(sample_records(), by="ios", top=10)
        spans = table.column("span")
        assert spans[0] == "bench.updates"          # 31 I/Os
        assert "ingest.flush" in spans              # nested record counted

    def test_ranking_by_cpu(self):
        table = top_spans_table(sample_records(), by="cpu", top=1)
        assert table.column("span") == ["bench.updates"]

    def test_unknown_ranking_rejected(self):
        with pytest.raises(ValueError):
            top_spans_table(sample_records(), by="wall")


class TestCLI:
    def test_traces_subcommand_prints_both_tables(self, trace_path, capsys):
        assert main(["traces", str(trace_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 spans by physical I/O" in out
        assert "top 3 spans by CPU" in out
        assert "bench.updates" in out

    def test_schema_subcommand_prints_schema(self, capsys):
        assert main(["schema"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed == json.loads(json.dumps(TRACE_RECORD_SCHEMA))

    def test_schema_check_passes_on_fresh_copy(self, tmp_path, capsys):
        path = tmp_path / "schema.json"
        path.write_text(json.dumps(TRACE_RECORD_SCHEMA))
        assert main(["schema", "--check", str(path)]) == 0

    def test_schema_check_fails_on_drift(self, tmp_path, capsys):
        path = tmp_path / "schema.json"
        drifted = json.loads(json.dumps(TRACE_RECORD_SCHEMA))
        drifted["required"] = []
        path.write_text(json.dumps(drifted))
        assert main(["schema", "--check", str(path)]) == 1
        assert "DRIFT" in capsys.readouterr().err
