"""Unit tests for the metrics registry and its exports."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PoolMetrics,
    QueryMetrics,
    TreeMetrics,
    snapshot_into,
)


class TestInstruments:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 3.0, 7.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(113.5)
        # le=1: {0.5}; le=5: +{3,3}; le=10: +{7}; +Inf: +{100}
        assert histogram.cumulative_counts() == [1, 3, 4, 5]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistry:
    def test_same_name_and_labels_share_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels={"x": "1"})
        b = registry.counter("c", labels={"x": "1"})
        other = registry.counter("c", labels={"x": "2"})
        assert a is b
        assert a is not other

    def test_kind_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs", "requests", {"op": "q"}).inc(4)
        payload = registry.to_json()
        assert payload["reqs"]["type"] == "counter"
        assert payload["reqs"]["series"] == [
            {"labels": {"op": "q"}, "value": 4.0}
        ]

    def test_render_json_is_valid_json_with_inf_encoded(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(3)
        payload = json.loads(registry.render_json())
        les = [b["le"] for b in payload["h"]["series"][0]["buckets"]]
        assert les == [1.0, "+Inf"]

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_ops_total", "ops", {"op": "insert"}).inc(2)
        registry.histogram("repro_ios", "ios", buckets=(1.0, 2.0)).observe(2)
        text = registry.render_prometheus()
        assert '# TYPE repro_ops_total counter' in text
        assert 'repro_ops_total{op="insert"} 2' in text
        assert 'repro_ios_bucket{le="2"} 1' in text
        assert 'repro_ios_bucket{le="+Inf"} 1' in text
        assert 'repro_ios_count 1' in text
        assert text.endswith("\n")


class TestPublishedMetrics:
    def test_pool_tree_query_metrics_register_names(self):
        registry = MetricsRegistry()
        PoolMetrics(registry, "tuples").flush_batch_pages.observe(3)
        TreeMetrics(registry, "SUM.lkst").descent_pages.observe(2)
        query = QueryMetrics(registry)
        query.query_ios.observe(7)
        query.plan_mvsbt.inc()
        payload = registry.to_json()
        assert set(payload) >= {
            "repro_flush_batch_pages", "repro_descent_pages",
            "repro_query_ios", "repro_plan_choices_total",
        }
        (series,) = payload["repro_descent_pages"]["series"]
        assert series["labels"] == {"index": "SUM.lkst"}

    def test_snapshot_into_publishes_pool_and_tree_counters(self):
        from repro.core.warehouse import TemporalWarehouse

        warehouse = TemporalWarehouse(key_space=(1, 101), page_capacity=8)
        for key in range(1, 20):
            warehouse.insert(key, 1.0, t=key)
        registry = snapshot_into(MetricsRegistry(), warehouse)
        payload = registry.to_json()
        assert payload["repro_pool_logical_reads"]["series"]
        assert payload["repro_tree_inserts"]["series"]
