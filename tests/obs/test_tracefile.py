"""Trace-record schema, JSONL round-trips, and the checked-in schema copy."""

import json
from pathlib import Path

import pytest

from repro.obs.tracefile import (
    TRACE_RECORD_SCHEMA,
    TraceSchemaError,
    iter_records,
    read_trace,
    span_to_record,
    validate_record,
    write_trace,
)
from repro.obs.tracer import Tracer
from repro.storage.stats import IOStats

REPO_ROOT = Path(__file__).resolve().parents[2]

GOOD = {"name": "op", "reads": 1, "writes": 0, "logical_reads": 3,
        "cpu_s": 0.001}


class TestValidation:
    def test_minimal_record_is_valid(self):
        validate_record(GOOD)

    def test_nested_children_are_validated(self):
        record = dict(GOOD, children=[dict(GOOD, attrs={"page": 7})])
        validate_record(record)
        with pytest.raises(TraceSchemaError):
            validate_record(dict(GOOD, children=[{"name": "broken"}]))

    @pytest.mark.parametrize("mutation", [
        {"name": None}, {"reads": "three"}, {"cpu_s": None},
        {"unexpected": 1}, {"attrs": "not-a-dict"},
    ])
    def test_bad_records_rejected(self, mutation):
        record = dict(GOOD)
        record.update(mutation)
        with pytest.raises(TraceSchemaError):
            validate_record(record)

    def test_missing_required_field_rejected(self):
        record = dict(GOOD)
        del record["reads"]
        with pytest.raises(TraceSchemaError):
            validate_record(record)


class TestRoundTrip:
    def test_span_to_record_and_back(self):
        tracer = Tracer()
        stats = IOStats()
        tracer.watch("pool", stats)
        with tracer.span("query", plan="mvsbt"):
            stats.reads += 2
            stats.logical_reads += 5
            tracer.event("buffer.miss", page=3)
        record = span_to_record(tracer.last_root)
        validate_record(record)
        assert record["name"] == "query"
        assert record["reads"] == 2
        assert record["children"][0]["name"] == "buffer.miss"

    def test_write_and_read_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace([GOOD, dict(GOOD, name="other")], str(path))
        assert count == 2
        records = read_trace(str(path))
        assert [r["name"] for r in records] == ["op", "other"]

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(TraceSchemaError):
            write_trace([{"name": "broken"}], str(tmp_path / "t.jsonl"))

    def test_read_rejects_drifted_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(dict(GOOD, rogue=1)) + "\n")
        with pytest.raises(TraceSchemaError):
            read_trace(str(path))

    def test_iter_records_flattens_depth_first(self):
        nested = dict(GOOD, name="root",
                      children=[dict(GOOD, name="a",
                                     children=[dict(GOOD, name="b")]),
                                dict(GOOD, name="c")])
        names = [r["name"] for r in iter_records([nested])]
        assert names == ["root", "a", "b", "c"]


class TestCheckedInSchema:
    def test_docs_schema_matches_enforced_schema(self):
        # CI's obs-smoke job and `python -m repro.analyze schema --check`
        # rely on docs/trace_schema.json being the enforced schema, verbatim.
        path = REPO_ROOT / "docs" / "trace_schema.json"
        with open(path) as fh:
            on_disk = json.load(fh)
        assert on_disk == json.loads(json.dumps(TRACE_RECORD_SCHEMA)), (
            "docs/trace_schema.json drifted; regenerate with "
            "`python -m repro.analyze schema > docs/trace_schema.json`"
        )
