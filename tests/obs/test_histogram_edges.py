"""Histogram and exposition edge cases the serving plane depends on.

The ``/metrics`` endpoint's correctness rests on Prometheus semantics:
``le`` is inclusive, the overflow bucket is ``+Inf``, label values are
escaped, and concurrent observation from reader threads never drops a
count (the registry is shared by the event loop, the reader pool, and
the HTTP scrape thread).
"""

import math
import threading

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
)


class TestBucketBoundaries:
    def test_value_on_bound_counts_in_that_bucket(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        h.observe(2.0)  # exactly on the 2.0 bound: le="2" is inclusive
        assert h.counts[0] == 0
        assert h.counts[1] == 1
        assert h.counts[2] == 0

    def test_overflow_lands_in_inf_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1e9)
        assert h.counts[-1] == 1
        assert h.cumulative_counts() == [0, 0, 1]

    def test_below_first_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.0)
        h.observe(-5.0)  # pathological but must not crash
        assert h.counts[0] == 2

    def test_cumulative_is_monotone_and_ends_at_count(self):
        h = Histogram(buckets=DEFAULT_BUCKETS)
        for value in (0.5, 3.0, 7.0, 1e6, 42.0):
            h.observe(value)
        cumulative = h.cumulative_counts()
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == h.count == 5

    def test_sum_tracks_exact_values(self):
        h = Histogram(buckets=(1.0,))
        h.observe(0.25)
        h.observe(2.75)
        assert math.isclose(h.sum, 3.0)


class TestInfRendering:
    def test_prometheus_inf_bucket_spelling(self):
        registry = MetricsRegistry()
        h = registry.histogram("repro_test_seconds", "t", buckets=(1.0,))
        h.observe(5.0)
        text = registry.render_prometheus()
        assert 'le="+Inf"} 1' in text
        assert 'le="1"} 0' in text

    def test_json_inf_bucket_spelling(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("repro_test_seconds", "t",
                           buckets=(1.0,)).observe(5.0)
        payload = json.loads(registry.render_json())
        les = [b["le"] for b in
               payload["repro_test_seconds"]["series"][0]["buckets"]]
        assert les == [1.0, "+Inf"]


class TestLabelEscaping:
    def test_quotes_backslashes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "t",
                         {"tql": 'SELECT "x" \\ \n tail'}).inc()
        text = registry.render_prometheus()
        assert r'tql="SELECT \"x\" \\ \n tail"' in text

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "t", {"op": "a"}).inc()
        registry.counter("repro_test_total", "t", {"op": "b"}).inc(2)
        text = registry.render_prometheus()
        assert 'repro_test_total{op="a"} 1' in text
        assert 'repro_test_total{op="b"} 2' in text


class TestThreadSafety:
    def test_concurrent_observation_drops_nothing(self):
        h = Histogram(buckets=DEFAULT_BUCKETS)
        per_thread = 5000

        def pound():
            for n in range(per_thread):
                h.observe(float(n % 300))

        threads = [threading.Thread(target=pound) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8 * per_thread
        assert h.cumulative_counts()[-1] == h.count

    def test_concurrent_instrument_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("repro_race_total", "t",
                                         {"op": "x"}))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)
