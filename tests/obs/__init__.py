"""Tests for the observability layer (tracing, metrics, EXPLAIN)."""
