"""TraceSink: rotation, close semantics, and the async writer thread.

The server runs the sink with ``async_writes=True`` so the event loop
only enqueues; these tests pin the contract both modes share (validated
records, bounded rotation, closed-sink writes raise) and the async-only
behaviors (drain on close, drop counting when the queue is full or a
record is malformed).
"""

import json
import os
import time

import pytest

from repro.obs.tracefile import TraceSink, read_trace

RECORD = {"name": "request", "attrs": {"op": "query"},
          "reads": 1, "writes": 0, "logical_reads": 2, "cpu_s": 0.001}


def _bad_record():
    return {"name": "request"}  # missing required counters


class TestSyncMode:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path) as sink:
            sink.write(RECORD)
            sink.write(dict(RECORD, name="request2"))
            assert sink.written == 2
        records = read_trace(str(path))
        assert [r["name"] for r in records] == ["request", "request2"]

    def test_invalid_record_raises_inline(self, tmp_path):
        with TraceSink(tmp_path / "t.jsonl") as sink:
            with pytest.raises(Exception):
                sink.write(_bad_record())

    def test_validate_false_skips_the_check(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path, validate=False) as sink:
            sink.write(_bad_record())  # writer trusts the producer
        assert json.loads(path.read_text()) == _bad_record()

    def test_rotation_bounds_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        line = len(json.dumps(RECORD, sort_keys=True)) + 1
        with TraceSink(path, max_bytes=3 * line) as sink:
            for _ in range(10):
                sink.write(RECORD)
            assert sink.rotations >= 1
        assert os.path.exists(f"{path}.1")
        # Two generations at most: active file + one rotation.
        assert os.path.getsize(path) <= 3 * line
        assert os.path.getsize(f"{path}.1") <= 3 * line

    def test_write_after_close_raises(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.write(RECORD)

    def test_close_is_idempotent(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_append_resumes_existing_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceSink(path) as sink:
            sink.write(RECORD)
        with TraceSink(path) as sink:
            sink.write(RECORD)
        assert len(read_trace(str(path))) == 2


class TestAsyncMode:
    def test_close_drains_everything_enqueued(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TraceSink(path, async_writes=True)
        for _ in range(200):
            sink.write(RECORD)
        sink.close()  # must block until the queue is flushed
        assert sink.written == 200
        assert len(read_trace(str(path))) == 200

    def test_full_queue_drops_instead_of_blocking(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl", async_writes=True,
                         queue_entries=4)
        # Stall the writer by replacing its file handle flush with a
        # slow one?  Simpler: enqueue faster than a filesystem can ever
        # matter by freezing the writer thread via the lock.
        with sink._lock:
            for _ in range(100):
                sink.write(RECORD)
        sink.close()
        assert sink.dropped > 0
        assert sink.written + sink.dropped == 100

    def test_bad_record_counts_dropped_and_writer_survives(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = TraceSink(path, async_writes=True)
        sink.write(_bad_record())
        sink.write(RECORD)
        sink.close()
        assert sink.dropped == 1
        assert sink.written == 1
        assert len(read_trace(str(path))) == 1

    def test_write_after_close_raises(self, tmp_path):
        sink = TraceSink(tmp_path / "t.jsonl", async_writes=True)
        sink.close()
        with pytest.raises(ValueError):
            sink.write(RECORD)

    def test_rotation_applies_in_async_mode(self, tmp_path):
        path = tmp_path / "t.jsonl"
        line = len(json.dumps(RECORD, sort_keys=True)) + 1
        sink = TraceSink(path, max_bytes=2 * line, async_writes=True)
        for _ in range(20):
            sink.write(RECORD)
        sink.close()
        assert sink.rotations >= 1
        assert os.path.exists(f"{path}.1")
