"""EXPLAIN surface: span-tree accounting and the TQL statement."""

import pytest

from repro.core.aggregates import AVG, COUNT, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError
from repro.obs.explain import ExplainReport, explain_query, render_span_tree
from repro.tql import ExplainStatement, execute, parse
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset


@pytest.fixture(scope="module")
def warehouse():
    dataset = generate_dataset(paper_config("uniform-long", scale=0.0008))
    warehouse = TemporalWarehouse(key_space=dataset.config.key_space,
                                  page_capacity=8)
    dataset.replay_into(warehouse)
    return warehouse


def big_rectangle(warehouse):
    """A whole-space rectangle — the planner picks the mvsbt plan for it."""
    lo, hi = warehouse.key_space
    return KeyRange(lo, hi), Interval(1, warehouse.now + 1)


class TestExplainQuery:
    def test_report_carries_plan_result_and_spans(self, warehouse):
        key_range, interval = big_rectangle(warehouse)
        report = explain_query(warehouse, key_range, interval, SUM)
        assert isinstance(report, ExplainReport)
        assert report.plan.plan == "mvsbt"
        assert report.result == warehouse.aggregate(key_range, interval, SUM)
        assert report.root.find("plan")
        assert report.root.find("execute")

    def test_page_accesses_sum_to_query_ios(self, warehouse):
        # The acceptance identity: for an mvsbt-plan query, the per-page
        # spans of the execute subtree partition its physical I/O exactly.
        warehouse.tuples.pool.clear()
        warehouse.aggregates.pool.clear()
        key_range, interval = big_rectangle(warehouse)
        report = explain_query(warehouse, key_range, interval, SUM)
        assert report.plan.plan == "mvsbt"
        (execute_span,) = report.root.find("execute")
        page_spans = execute_span.find("mvsbt.page")
        assert page_spans, "no per-page spans under execute"
        assert sum(s.total_ios for s in page_spans) == execute_span.total_ios
        assert execute_span.total_ios > 0  # cold buffer: real reads happened

    def test_per_level_breakdown_sums_too(self, warehouse):
        warehouse.aggregates.pool.clear()
        key_range, interval = big_rectangle(warehouse)
        report = explain_query(warehouse, key_range, interval, COUNT)
        (execute_span,) = report.root.find("execute")
        page_spans = execute_span.find("mvsbt.page")
        by_level = {}
        for span in page_spans:
            level = span.attrs["level"]
            by_level[level] = by_level.get(level, 0) + span.total_ios
        assert sum(by_level.values()) == execute_span.total_ios
        assert set(by_level), "levels missing from page spans"

    def test_render_includes_costs_and_tree(self, warehouse):
        key_range, interval = big_rectangle(warehouse)
        report = explain_query(warehouse, key_range, interval, AVG)
        text = str(report)
        assert "plan:" in text
        assert "result:" in text
        assert "total:" in text
        assert "execute" in text
        assert "rta.point" in text

    def test_render_span_tree_events_have_no_cost_suffix(self, warehouse):
        key_range, interval = big_rectangle(warehouse)
        report = explain_query(warehouse, key_range, interval, SUM)
        text = render_span_tree(report.root)
        for line in text.splitlines():
            if "buffer.hit" in line:
                assert "ios=" not in line
                break


class TestTQLExplain:
    def test_parse_explain_select(self):
        statement = parse("EXPLAIN SELECT SUM(value) "
                          "WHERE key IN [1, 50) AND time DURING [1, 40)")
        assert isinstance(statement, ExplainStatement)
        assert statement.select.agg.name == "SUM"

    def test_execute_explain_returns_report(self, warehouse):
        report = execute(warehouse, "EXPLAIN SELECT COUNT(*)")
        assert isinstance(report, ExplainReport)
        assert "plan:" in str(report)

    def test_explain_timeline_rejected(self, warehouse):
        with pytest.raises(QueryError):
            execute(warehouse, "EXPLAIN SELECT TIMELINE(SUM, 4)")

    def test_explain_requires_select(self):
        with pytest.raises(QueryError):
            parse("EXPLAIN SNAPSHOT AT 5")
