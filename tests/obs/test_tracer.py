"""Unit tests for spans, the tracer, and the null tracer."""

import pytest

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.storage.stats import IOStats


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-a"):
                tracer.event("leaf")
            with tracer.span("child-b"):
                pass
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in root.children[0].children] == ["leaf"]
        assert tracer.last_root is root

    def test_attrs_settable_inside_span(self):
        tracer = Tracer()
        with tracer.span("op", key=7) as span:
            span.attrs["plan"] = "mvsbt"
        assert span.attrs == {"key": 7, "plan": "mvsbt"}

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.event("c")
        root = tracer.last_root
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert [s.name for s in root.find("c")] == ["c"]
        assert root.find("missing") == []

    def test_cpu_time_is_inclusive_of_children(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(50000))
        assert outer.cpu_s >= inner.cpu_s >= 0.0
        assert outer.self_cpu_s() == pytest.approx(
            outer.cpu_s - inner.cpu_s)

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.last_root.name == "boom"
        assert tracer.current is None


class TestIOAttribution:
    def test_watched_stats_delta_lands_on_span(self):
        tracer = Tracer()
        stats = IOStats()
        tracer.watch("pool", stats)
        with tracer.span("op") as span:
            stats.reads += 3
            stats.writes += 1
            stats.logical_reads += 5
        assert span.io.reads == 3
        assert span.io.writes == 1
        assert span.io.logical_reads == 5
        assert span.total_ios == 4
        assert span.io_by_source["pool"].reads == 3

    def test_multiple_sources_are_summed(self):
        tracer = Tracer()
        a, b = IOStats(), IOStats()
        tracer.watch("a", a)
        tracer.watch("b", b)
        with tracer.span("op") as span:
            a.reads += 1
            b.writes += 2
        assert span.io.reads == 1 and span.io.writes == 2
        assert set(span.io_by_source) == {"a", "b"}

    def test_watch_same_stats_twice_is_single_source(self):
        tracer = Tracer()
        stats = IOStats()
        tracer.watch("pool", stats)
        tracer.watch("pool", stats)
        with tracer.span("op") as span:
            stats.reads += 1
        assert span.io.reads == 1

    def test_events_are_zero_cost_leaves(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            tracer.event("buffer.hit", page=9)
        (event,) = span.children
        assert event.cpu_s == 0.0
        assert event.children == []
        assert event.attrs == {"page": 9}


class TestTracerLifecycle:
    def test_reset_forgets_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.last_root is None

    def test_null_tracer_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("ignored", key=1) as span:
            assert span is None
        NULL_TRACER.event("ignored")  # must not raise

    def test_real_tracer_is_enabled(self):
        assert Tracer().enabled is True
