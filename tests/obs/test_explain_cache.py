"""EXPLAIN's per-query cache outcome: probe, deltas, and rendering."""

from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.obs.explain import explain_query
from repro.tql import executor


def make_warehouse():
    warehouse = TemporalWarehouse(key_space=(1, 201), page_capacity=8)
    for k in range(1, 60):
        warehouse.insert(k, float(k), k)
    return warehouse


def test_uncached_warehouse_reports_no_cache_line():
    warehouse = make_warehouse()
    report = explain_query(warehouse, KeyRange(1, 201), Interval(1, 30))
    assert report.cache is None
    assert "cache:" not in report.render()
    assert "cache" not in report.root.attrs


def test_miss_then_hit_outcomes():
    warehouse = make_warehouse()
    warehouse.enable_cache()
    kr, interval = KeyRange(1, 201), Interval(1, 30)
    cold = explain_query(warehouse, kr, interval)
    assert cold.cache["result"] == "miss"
    assert cold.root.attrs["cache"] == "miss"
    # EXPLAIN executes outside the result-cache path, so warm the cache
    # through the production surface, then re-explain.
    warehouse.aggregate(kr, interval)
    warm = explain_query(warehouse, kr, interval)
    assert warm.cache["result"] == "hit"
    assert warm.root.attrs["cache"] == "hit"
    line = [ln for ln in warm.render().splitlines()
            if ln.startswith("cache:")]
    assert len(line) == 1
    assert "result=hit" in line[0]
    assert "buffer_hit_rate=" in line[0]


def test_memo_delta_counts_this_query_only():
    warehouse = make_warehouse()
    warehouse.enable_cache()
    kr, interval = KeyRange(1, 201), Interval(1, 30)
    explain_query(warehouse, kr, interval)          # warms the memos
    report = explain_query(warehouse, kr, interval)
    assert report.cache["memo_hits"] > 0
    assert report.cache["decoded_hits"] == 0        # in-memory disk


def test_tql_explain_select_renders_cache_line():
    warehouse = make_warehouse()
    warehouse.enable_cache()
    tql = "EXPLAIN SELECT SUM(value) WHERE key IN [1, 201) " \
          "AND time DURING [1, 30)"
    report = executor.execute(warehouse, tql)
    assert "cache: result=miss" in str(report)
    warehouse.aggregate(KeyRange(1, 201), Interval(1, 30))
    report = executor.execute(warehouse, tql)
    assert "cache: result=hit" in str(report)
