"""The bench trace collector and its wiring into the harness and runner."""

import pytest

from repro.bench.harness import (
    BenchSettings,
    build_rta_index,
    measure_batched_updates,
    measure_queries,
    measure_updates,
)
from repro.core.aggregates import COUNT, SUM
from repro.obs.collect import BenchCollector, active, collecting
from repro.obs.tracefile import validate_record
from repro.storage.stats import IOStats
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

SETTINGS = BenchSettings()


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(paper_config("uniform-long", scale=0.0005))


@pytest.fixture(scope="module")
def rects(dataset):
    return generate_query_rectangles(QueryRectangleConfig(
        qrs=0.1, count=4, key_space=dataset.config.key_space,
        time_space=dataset.config.time_space, seed=11,
    ))


class TestCollector:
    def test_record_builds_valid_records(self):
        collector = BenchCollector("exp")
        collector.record("bench.queries", IOStats(reads=3, writes=1,
                                                  logical_reads=9),
                         cpu_s=0.5, operations=10, aggregate="SUM")
        (record,) = collector.records
        validate_record(record)
        assert record["name"] == "bench.queries"
        assert record["attrs"]["experiment"] == "exp"
        assert record["attrs"]["operations"] == 10
        assert record["attrs"]["aggregate"] == "SUM"
        assert record["reads"] == 3

    def test_records_feed_the_phase_histograms(self):
        collector = BenchCollector("exp")
        collector.record("bench.updates", IOStats(reads=5), cpu_s=0.01,
                         operations=2)
        payload = collector.registry.to_json()
        assert payload["repro_bench_phase_ios"]["series"][0]["count"] == 1
        assert payload["repro_bench_operations_total"]["series"]

    def test_collecting_installs_and_restores(self):
        assert active() is None
        with collecting("outer") as outer:
            assert active() is outer
            with collecting("inner") as inner:
                assert active() is inner
            assert active() is outer
        assert active() is None


class TestHarnessEmission:
    def test_measures_emit_one_record_per_phase(self, dataset, rects):
        with collecting("twin") as collector:
            index = build_rta_index(SETTINGS, dataset,
                                    aggregates=(SUM, COUNT))
            measure_updates(index, dataset.events, SETTINGS)
            measure_queries(index, rects, SETTINGS, aggregate=SUM)
            fresh = build_rta_index(SETTINGS, dataset,
                                    aggregates=(SUM, COUNT))
            measure_batched_updates(fresh, dataset.events, SETTINGS,
                                    batch_size=32)
        names = [r["name"] for r in collector.records]
        assert names == ["bench.updates", "bench.queries",
                         "bench.batched_updates"]
        for record in collector.records:
            validate_record(record)
            assert record["attrs"]["experiment"] == "twin"
            assert record["attrs"]["competitor"] == "RTAIndex"
            assert "estimated_s" in record["attrs"]
        assert collector.records[1]["attrs"]["aggregate"] == "SUM"
        assert collector.records[2]["attrs"]["batch_size"] == 32

    def test_no_collector_means_no_side_channel(self, dataset, rects):
        index = build_rta_index(SETTINGS, dataset, aggregates=(SUM, COUNT))
        measure_updates(index, dataset.events, SETTINGS)
        cost = measure_queries(index, rects, SETTINGS)
        assert active() is None
        assert cost.operations == len(rects)


class TestRunnerTracing:
    def test_run_one_rides_records_on_the_result(self):
        from repro.bench.runner import run_one

        result = run_one("fig4a", page_bytes=512, buffer_pages=64,
                         scale=0.0003, trace=True)
        assert result.trace_records, "traced run produced no records"
        for record in result.trace_records:
            validate_record(record)
        assert result.metrics is not None
        assert "repro_bench_phase_ios" in result.metrics

    def test_run_one_untraced_is_empty(self):
        from repro.bench.runner import run_one

        result = run_one("fig4a", page_bytes=512, buffer_pages=64,
                         scale=0.0003)
        assert result.trace_records == ()
        assert result.metrics is None
