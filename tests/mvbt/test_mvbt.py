"""Unit tests for the Multiversion B-Tree."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    QueryError,
    TimeOrderError,
)
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 1001)


@pytest.fixture()
def tree(pool):
    return MVBT(pool, MVBTConfig(capacity=4), key_space=KEY_SPACE)


class TestBasics:
    def test_empty_tree_snapshot(self, tree):
        assert tree.snapshot_point(5, 1) is None
        assert tree.range_snapshot(1, 1000, 10) == []

    def test_insert_then_point_query(self, tree):
        tree.insert(42, 7.0, t=5)
        assert tree.snapshot_point(42, 5) == 7.0
        assert tree.snapshot_point(42, 100) == 7.0
        assert tree.snapshot_point(42, 4) is None
        assert tree.snapshot_point(41, 5) is None

    def test_delete_is_logical(self, tree):
        tree.insert(42, 7.0, t=5)
        assert tree.delete(42, t=20) == 7.0
        assert tree.snapshot_point(42, 19) == 7.0   # past still queryable
        assert tree.snapshot_point(42, 20) is None

    def test_reinsert_after_delete(self, tree):
        tree.insert(42, 1.0, t=5)
        tree.delete(42, t=10)
        tree.insert(42, 2.0, t=15)
        assert tree.snapshot_point(42, 7) == 1.0
        assert tree.snapshot_point(42, 12) is None
        assert tree.snapshot_point(42, 20) == 2.0

    def test_same_instant_insert_delete_never_existed(self, tree):
        tree.insert(42, 1.0, t=5)
        tree.delete(42, t=5)
        assert tree.snapshot_point(42, 5) is None
        assert tree.rectangle_query(1, 1000, 1, 100) == []

    def test_update_replaces_value(self, tree):
        tree.insert(42, 1.0, t=5)
        tree.update(42, 9.0, t=10)
        assert tree.snapshot_point(42, 9) == 1.0
        assert tree.snapshot_point(42, 10) == 9.0


class TestValidation:
    def test_duplicate_alive_key_rejected(self, tree):
        tree.insert(42, 1.0, t=5)
        with pytest.raises(DuplicateKeyError):
            tree.insert(42, 2.0, t=6)

    def test_delete_missing_key_rejected(self, tree):
        with pytest.raises(KeyNotFoundError):
            tree.delete(42, t=5)

    def test_time_order_enforced(self, tree):
        tree.insert(42, 1.0, t=10)
        with pytest.raises(TimeOrderError):
            tree.insert(43, 1.0, t=9)

    def test_key_outside_space_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.insert(0, 1.0, t=1)
        with pytest.raises(QueryError):
            tree.insert(5000, 1.0, t=1)

    def test_empty_rectangle_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.rectangle_query(10, 10, 1, 5)
        with pytest.raises(QueryError):
            tree.rectangle_query(10, 20, 5, 5)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            MVBTConfig(capacity=3)
        with pytest.raises(ValueError):
            MVBTConfig(capacity=10, weak_min=4, strong_min=9, strong_max=9)


class TestStructure:
    def test_version_split_preserves_history(self, tree):
        for i in range(1, 10):
            tree.insert(i * 10, float(i), t=i)
        # Early snapshots survive the splits triggered by later inserts.
        for i in range(1, 10):
            for j in range(1, i + 1):
                assert tree.snapshot_point(j * 10, i) == float(j), (i, j)

    def test_invariants_after_insert_heavy_stream(self, tree):
        for i in range(1, 120):
            tree.insert(i * 7 % 997 + 1, float(i), t=i)
        tree.check_invariants()
        assert tree.counters.key_splits > 0

    def test_invariants_after_mixed_stream(self, pool):
        tree = MVBT(pool, MVBTConfig(capacity=6), key_space=KEY_SPACE)
        oracle = TupleStoreOracle()
        alive = []
        state = 7
        for t in range(1, 400):
            state = (state * 48271) % (2**31 - 1)
            if alive and state % 3 == 0:
                key = alive.pop(state % len(alive))
                tree.delete(key, t)
                oracle.delete(key, t)
            else:
                key = state % 900 + 1
                if key not in alive:
                    tree.insert(key, float(key), t)
                    oracle.insert(key, float(key), t)
                    alive.append(key)
        tree.check_invariants()
        assert tree.counters.merges > 0
        # Snapshots across the whole history match the oracle.
        for t in range(1, 400, 13):
            assert tree.range_snapshot(1, 1000, t) == sorted(oracle.snapshot(t))

    def test_root_shrink_keeps_queries_working(self, pool):
        tree = MVBT(pool, MVBTConfig(capacity=4), key_space=KEY_SPACE)
        for i in range(1, 60):
            tree.insert(i, float(i), t=i)
        for i in range(1, 55):
            tree.delete(i, t=100 + i)
        tree.check_invariants()
        remaining = tree.range_snapshot(1, 1000, 200)
        assert [k for k, _ in remaining] == list(range(55, 60))

    def test_disposal_counter_on_same_instant_churn(self, pool):
        tree = MVBT(pool, MVBTConfig(capacity=4), key_space=KEY_SPACE,
                    dispose_pages=True)
        # Many inserts at one instant force splits of pages born at that
        # same instant -> disposals.
        for i in range(1, 40):
            tree.insert(i, float(i), t=5)
        tree.check_invariants()
        assert tree.counters.disposals > 0
        # History at the shared instant is still complete.
        assert len(tree.range_snapshot(1, 1000, 5)) == 39


class TestRangeSnapshot:
    def test_range_filter(self, tree):
        for i in range(1, 20):
            tree.insert(i * 10, float(i), t=i)
        result = tree.range_snapshot(50, 120, t=19)
        assert result == [(50, 5.0), (60, 6.0), (70, 7.0), (80, 8.0),
                          (90, 9.0), (100, 10.0), (110, 11.0)]

    def test_snapshot_respects_time(self, tree):
        tree.insert(10, 1.0, t=5)
        tree.insert(20, 2.0, t=10)
        assert tree.range_snapshot(1, 1000, 7) == [(10, 1.0)]

    def test_empty_range_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.range_snapshot(10, 10, 5)


class TestRectangleQuery:
    def test_finds_tuples_intersecting_rectangle(self, tree):
        tree.insert(10, 1.0, t=5)    # [5, 20)
        tree.delete(10, t=20)
        tree.insert(50, 2.0, t=25)   # [25, now)
        # Rectangle covering instants [18, 30): both tuples intersect.
        result = tree.rectangle_query(1, 1000, 18, 30)
        assert [(k, v) for (k, s, e, v) in result] == [(10, 1.0), (50, 2.0)]

    def test_excludes_dead_before_window(self, tree):
        tree.insert(10, 1.0, t=5)
        tree.delete(10, t=8)
        assert tree.rectangle_query(1, 1000, 8, 30) == []

    def test_excludes_born_after_window(self, tree):
        tree.insert(10, 1.0, t=50)
        assert tree.rectangle_query(1, 1000, 1, 50) == []

    def test_key_range_filter(self, tree):
        tree.insert(10, 1.0, t=5)
        tree.insert(500, 2.0, t=5)
        result = tree.rectangle_query(100, 1000, 1, 10)
        assert [(k, v) for (k, s, e, v) in result] == [(500, 2.0)]

    def test_no_duplicates_across_copies(self, pool):
        """A long-lived tuple copied through many version splits must be
        reported exactly once."""
        tree = MVBT(pool, MVBTConfig(capacity=4), key_space=KEY_SPACE)
        tree.insert(500, 99.0, t=1)          # long-lived tuple
        for i in range(1, 150):              # churn forces many splits
            key = i % 400 + 1
            tree.insert(key, float(i), t=i + 1)
            tree.delete(key, t=i + 1)
        result = tree.rectangle_query(500, 501, 1, 1000)
        assert len(result) == 1
        assert result[0][0] == 500
        assert result[0][3] == 99.0

    def test_matches_oracle_on_mixed_stream(self, pool):
        tree = MVBT(pool, MVBTConfig(capacity=5), key_space=KEY_SPACE)
        oracle = TupleStoreOracle()
        alive = []
        state = 11
        for t in range(1, 250):
            state = (state * 48271) % (2**31 - 1)
            if alive and state % 4 == 0:
                key = alive.pop(state % len(alive))
                tree.delete(key, t)
                oracle.delete(key, t)
            else:
                key = state % 800 + 1
                if key not in alive:
                    tree.insert(key, float(key % 13), t)
                    oracle.insert(key, float(key % 13), t)
                    alive.append(key)
        for (low, high, ts, te) in [(1, 1000, 1, 300), (100, 300, 50, 80),
                                    (400, 900, 200, 210), (1, 50, 1, 249),
                                    (700, 701, 100, 150)]:
            got = tree.rectangle_query(low, high, ts, te)
            expected = oracle.rectangle_tuples(low, high, ts, te)
            assert sorted((k, v) for (k, s, e, v) in got) \
                == sorted((k, v) for (k, s, e, v) in expected), \
                (low, high, ts, te)


class TestCounters:
    def test_counters_track_operations(self, tree):
        for i in range(1, 30):
            tree.insert(i, 1.0, t=i)
        tree.delete(5, t=40)
        counters = tree.counters
        assert counters.inserts == 29
        assert counters.deletes == 1
        assert counters.version_splits > 0
