"""Hypothesis property tests: MVBT vs the tuple-store oracle.

Streams are generated as abstract operation sequences (insert/delete with
small key/time deltas) and replayed against both the MVBT and the oracle;
snapshots and rectangle queries across the whole history must agree and the
structural invariants must hold.
"""

from hypothesis import given, settings, strategies as st

from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import TupleStoreOracle

KEY_SPACE = (1, 200)


@st.composite
def op_streams(draw):
    """A legal transaction-time stream of (op, key, dt) actions."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "insert", "insert", "delete"]),
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=3),  # time advance
        ),
        min_size=1, max_size=150,
    ))


def replay(stream, capacity=5):
    pool = BufferPool(InMemoryDiskManager(), capacity=1024)
    tree = MVBT(pool, MVBTConfig(capacity=capacity), key_space=KEY_SPACE)
    oracle = TupleStoreOracle()
    alive = set()
    t = 1
    for op, key, dt in stream:
        t += dt
        if op == "insert":
            if key in alive:
                continue
            tree.insert(key, float(key % 7), t)
            oracle.insert(key, float(key % 7), t)
            alive.add(key)
        else:
            if key not in alive:
                continue
            tree.delete(key, t)
            oracle.delete(key, t)
            alive.discard(key)
    return tree, oracle, t


@settings(max_examples=50, deadline=None)
@given(op_streams())
def test_invariants_hold(stream):
    tree, _, _ = replay(stream)
    tree.check_invariants()


@settings(max_examples=50, deadline=None)
@given(op_streams(), st.integers(min_value=1, max_value=600))
def test_full_range_snapshot_matches_oracle(stream, t):
    tree, oracle, _ = replay(stream)
    assert tree.range_snapshot(*KEY_SPACE, t) == sorted(oracle.snapshot(t))


@settings(max_examples=50, deadline=None)
@given(
    op_streams(),
    st.integers(min_value=1, max_value=199),
    st.integers(min_value=1, max_value=80),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=120),
)
def test_rectangle_query_matches_oracle(stream, low, key_width, t1, t_width):
    tree, oracle, _ = replay(stream)
    high = min(low + key_width, KEY_SPACE[1])
    t2 = t1 + t_width
    got = tree.rectangle_query(low, high, t1, t2)
    expected = oracle.rectangle_tuples(low, high, t1, t2)
    assert sorted((k, s, v) for (k, s, e, v) in got) \
        == sorted((k, s, v) for (k, s, e, v) in expected)


@settings(max_examples=30, deadline=None)
@given(op_streams(), st.integers(min_value=1, max_value=199),
       st.integers(min_value=1, max_value=500))
def test_point_snapshot_matches_oracle(stream, key, t):
    tree, oracle, _ = replay(stream)
    expected = dict(oracle.snapshot(t)).get(key)
    assert tree.snapshot_point(key, t) == expected


@settings(max_examples=25, deadline=None)
@given(op_streams())
def test_capacity_choice_is_semantically_invisible(stream):
    small, _, t_end = replay(stream, capacity=4)
    large, _, _ = replay(stream, capacity=16)
    for t in range(1, t_end + 2, max(1, t_end // 7)):
        assert small.range_snapshot(*KEY_SPACE, t) \
            == large.range_snapshot(*KEY_SPACE, t)
