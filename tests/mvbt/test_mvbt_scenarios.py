"""Scenario tests for the MVBT: deletion waves, churn, rebirth patterns,
paged roots, and I/O bounds of the optimal range-snapshot query."""

import pytest

from repro.errors import KeyNotFoundError
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 2001)


def fresh_tree(capacity=6, buffer_pages=1024):
    pool = BufferPool(InMemoryDiskManager(), capacity=buffer_pages)
    return MVBT(pool, MVBTConfig(capacity=capacity), key_space=KEY_SPACE)


class TestDeletionWaves:
    def test_delete_everything_then_rebuild(self):
        tree = fresh_tree()
        for i in range(1, 200):
            tree.insert(i * 10, float(i), t=i)
        for i in range(1, 200):
            tree.delete(i * 10, t=200 + i)
        assert tree.range_snapshot(1, 2000, 500) == []
        # History intact through the teardown:
        assert len(tree.range_snapshot(1, 2000, 199)) == 199
        # The warehouse accepts a full rebuild afterwards.
        for i in range(1, 100):
            tree.insert(i * 20, float(-i), t=500 + i)
        tree.check_invariants()
        assert len(tree.range_snapshot(1, 2000, 700)) == 99

    def test_alternating_birth_death_per_key(self):
        tree = fresh_tree()
        t = 1
        for round_no in range(6):
            for key in range(100, 150):
                tree.insert(key, float(round_no), t)
                t += 1
            for key in range(100, 150):
                tree.delete(key, t)
                t += 1
        tree.check_invariants()
        # After the last insert and before the first delete of each round
        # the full cohort is alive.
        for round_no in range(6):
            mid = round_no * 100 + 50
            assert len(tree.range_snapshot(1, 2000, mid)) == 50
        # Gaps between rounds see nothing.
        assert tree.range_snapshot(1, 2000, 100) == []

    def test_delete_after_delete_rejected(self):
        tree = fresh_tree()
        tree.insert(5, 1.0, t=1)
        tree.delete(5, t=2)
        with pytest.raises(KeyNotFoundError):
            tree.delete(5, t=3)


class TestRangeSnapshotEfficiency:
    def test_snapshot_ios_scale_with_result_not_history(self):
        """The optimal-query property: a snapshot pays O(log n + s/b), not
        O(history size)."""
        tree = fresh_tree(capacity=16)
        t = 1
        # Long history: 30 generations of 60 keys.
        for _ in range(30):
            for key in range(500, 560):
                tree.insert(key, 1.0, t)
                t += 1
            for key in range(500, 560):
                tree.delete(key, t)
                t += 1
        pool = tree.pool
        pool.clear()
        before = pool.stats.snapshot()
        # t-61: after the last generation's final insert, before its
        # first delete — the whole generation is alive.
        result = tree.range_snapshot(1, 2000, t - 61)
        reads = pool.stats.delta(before).logical_reads
        assert len(result) == 60
        total_pages = len(tree.page_ids())
        assert total_pages > 100
        assert reads < total_pages / 4  # far below a full sweep

    def test_point_snapshot_bounded_by_height(self):
        tree = fresh_tree(capacity=8)
        for i in range(1, 500):
            tree.insert((i * 13) % 1999 + 1, 1.0, t=i)
        pool = tree.pool
        pool.clear()
        before = pool.stats.snapshot()
        tree.snapshot_point(1000, 400)
        reads = pool.stats.delta(before).logical_reads
        assert reads <= 6  # root + a short path


class TestPagedRootsCosts:
    def test_paged_roots_add_bounded_lookup_cost(self):
        pool = BufferPool(InMemoryDiskManager(), capacity=1024)
        tree = MVBT(pool, MVBTConfig(capacity=6), key_space=KEY_SPACE,
                    paged_roots=True)
        for i in range(1, 400):
            tree.insert((i * 13) % 1999 + 1, 1.0, t=i)
        assert len(tree.roots) > 3
        pool.clear()
        before = pool.stats.snapshot()
        tree.snapshot_point(1000, 200)
        reads = pool.stats.delta(before).logical_reads
        assert reads <= 10  # directory descent + tree descent


class TestUpdateSemantics:
    def test_update_preserves_old_version(self):
        tree = fresh_tree()
        tree.insert(100, 1.0, t=5)
        for t in range(6, 30):
            tree.update(100, float(t), t)
        tree.check_invariants()
        assert tree.snapshot_point(100, 5) == 1.0
        for t in range(6, 30):
            assert tree.snapshot_point(100, t) == float(t)

    def test_update_missing_key_rejected(self):
        tree = fresh_tree()
        with pytest.raises(KeyNotFoundError):
            tree.update(100, 1.0, t=5)


class TestCountersAndDisposal:
    def test_no_disposal_mode_keeps_empty_lifespan_pages(self):
        pool = BufferPool(InMemoryDiskManager(), capacity=1024)
        keeping = MVBT(pool, MVBTConfig(capacity=4), key_space=KEY_SPACE,
                       dispose_pages=False)
        for i in range(1, 40):
            keeping.insert(i, float(i), t=5)  # same-instant burst
        assert keeping.counters.disposals == 0
        # Answers unaffected.
        assert len(keeping.range_snapshot(1, 2000, 5)) == 39
        keeping.check_invariants()

    def test_version_split_counter_monotone(self):
        tree = fresh_tree(capacity=4)
        last = 0
        for i in range(1, 200):
            tree.insert((i * 7) % 1999 + 1, 1.0, t=i)
            assert tree.counters.version_splits >= last
            last = tree.counters.version_splits
        assert last > 0
