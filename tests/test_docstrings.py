"""Quality gate: every public module, class and function is documented.

The library's deliverable includes doc comments on every public item; this
test enforces it structurally so regressions fail CI rather than review.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_") and leaf != "__main__":
            continue
        names.append(info.name)
    return names


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert inspect.getdoc(module), f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module_name}: undocumented public items: {undocumented}"
    )
