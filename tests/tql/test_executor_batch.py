"""``execute_select_batch``: one batched sweep, per-statement AS OF
resolution, and exception-in-band slots that mirror serial ``execute``."""

import random

import pytest

from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError
from repro.tql import executor
from repro.tql.parser import parse

KEYS = 120
KEY_SPACE = (1, KEYS + 1)


@pytest.fixture()
def warehouse():
    warehouse = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
    rng = random.Random(31)
    t = 1
    for key in range(1, KEYS + 1):
        warehouse.insert(key, float(rng.randint(1, 30)), t)
        if rng.random() < 0.25:
            t += 1
    return warehouse


def _statements(now, count, seed=32):
    rng = random.Random(seed)
    aggs = ("SUM(value)", "COUNT(*)", "AVG(value)", "MIN(value)",
            "MAX(value)")
    out = []
    for _ in range(count):
        lo = rng.randint(1, KEYS - 5)
        hi = rng.randint(lo + 1, KEYS + 1)
        t0 = rng.randint(1, now)
        t1 = rng.randint(t0 + 1, now + 2)
        out.append(parse(
            f"SELECT {rng.choice(aggs)} WHERE key IN [{lo}, {hi}) "
            f"AND TIME DURING [{t0}, {t1})"))
    return out


class TestBatchExecution:
    def test_matches_serial_execute_with_mixed_as_of(self, warehouse):
        now = warehouse.now
        statements = _statements(now, 40)
        rng = random.Random(33)
        requests = [(stmt, rng.choice((None, now, max(1, now // 2))))
                    for stmt in statements]

        def shape(outcome):
            if isinstance(outcome, BaseException):
                return f"{type(outcome).__name__}: {outcome}"
            return repr(outcome)

        serial = []
        for stmt, as_of in requests:
            try:
                serial.append(shape(executor.execute(warehouse, stmt,
                                                     as_of=as_of)))
            except Exception as exc:  # noqa: BLE001 — twin captures all
                serial.append(shape(exc))
        batched = [shape(x)
                   for x in executor.execute_select_batch(warehouse,
                                                          requests)]
        assert batched == serial

    def test_as_of_clips_intervals_per_statement(self, warehouse):
        now = warehouse.now
        stmt = parse(f"SELECT SUM(value) WHERE TIME DURING [1, {now + 100})")
        pinned = max(1, now // 2)
        [clipped] = executor.execute_select_batch(warehouse,
                                                  [(stmt, pinned)])
        assert clipped == executor.execute(warehouse, stmt, as_of=pinned)
        [open_now] = executor.execute_select_batch(warehouse,
                                                   [(stmt, None)])
        assert open_now == executor.execute(warehouse, stmt)

    def test_timeline_rejected_in_band(self, warehouse):
        good = parse("SELECT SUM(value)")
        timeline = parse(f"SELECT TIMELINE(SUM, 4) "
                         f"WHERE TIME DURING [1, {warehouse.now + 1})")
        results = executor.execute_select_batch(
            warehouse, [(good, None), (timeline, None)])
        assert results[0] == executor.execute(warehouse, good)
        assert isinstance(results[1], QueryError)

    def test_empty_interval_at_snapshot_fails_only_itself(self, warehouse):
        now = warehouse.now
        good = parse("SELECT COUNT(*)")
        # Clipping to as_of empties this interval: serial raises, the
        # batch slot carries the same error in-band.
        late = parse(f"SELECT SUM(value) WHERE TIME DURING "
                     f"[{now}, {now + 5})")
        as_of = max(1, now - 1)
        with pytest.raises(QueryError):
            executor.execute(warehouse, late, as_of=as_of)
        results = executor.execute_select_batch(
            warehouse, [(late, as_of), (good, as_of)])
        assert isinstance(results[0], QueryError)
        assert results[1] == executor.execute(warehouse, good, as_of=as_of)

    def test_non_select_rejected_in_band(self, warehouse):
        insert = parse("INSERT key 5 VALUE 1.0 AT 9999")
        [result] = executor.execute_select_batch(warehouse,
                                                 [(insert, None)])
        assert isinstance(result, QueryError)

    def test_empty_request_list(self, warehouse):
        assert executor.execute_select_batch(warehouse, []) == []
