"""Tests for TQL execution: text queries must match the direct API."""

import pytest

from repro.core.aggregates import SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import TemporalWarehouse
from repro.errors import QueryError
from repro.tql import execute, explain, parse

KEY_SPACE = (1, 10_001)


@pytest.fixture()
def warehouse():
    wh = TemporalWarehouse(key_space=KEY_SPACE, page_capacity=8)
    wh.insert(1042, 250.0, t=10)
    wh.insert(2117, 900.0, t=12)
    wh.insert(2118, 100.0, t=15)
    wh.delete(1042, t=20)
    wh.insert(1042, 300.0, t=25)   # reborn with a new value
    return wh


class TestSelect:
    def test_sum_with_rectangle(self, warehouse):
        result = execute(
            warehouse,
            "SELECT SUM(value) WHERE key IN [2000, 3000) "
            "AND time DURING [12, 18)",
        )
        assert result == 1000.0

    def test_defaults_cover_everything_so_far(self, warehouse):
        assert execute(warehouse, "SELECT COUNT(*)") == 4.0

    def test_key_equals_and_time_at(self, warehouse):
        assert execute(
            warehouse, "SELECT SUM(value) WHERE key = 1042 AND time AT 15"
        ) == 250.0
        assert execute(
            warehouse, "SELECT SUM(value) WHERE key = 1042 AND time AT 20"
        ) == 0.0
        assert execute(
            warehouse, "SELECT SUM(value) WHERE key = 1042 AND time AT 30"
        ) == 300.0

    def test_avg_and_empty_rectangle(self, warehouse):
        assert execute(
            warehouse,
            "SELECT AVG(value) WHERE key IN [2000, 3000) AND time AT 16",
        ) == 500.0
        assert execute(
            warehouse, "SELECT AVG(value) WHERE time DURING [1, 5)"
        ) is None

    def test_min_max_via_retrieval(self, warehouse):
        assert execute(warehouse, "SELECT MIN(value)") == 100.0
        assert execute(warehouse, "SELECT MAX(value)") == 900.0

    def test_matches_direct_api(self, warehouse):
        text = ("SELECT SUM(value) WHERE key IN [1000, 3000) "
                "AND time DURING [10, 30)")
        direct = warehouse.sum(KeyRange(1000, 3000), Interval(10, 30))
        assert execute(warehouse, text) == direct

    def test_timeline(self, warehouse):
        series = execute(
            warehouse,
            "SELECT TIMELINE(COUNT, 3) WHERE time DURING [10, 25)",
        )
        assert len(series) == 3
        assert [bucket.start for bucket, _ in series] == [10, 15, 20]
        from repro.core.aggregates import COUNT
        direct = warehouse.aggregates.timeline(
            KeyRange(*KEY_SPACE), Interval(10, 25), 3, COUNT)
        assert series == direct
        # COUNT per bucket computed correctly:
        assert [v for _, v in series] == [2.0, 3.0, 2.0]


class TestSnapshotAndHistory:
    def test_snapshot(self, warehouse):
        rows = execute(warehouse, "SNAPSHOT AT 16 WHERE key IN [1000, 3000)")
        assert rows == [(1042, 250.0), (2117, 900.0), (2118, 100.0)]
        rows = execute(warehouse, "SNAPSHOT AT 22 WHERE key IN [1000, 2000)")
        assert rows == []

    def test_snapshot_whole_space(self, warehouse):
        rows = execute(warehouse, "SNAPSHOT AT 16")
        assert len(rows) == 3

    def test_history(self, warehouse):
        versions = execute(warehouse, "HISTORY OF 1042")
        assert [(v.interval.start, v.value) for v in versions] \
            == [(10, 250.0), (25, 300.0)]


class TestExplain:
    def test_explain_select(self, warehouse):
        plan = explain(warehouse, "SELECT SUM(value)")
        assert plan.plan in ("mvsbt", "mvbt-scan")

    def test_explain_min_names_open_problem(self, warehouse):
        plan = explain(warehouse, "SELECT MIN(value)")
        assert plan.plan == "mvbt-scan"
        assert "open problem" in plan.reason

    def test_explain_rejects_non_select(self, warehouse):
        with pytest.raises(QueryError):
            explain(warehouse, "HISTORY OF 5")


class TestStatementObjects:
    def test_pre_parsed_statement_accepted(self, warehouse):
        stmt = parse("SELECT COUNT(*)")
        assert execute(warehouse, stmt) == 4.0

    def test_unknown_statement_rejected(self, warehouse):
        with pytest.raises(QueryError):
            execute(warehouse, 42)  # type: ignore[arg-type]
