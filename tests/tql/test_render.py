"""Renderer tests and the parse/render round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.tql.parser import (
    AggSpec,
    HistoryStatement,
    SelectStatement,
    SnapshotStatement,
    parse,
)
from repro.tql.render import render


class TestRenderExamples:
    def test_select_full(self):
        stmt = SelectStatement(AggSpec("SUM"), key_range=(10, 20),
                               interval=(5, 50))
        assert render(stmt) == (
            "SELECT SUM(value) WHERE key IN [10, 20) AND time DURING [5, 50)"
        )

    def test_select_count_star(self):
        stmt = SelectStatement(AggSpec("COUNT"), None, None)
        assert render(stmt) == "SELECT COUNT(*)"

    def test_single_key_and_instant_use_sugar(self):
        stmt = SelectStatement(AggSpec("AVG"), key_range=(42, 43),
                               interval=(7, 8))
        assert render(stmt) == "SELECT AVG(value) WHERE key = 42 AND time AT 7"

    def test_timeline(self):
        stmt = SelectStatement(AggSpec("SUM", timeline_buckets=4),
                               None, (1, 101))
        assert render(stmt) \
            == "SELECT TIMELINE(SUM, 4) WHERE time DURING [1, 101)"

    def test_snapshot_and_history(self):
        assert render(SnapshotStatement(at=9, key_range=None)) \
            == "SNAPSHOT AT 9"
        assert render(SnapshotStatement(at=9, key_range=(5, 6))) \
            == "SNAPSHOT AT 9 WHERE key = 5"
        assert render(HistoryStatement(key=7)) == "HISTORY OF 7"

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            render("not a statement")


# -- round-trip property -----------------------------------------------------

def ranges():
    return st.tuples(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    ).map(lambda p: (min(p), max(p) + 1))


def agg_specs():
    plain = st.sampled_from(["SUM", "COUNT", "AVG", "MIN", "MAX"]).map(
        AggSpec)
    timeline = st.tuples(
        st.sampled_from(["SUM", "COUNT", "AVG"]),
        st.integers(min_value=1, max_value=50),
    ).map(lambda p: AggSpec(p[0], timeline_buckets=p[1]))
    return st.one_of(plain, timeline)


def statements():
    selects = st.tuples(
        agg_specs(),
        st.one_of(st.none(), ranges()),
        st.one_of(st.none(), ranges()),
    ).map(lambda p: SelectStatement(*p))
    snapshots = st.tuples(
        st.integers(min_value=1, max_value=10**6),
        st.one_of(st.none(), ranges()),
    ).map(lambda p: SnapshotStatement(*p))
    histories = st.integers(min_value=1, max_value=10**6).map(
        HistoryStatement)
    return st.one_of(selects, snapshots, histories)


@settings(max_examples=200, deadline=None)
@given(statements())
def test_parse_render_round_trip(statement):
    assert parse(render(statement)) == statement


@settings(max_examples=100, deadline=None)
@given(statements())
def test_render_is_idempotent_through_parse(statement):
    text = render(statement)
    assert render(parse(text)) == text
