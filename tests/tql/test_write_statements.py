"""Tests for TQL INSERT/DELETE statements."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.warehouse import TemporalWarehouse
from repro.errors import DuplicateKeyError, TimeOrderError
from repro.tql import execute, parse, render
from repro.tql.parser import DeleteStatement, InsertStatement


@pytest.fixture()
def warehouse():
    return TemporalWarehouse(key_space=(1, 1001), page_capacity=8)


class TestParsing:
    def test_insert(self):
        assert parse("INSERT KEY 42 VALUE 2.5 AT 10") \
            == InsertStatement(key=42, value=2.5, at=10)

    def test_insert_negative_value(self):
        assert parse("insert key 42 value -7 at 10").value == -7.0

    def test_delete(self):
        assert parse("DELETE KEY 42 AT 99") == DeleteStatement(key=42, at=99)

    def test_float_where_int_needed_rejected(self):
        from repro.tql.parser import TQLSyntaxError
        with pytest.raises(TQLSyntaxError):
            parse("INSERT KEY 4.5 VALUE 1 AT 10")
        with pytest.raises(TQLSyntaxError):
            parse("DELETE KEY 4 AT 9.5")


class TestExecution:
    def test_insert_then_query(self, warehouse):
        execute(warehouse, "INSERT KEY 100 VALUE 5.5 AT 10")
        assert execute(warehouse, "SELECT SUM(value)") == 5.5

    def test_full_lifecycle(self, warehouse):
        execute(warehouse, "INSERT KEY 100 VALUE 5 AT 10")
        execute(warehouse, "INSERT KEY 200 VALUE 7 AT 12")
        message = execute(warehouse, "DELETE KEY 100 AT 20")
        assert "value was 5" in message
        assert execute(
            warehouse, "SELECT COUNT(*) WHERE time AT 25") == 1.0
        assert execute(
            warehouse, "SELECT COUNT(*) WHERE time AT 15") == 2.0

    def test_library_errors_propagate(self, warehouse):
        execute(warehouse, "INSERT KEY 100 VALUE 5 AT 10")
        with pytest.raises(DuplicateKeyError):
            execute(warehouse, "INSERT KEY 100 VALUE 6 AT 11")
        with pytest.raises(TimeOrderError):
            execute(warehouse, "INSERT KEY 300 VALUE 6 AT 5")


class TestRenderRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=1, max_value=10**6),
           st.one_of(st.integers(min_value=-10**6, max_value=10**6),
                     st.floats(allow_nan=False, allow_infinity=False,
                               min_value=-1e6, max_value=1e6)),
           st.integers(min_value=1, max_value=10**6))
    def test_insert_round_trip(self, key, value, at):
        stmt = InsertStatement(key=key, value=float(value), at=at)
        rendered = render(stmt)
        reparsed = parse(rendered)
        assert reparsed.key == stmt.key and reparsed.at == stmt.at
        assert reparsed.value == pytest.approx(stmt.value)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_delete_round_trip(self, key, at):
        stmt = DeleteStatement(key=key, at=at)
        assert parse(render(stmt)) == stmt
