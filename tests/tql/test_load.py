"""Tests for TQL ``LOAD [BUFFERED]`` bulk-ingest statements."""

import pytest

from repro.core.warehouse import TemporalWarehouse
from repro.tql import execute, parse, render
from repro.tql.parser import LoadStatement, TQLSyntaxError


@pytest.fixture()
def warehouse():
    return TemporalWarehouse(key_space=(1, 1001), page_capacity=8)


class TestParsing:
    def test_load(self):
        stmt = parse("LOAD INSERT KEY 1 VALUE 2.5 AT 3, "
                     "DELETE KEY 1 AT 9")
        assert stmt == LoadStatement(
            events=(("insert", 1, 2.5, 3), ("delete", 1, 0.0, 9)),
            buffered=False,
        )

    def test_load_buffered(self):
        stmt = parse("load buffered insert key 7 value -1 at 2")
        assert stmt.buffered
        assert stmt.events == (("insert", 7, -1.0, 2),)

    def test_empty_load_rejected(self):
        with pytest.raises(TQLSyntaxError, match="INSERT or DELETE"):
            parse("LOAD")

    def test_trailing_comma_rejected(self):
        with pytest.raises(TQLSyntaxError):
            parse("LOAD INSERT KEY 1 VALUE 1 AT 1,")

    def test_select_inside_load_rejected(self):
        with pytest.raises(TQLSyntaxError):
            parse("LOAD SELECT SUM(value)")

    def test_render_round_trip(self):
        stmt = LoadStatement(
            events=(("insert", 5, 1.25, 2), ("insert", 8, 3.0, 2),
                    ("delete", 5, 0.0, 6)),
            buffered=True,
        )
        assert parse(render(stmt)) == stmt
        assert render(stmt).startswith("LOAD BUFFERED ")
        direct = LoadStatement(events=stmt.events)
        assert parse(render(direct)) == direct


class TestExecution:
    EVENTS = ("INSERT KEY 100 VALUE 5 AT 10, "
              "INSERT KEY 200 VALUE 7 AT 12, "
              "DELETE KEY 100 AT 20")

    def test_load_matches_single_statements(self, warehouse):
        message = execute(warehouse, f"LOAD {self.EVENTS}")
        assert "loaded 3 events" in message
        assert "2 inserts" in message and "1 deletes" in message
        reference = TemporalWarehouse(key_space=(1, 1001), page_capacity=8)
        for text in self.EVENTS.split(", "):
            execute(reference, text)
        for query in ("SELECT SUM(value)", "SELECT COUNT(*) WHERE time AT 15",
                      "SELECT AVG(value) WHERE time DURING [10, 30)"):
            assert repr(execute(warehouse, query)) == repr(
                execute(reference, query))

    def test_buffered_matches_direct(self, warehouse):
        execute(warehouse, f"LOAD BUFFERED {self.EVENTS}")
        reference = TemporalWarehouse(key_space=(1, 1001), page_capacity=8)
        execute(reference, f"LOAD {self.EVENTS}")
        for query in ("SELECT SUM(value)", "SELECT COUNT(*)",
                      "SNAPSHOT AT 15"):
            assert repr(execute(warehouse, query)) == repr(
                execute(reference, query))

    def test_mode_is_reported(self, warehouse):
        assert "mode=buffered" in execute(
            warehouse, "LOAD BUFFERED INSERT KEY 1 VALUE 1 AT 1")
        assert "mode=direct" in execute(
            warehouse, "LOAD INSERT KEY 2 VALUE 1 AT 2")

    def test_out_of_order_load_rejected(self, warehouse):
        with pytest.raises(ValueError, match="chronological"):
            execute(warehouse, "LOAD INSERT KEY 1 VALUE 1 AT 9, "
                               "INSERT KEY 2 VALUE 1 AT 3")
