"""Tests for the TQL shell (run_line is exercised directly; the whole
loop is driven through stdin once)."""

import io

import pytest

from repro.core.warehouse import TemporalWarehouse
from repro.tql.__main__ import HELP, build_demo_warehouse, main, run_line


@pytest.fixture()
def warehouse():
    wh = TemporalWarehouse(key_space=(1, 1001), page_capacity=8)
    wh.insert(100, 5.0, t=10)
    wh.insert(200, 7.0, t=12)
    return wh


class TestRunLine:
    def test_select(self, warehouse):
        assert run_line(warehouse, "SELECT SUM(value)") == "12.0"

    def test_explain(self, warehouse):
        out = run_line(warehouse, "EXPLAIN SELECT SUM(value)")
        assert "reads" in out

    def test_snapshot_list_output(self, warehouse):
        out = run_line(warehouse, "SNAPSHOT AT 11")
        assert "(100, 5.0)" in out

    def test_empty_result(self, warehouse):
        assert run_line(warehouse, "SNAPSHOT AT 5") == "(empty)"

    def test_error_reported_not_raised(self, warehouse):
        out = run_line(warehouse, "SELECT banana")
        assert out.startswith("error:")

    def test_describe(self, warehouse):
        out = run_line(warehouse, "\\describe")
        assert "temporal-warehouse" in out

    def test_help(self, warehouse):
        assert run_line(warehouse, "\\help") == HELP

    def test_quit_returns_none(self, warehouse):
        assert run_line(warehouse, "\\q") is None
        assert run_line(warehouse, "exit") is None

    def test_blank_line(self, warehouse):
        assert run_line(warehouse, "   ") == ""


class TestShellLoop:
    def test_scripted_session(self, monkeypatch, capsys):
        lines = iter(["SELECT COUNT(*)", "\\q"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["--scale", "0.001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "demo warehouse" in out
        assert "1000.0" in out

    def test_eof_ends_session(self, monkeypatch, capsys):
        def raise_eof(prompt=""):
            raise EOFError
        monkeypatch.setattr("builtins.input", raise_eof)
        assert main(["--scale", "0.001"]) == 0

    def test_durable_mode(self, tmp_path, monkeypatch, capsys):
        lines = iter(["\\q"])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        code = main(["--dir", str(tmp_path / "wh")])
        assert code == 0
        assert "durable warehouse" in capsys.readouterr().out


def test_demo_warehouse_builds(capsys):
    warehouse = build_demo_warehouse(0.001)
    assert warehouse.now > 1
