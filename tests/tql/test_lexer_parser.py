"""Tests for the TQL lexer and parser."""

import pytest

from repro.tql.lexer import TQLLexError, tokenize
from repro.tql.parser import (
    AggSpec,
    HistoryStatement,
    SelectStatement,
    SnapshotStatement,
    TQLSyntaxError,
    parse,
)


class TestLexer:
    def test_tokenizes_keywords_case_insensitively(self):
        kinds = [t.kind for t in tokenize("select Sum WHERE key")]
        assert kinds == ["SELECT", "SUM", "WHERE", "KEY", "EOF"]

    def test_integers_and_symbols(self):
        kinds = [t.kind for t in tokenize("[1, 200)")]
        assert kinds == ["[", "NUMBER", ",", "NUMBER", ")", "EOF"]

    def test_floats_and_negatives(self):
        tokens = tokenize("-2.5 17")
        assert [t.text for t in tokens[:-1]] == ["-2.5", "17"]
        assert all(t.kind == "NUMBER" for t in tokens[:-1])

    def test_unknown_word_rejected(self):
        with pytest.raises(TQLLexError):
            tokenize("SELECT banana")

    def test_unlexable_symbol_rejected(self):
        with pytest.raises(TQLLexError):
            tokenize("SELECT SUM(value) WHERE key > 5")  # '>' unsupported

    def test_positions_recorded(self):
        tokens = tokenize("SELECT SUM")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestParseSelect:
    def test_full_select(self):
        stmt = parse(
            "SELECT SUM(value) WHERE key IN [100, 200) "
            "AND time DURING [5, 50)"
        )
        assert stmt == SelectStatement(
            agg=AggSpec("SUM"), key_range=(100, 200), interval=(5, 50)
        )

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) WHERE time AT 75")
        assert stmt.agg == AggSpec("COUNT")
        assert stmt.interval == (75, 76)
        assert stmt.key_range is None

    def test_count_value_accepted(self):
        assert parse("SELECT COUNT(value)").agg == AggSpec("COUNT")

    def test_key_equals(self):
        stmt = parse("SELECT AVG(value) WHERE key = 42")
        assert stmt.key_range == (42, 43)

    def test_bare_select_no_where(self):
        stmt = parse("SELECT SUM(value)")
        assert stmt.key_range is None and stmt.interval is None

    def test_predicates_in_either_order(self):
        a = parse("SELECT SUM(value) WHERE key = 1 AND time AT 2")
        b = parse("SELECT SUM(value) WHERE time AT 2 AND key = 1")
        assert a == b

    def test_timeline(self):
        stmt = parse("SELECT TIMELINE(SUM, 4) WHERE time DURING [1, 101)")
        assert stmt.agg == AggSpec("SUM", timeline_buckets=4)

    def test_min_max(self):
        assert parse("SELECT MIN(value)").agg.name == "MIN"
        assert parse("SELECT MAX(value)").agg.name == "MAX"


class TestParseOthers:
    def test_snapshot(self):
        stmt = parse("SNAPSHOT AT 75 WHERE key IN [10, 20)")
        assert stmt == SnapshotStatement(at=75, key_range=(10, 20))

    def test_snapshot_without_filter(self):
        assert parse("SNAPSHOT AT 9") == SnapshotStatement(at=9,
                                                           key_range=None)

    def test_history(self):
        assert parse("HISTORY OF 1042") == HistoryStatement(key=1042)


class TestSyntaxErrors:
    @pytest.mark.parametrize("text", [
        "",                                        # nothing
        "SELECT",                                  # no aggregate
        "SELECT SUM value",                        # missing parens
        "SELECT SUM(*)",                           # * only for COUNT
        "SELECT SUM(value) WHERE",                 # dangling WHERE
        "SELECT SUM(value) WHERE key IN [5, 5)",   # empty range
        "SELECT SUM(value) WHERE key = 1 AND key = 2",   # duplicate
        "SELECT SUM(value) WHERE value AT 5",      # bad predicate subject
        "SELECT TIMELINE(MIN, 3)",                 # MIN not additive
        "SELECT TIMELINE(SUM, 0)",                 # zero buckets
        "SNAPSHOT 75",                             # missing AT
        "HISTORY 5",                               # missing OF
        "SELECT SUM(value) extra",                 # trailing input... lexes?
    ])
    def test_rejected(self, text):
        with pytest.raises(Exception) as exc_info:
            parse(text)
        assert isinstance(exc_info.value, (TQLSyntaxError, TQLLexError))

    def test_error_message_names_position(self):
        with pytest.raises(TQLSyntaxError, match="position"):
            parse("SELECT SUM(value) WHERE key IN 5")
