"""Tests for the insert-only range-temporal MIN/MAX index."""

import pytest

from repro.core.model import Interval, KeyRange, NOW
from repro.errors import QueryError, TimeOrderError
from repro.minmax.index import RangeMinMaxIndex
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 1001)
TIME_DOMAIN = (1, 10_001)


def fresh_index(mode="min", **kwargs):
    pool = BufferPool(InMemoryDiskManager(), capacity=4096)
    defaults = dict(mode=mode, key_space=KEY_SPACE, fanout=4, capacity=8,
                    time_domain=TIME_DOMAIN)
    defaults.update(kwargs)
    return RangeMinMaxIndex(pool, **defaults)


def brute(tuples, k1, k2, t1, t2, mode):
    fold = min if mode == "min" else max
    hits = [v for (k, s, e, v) in tuples
            if k1 <= k < k2 and s < t2 and e > t1]
    return fold(hits) if hits else None


class TestBasics:
    def test_empty_index(self):
        index = fresh_index()
        assert index.query(KeyRange(1, 1000), Interval(1, 100)) is None

    def test_single_tuple(self):
        index = fresh_index()
        index.insert(100, 5.0, start=10)
        assert index.query(KeyRange(1, 1000), Interval(1, 100)) == 5.0
        assert index.query(KeyRange(1, 100), Interval(1, 100)) is None
        assert index.query(KeyRange(100, 101), Interval(1, 100)) == 5.0
        assert index.query(KeyRange(1, 1000), Interval(1, 10)) is None

    def test_min_semantics(self):
        index = fresh_index("min")
        index.insert(100, 5.0, start=10)
        index.insert(200, 2.0, start=20)
        index.insert(300, 9.0, start=30)
        r = KeyRange(1, 1000)
        assert index.query(r, Interval(1, 100)) == 2.0
        assert index.query(KeyRange(250, 1000), Interval(1, 100)) == 9.0
        assert index.query(r, Interval(10, 20)) == 5.0

    def test_max_semantics(self):
        index = fresh_index("max")
        index.insert(100, 5.0, start=10)
        index.insert(200, 2.0, start=20)
        assert index.query(KeyRange(1, 1000), Interval(1, 100)) == 5.0
        assert index.query(KeyRange(150, 1000), Interval(1, 100)) == 2.0

    def test_finite_intervals_respected(self):
        index = fresh_index("min")
        index.insert(100, 1.0, start=10, end=20)
        index.insert(200, 5.0, start=15)
        r = KeyRange(1, 1000)
        assert index.query(r, Interval(12, 14)) == 1.0
        assert index.query(r, Interval(20, 30)) == 5.0   # 100 expired
        assert index.query(r, Interval(19, 21)) == 1.0   # overlaps both

    def test_query_at_instant(self):
        index = fresh_index("min")
        index.insert(100, 3.0, start=10, end=20)
        assert index.query_at(KeyRange(1, 1000), 15) == 3.0
        assert index.query_at(KeyRange(1, 1000), 20) is None


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            fresh_index("median")

    def test_bad_fanout_rejected(self):
        with pytest.raises(ValueError):
            fresh_index(fanout=1)

    def test_key_outside_space(self):
        index = fresh_index()
        with pytest.raises(QueryError):
            index.insert(0, 1.0, start=5)
        with pytest.raises(QueryError):
            index.insert(1001, 1.0, start=5)
        with pytest.raises(QueryError):
            index.query(KeyRange(1, 5000), Interval(1, 10))

    def test_time_order_enforced(self):
        index = fresh_index()
        index.insert(10, 1.0, start=50)
        with pytest.raises(TimeOrderError):
            index.insert(20, 1.0, start=49)

    def test_empty_validity_rejected(self):
        index = fresh_index()
        with pytest.raises(QueryError):
            index.insert(10, 1.0, start=10, end=10)


class TestStructure:
    def test_depth_covers_key_space(self):
        index = fresh_index(fanout=4)
        # 4^5 = 1024 >= 1000
        assert index.depth == 5

    def test_nodes_materialize_lazily(self):
        index = fresh_index()
        assert index.node_count() == 0
        index.insert(100, 1.0, start=5)
        assert index.node_count() == index.depth + 1

    def test_shared_path_nodes_reused(self):
        index = fresh_index(fanout=4)
        index.insert(100, 1.0, start=5)
        first = index.node_count()
        index.insert(101, 1.0, start=6)   # likely shares most of the path
        assert index.node_count() <= first + index.depth

    def test_invariants(self):
        index = fresh_index()
        for t in range(1, 100):
            index.insert((t * 37) % 999 + 1, float(t % 50), start=t)
        index.check_invariants()
        assert index.insertions == 99
        assert index.page_count() > 0


class TestAgainstBruteForce:
    @pytest.mark.parametrize("mode", ["min", "max"])
    def test_random_streams(self, mode):
        index = fresh_index(mode)
        tuples = []
        state = 47
        t = 1
        for _ in range(200):
            state = (state * 48271) % (2**31 - 1)
            key = state % 999 + 1
            value = float(state % 500)
            t += state % 3
            length = state % 300 + 1
            end = min(t + length, TIME_DOMAIN[1]) if state % 4 else NOW
            if end <= t:
                continue
            index.insert(key, value, start=t, end=end)
            tuples.append((key, t, end, value))
        probes = [
            (1, 1000, 1, 500), (100, 300, 50, 120), (500, 501, 1, 400),
            (1, 50, 200, 210), (900, 1000, 1, 5000), (1, 1000, 450, 451),
        ]
        for (k1, k2, t1, t2) in probes:
            expected = brute(tuples, k1, k2, t1, t2, mode)
            got = index.query(KeyRange(k1, k2), Interval(t1, t2))
            assert got == expected, (k1, k2, t1, t2)

    def test_query_cost_independent_of_hits(self):
        """The headline property: cost does not scale with qualifying
        tuples (unlike retrieval)."""
        index = fresh_index("min", fanout=8)
        for t in range(1, 2000):
            index.insert((t * 7) % 999 + 1, float(t % 100), start=t)
        pool = index.pool
        pool.clear()
        before = pool.stats.snapshot()
        index.query(KeyRange(1, 1000), Interval(1, 10_000))  # everything
        big = pool.stats.delta(before).logical_reads
        pool.clear()
        before = pool.stats.snapshot()
        index.query(KeyRange(400, 420), Interval(500, 600))  # tiny slice
        small = pool.stats.delta(before).logical_reads
        # Both are canonical-cover walks; neither scans 2000 tuples.
        assert big < 400
        assert small < 400
