"""Hypothesis property tests for the range MIN/MAX index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Interval, KeyRange, NOW
from repro.minmax.index import RangeMinMaxIndex
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 90)
TIME_DOMAIN = (1, 500)


@st.composite
def insert_streams(draw):
    """(key, dt, duration-or-None, value) insert-only events."""
    return draw(st.lists(
        st.tuples(
            st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1),
            st.integers(min_value=0, max_value=4),
            st.one_of(st.none(), st.integers(min_value=1, max_value=120)),
            st.integers(min_value=0, max_value=50),
        ),
        min_size=1, max_size=80,
    ))


def replay(stream, mode, fanout=4):
    pool = BufferPool(InMemoryDiskManager(), capacity=4096)
    index = RangeMinMaxIndex(pool, mode=mode, key_space=KEY_SPACE,
                             fanout=fanout, capacity=5,
                             time_domain=TIME_DOMAIN)
    tuples = []
    t = 1
    for key, dt, duration, value in stream:
        t += dt
        if t >= TIME_DOMAIN[1]:
            break
        end = NOW if duration is None else min(t + duration, TIME_DOMAIN[1])
        if end <= t:
            continue
        index.insert(key, float(value), start=t, end=end)
        tuples.append((key, t, end, float(value)))
    return index, tuples


def brute(tuples, k1, k2, t1, t2, mode):
    fold = min if mode == "min" else max
    hits = [v for (k, s, e, v) in tuples
            if k1 <= k < k2 and s < t2 and e > t1]
    return fold(hits) if hits else None


@st.composite
def rectangles(draw):
    k1 = draw(st.integers(min_value=KEY_SPACE[0], max_value=KEY_SPACE[1] - 1))
    k2 = draw(st.integers(min_value=k1 + 1, max_value=KEY_SPACE[1]))
    t1 = draw(st.integers(min_value=1, max_value=TIME_DOMAIN[1] - 2))
    t2 = draw(st.integers(min_value=t1 + 1, max_value=TIME_DOMAIN[1] - 1))
    return (k1, k2, t1, t2)


@settings(max_examples=50, deadline=None)
@given(insert_streams(), rectangles(), st.sampled_from(["min", "max"]))
def test_query_matches_brute_force(stream, rect, mode):
    index, tuples = replay(stream, mode)
    k1, k2, t1, t2 = rect
    assert index.query(KeyRange(k1, k2), Interval(t1, t2)) \
        == brute(tuples, k1, k2, t1, t2, mode)


@settings(max_examples=30, deadline=None)
@given(insert_streams(), rectangles(), st.sampled_from([2, 3, 8]))
def test_fanout_is_semantically_invisible(stream, rect, fanout):
    narrow, tuples = replay(stream, "min", fanout=fanout)
    k1, k2, t1, t2 = rect
    assert narrow.query(KeyRange(k1, k2), Interval(t1, t2)) \
        == brute(tuples, k1, k2, t1, t2, "min")


@settings(max_examples=30, deadline=None)
@given(insert_streams(), rectangles(),
       st.integers(min_value=KEY_SPACE[0] + 1, max_value=KEY_SPACE[1] - 1))
def test_min_distributes_over_key_partition(stream, rect, cut):
    """MIN over a range equals the MIN of the two halves' MINs."""
    index, _ = replay(stream, "min")
    k1, k2, t1, t2 = rect
    if not (k1 < cut < k2):
        return
    iv = Interval(t1, t2)
    whole = index.query(KeyRange(k1, k2), iv)
    left = index.query(KeyRange(k1, cut), iv)
    right = index.query(KeyRange(cut, k2), iv)
    parts = [p for p in (left, right) if p is not None]
    assert whole == (min(parts) if parts else None)


@settings(max_examples=25, deadline=None)
@given(insert_streams())
def test_invariants_hold(stream):
    index, _ = replay(stream, "min")
    index.check_invariants()
