"""Checkpoint round-trip tests for the range MIN/MAX index."""

import pytest

from repro.core.model import Interval, KeyRange, NOW
from repro.minmax.index import RangeMinMaxIndex
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 501)
TIME_DOMAIN = (1, 2001)


def build_index(mode="min"):
    pool = BufferPool(InMemoryDiskManager(), capacity=4096)
    index = RangeMinMaxIndex(pool, mode=mode, key_space=KEY_SPACE,
                             fanout=4, capacity=6, time_domain=TIME_DOMAIN)
    state = 61
    t = 1
    for _ in range(150):
        state = (state * 48271) % (2**31 - 1)
        key = state % 499 + 1
        value = float(state % 300)
        t += state % 3
        end = NOW if state % 4 else min(t + state % 200 + 1, TIME_DOMAIN[1])
        if end <= t:
            continue
        index.insert(key, value, start=t, end=end)
    return index, t


PROBES = [(1, 500, 1, 400), (100, 200, 50, 120), (1, 50, 1, 1999),
          (400, 500, 300, 301)]


@pytest.mark.parametrize("mode", ["min", "max"])
def test_round_trip_preserves_answers(tmp_path, mode):
    index, _ = build_index(mode)
    index.save(str(tmp_path / "mm"))
    reopened = RangeMinMaxIndex.load(str(tmp_path / "mm"),
                                     buffer_pages=4096)
    assert reopened.node_count() == index.node_count()
    for (k1, k2, t1, t2) in PROBES:
        r, iv = KeyRange(k1, k2), Interval(t1, t2)
        assert reopened.query(r, iv) == index.query(r, iv), (k1, k2, t1, t2)
    reopened.check_invariants()


def test_reopened_index_accepts_inserts(tmp_path):
    index, t = build_index("min")
    index.save(str(tmp_path / "mm"))
    reopened = RangeMinMaxIndex.load(str(tmp_path / "mm"),
                                     buffer_pages=4096)
    reopened.insert(250, 0.5, start=t + 1)
    assert reopened.query(KeyRange(200, 300),
                          Interval(t + 1, t + 2)) == 0.5
    # Time order survives the round trip.
    from repro.errors import TimeOrderError
    with pytest.raises(TimeOrderError):
        reopened.insert(250, 1.0, start=1)


def test_wrong_type_rejected(tmp_path):
    from repro.mvsbt.tree import MVSBT

    index, _ = build_index()
    index.save(str(tmp_path / "mm"))
    with pytest.raises(ValueError):
        MVSBT.load(str(tmp_path / "mm"))
    tree = MVSBT(BufferPool(InMemoryDiskManager(), capacity=64),
                 key_space=(1, 100))
    tree.save(str(tmp_path / "tree"))
    with pytest.raises(ValueError):
        RangeMinMaxIndex.load(str(tmp_path / "tree"))
