"""Tests for the MinMaxSBTree window query (subtree-agg augmentation)."""

import pytest

from repro.errors import QueryError
from repro.sbtree.minmax import MinMaxSBTree

DOMAIN = (1, 501)


def brute_window(intervals, lo, hi, mode):
    """Best value among intervals overlapping [lo, hi)."""
    best = None
    fold = min if mode == "min" else max
    for start, end, value in intervals:
        if start < hi and end > lo:
            best = value if best is None else fold(best, value)
    return best


@pytest.fixture()
def tree(pool):
    return MinMaxSBTree(pool, capacity=4, domain=DOMAIN, mode="min")


class TestWindowQueryBasics:
    def test_empty_tree_reports_identity(self, tree):
        assert tree.window_query(10, 20) == float("inf")

    def test_interval_inside_window(self, tree):
        tree.insert(50, 60, 5.0)
        assert tree.window_query(40, 70) == 5.0

    def test_interval_overlapping_window_edge(self, tree):
        tree.insert(50, 60, 5.0)
        assert tree.window_query(59, 100) == 5.0
        assert tree.window_query(60, 100) == float("inf")
        assert tree.window_query(10, 50) == float("inf")
        assert tree.window_query(10, 51) == 5.0

    def test_window_picks_best_among_overlaps(self, tree):
        tree.insert(10, 100, 5.0)
        tree.insert(40, 60, 2.0)
        tree.insert(200, 300, 1.0)
        assert tree.window_query(45, 55) == 2.0
        assert tree.window_query(70, 90) == 5.0
        assert tree.window_query(45, 250) == 1.0

    def test_instant_window_equals_point_query(self, tree):
        tree.insert(10, 100, 5.0)
        tree.insert(40, 60, 2.0)
        for t in (9, 10, 39, 40, 59, 60, 99, 100):
            assert tree.window_query(t, t + 1) == tree.query(t)

    def test_empty_window_rejected(self, tree):
        with pytest.raises(QueryError):
            tree.window_query(20, 20)
        with pytest.raises(QueryError):
            tree.window_query(600, 700)

    def test_window_clipped_to_domain(self, tree):
        tree.insert(1, 10, 3.0)
        assert tree.window_query(0, 10**9) == 3.0


class TestWindowQueryAtScale:
    @pytest.mark.parametrize("mode", ["min", "max"])
    def test_matches_brute_force_after_splits(self, pool, mode):
        tree = MinMaxSBTree(pool, capacity=4, domain=DOMAIN, mode=mode)
        intervals = []
        state = 29
        for _ in range(300):
            state = (state * 48271) % (2**31 - 1)
            start = state % 480 + 1
            end = min(start + state % 60 + 1, DOMAIN[1])
            value = float(state % 1000)
            tree.insert(start, end, value)
            intervals.append((start, end, value))
        tree.check_invariants()
        for lo in range(1, 500, 17):
            for width in (1, 5, 40, 200):
                hi = min(lo + width, DOMAIN[1])
                if lo >= hi:
                    continue
                expected = brute_window(intervals, lo, hi, mode)
                got = tree.window_query(lo, hi)
                if expected is None:
                    assert got in (float("inf"), float("-inf"))
                else:
                    assert got == expected, (lo, hi)

    def test_window_query_is_logarithmic(self, pool):
        tree = MinMaxSBTree(pool, capacity=8, domain=(1, 100_001),
                            mode="min")
        for i in range(2000):
            tree.insert(i * 50 + 1, i * 50 + 30, float(i % 97))
        pool.clear()
        before = pool.stats.snapshot()
        tree.window_query(10_000, 90_000)  # covers most of the data
        reads = pool.stats.delta(before).logical_reads
        # Boundary descent only: far fewer pages than the tree holds.
        assert reads < 3 * tree.height + 3
        assert tree.page_count() > 50
