"""Soak tests: large randomized cross-checks, opt-in via REPRO_SOAK=1.

The regular suite keeps streams small for speed; these runs push tens of
thousands of events through every structure with full oracle agreement
and invariant audits.  Run with::

    REPRO_SOAK=1 pytest tests/test_soak.py -q
"""

import os

import pytest

from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvbt.config import MVBTConfig
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

from tests.oracles import DominanceSumOracle, TupleStoreOracle

soak = pytest.mark.skipif(
    os.environ.get("REPRO_SOAK") != "1",
    reason="soak tests are opt-in (REPRO_SOAK=1)",
)

EVENTS = int(os.environ.get("REPRO_SOAK_EVENTS", "20000"))


def fresh_pool():
    return BufferPool(InMemoryDiskManager(), capacity=8192)


@soak
def test_mvsbt_soak():
    tree = MVSBT(fresh_pool(), MVSBTConfig(capacity=24),
                 key_space=(1, 10**6))
    oracle = DominanceSumOracle()
    state = 1234
    t = 1
    for _ in range(EVENTS):
        state = (state * 48271) % (2**31 - 1)
        key = state % (10**6 - 1) + 1
        t += state % 2
        value = float(state % 19 - 9) or 1.0
        tree.insert(key, t, value)
        oracle.insert(key, t, value)
    tree.check_invariants()
    state = 999
    for _ in range(300):
        state = (state * 48271) % (2**31 - 1)
        qk = state % (10**6 - 1) + 1
        qt = state % (t + 10) + 1
        assert tree.query(qk, qt) == pytest.approx(oracle.query(qk, qt))


@soak
def test_rta_and_mvbt_soak_cross_check():
    from repro.baselines.mvbt_rta import MVBTRTABaseline

    key_space = (1, 100_001)
    rta = RTAIndex(fresh_pool(), MVSBTConfig(capacity=24),
                   key_space=key_space)
    mvbt = MVBTRTABaseline(fresh_pool(), MVBTConfig(capacity=24),
                           key_space=key_space)
    oracle = TupleStoreOracle()
    alive = []
    state = 777
    t = 1
    for _ in range(EVENTS):
        state = (state * 48271) % (2**31 - 1)
        t += state % 2
        if alive and state % 3 == 0:
            key = alive.pop(state % len(alive))
            rta.delete(key, t)
            mvbt.delete(key, t)
            oracle.delete(key, t)
        else:
            key = state % 100_000 + 1
            if key not in alive:
                value = float(state % 101 - 50)
                rta.insert(key, value, t)
                mvbt.insert(key, value, t)
                oracle.insert(key, value, t)
                alive.append(key)
    rta.check_invariants()
    mvbt.check_invariants()
    state = 31337
    for _ in range(60):
        state = (state * 48271) % (2**31 - 1)
        k1 = state % 100_000 + 1
        k2 = min(k1 + state % 50_000 + 1, 100_001)
        t1 = state % t + 1
        t2 = min(t1 + state % (t // 2 + 1) + 1, t + 5)
        r, iv = KeyRange(k1, k2), Interval(t1, t2)
        expected_sum = oracle.rta_sum(k1, k2, t1, t2)
        assert rta.sum(r, iv) == pytest.approx(expected_sum)
        assert mvbt.sum(r, iv) == pytest.approx(expected_sum)
        assert rta.count(r, iv) == oracle.rta_count(k1, k2, t1, t2)
