"""Cross-module integration tests: paged root*, file-backed heap storage,
and full pipelines combining generator -> indexes -> queries -> checkpoints."""

import pytest

from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvbt.config import MVBTConfig
from repro.mvbt.tree import MVBT
from repro.mvsbt.tree import MVSBT, MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import FileDiskManager, InMemoryDiskManager
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset


def memory_pool(capacity=512):
    return BufferPool(InMemoryDiskManager(), capacity=capacity)


class TestPagedRoots:
    """The Theorem 2 root* B+-tree mode, exercised end to end."""

    def test_mvsbt_paged_roots_same_answers(self):
        plain = MVSBT(memory_pool(), MVSBTConfig(capacity=4),
                      key_space=(1, 201))
        paged = MVSBT(memory_pool(), MVSBTConfig(capacity=4),
                      key_space=(1, 201), paged_roots=True)
        for t in range(1, 150):
            key = (t * 37) % 199 + 1
            plain.insert(key, t, 1.0)
            paged.insert(key, t, 1.0)
        for t in range(1, 150, 7):
            for k in (1, 50, 100, 150, 200):
                assert paged.query(k, t) == plain.query(k, t)

    def test_mvsbt_paged_roots_charge_lookup_ios(self):
        paged = MVSBT(memory_pool(), MVSBTConfig(capacity=4),
                      key_space=(1, 201), paged_roots=True)
        for t in range(1, 200):
            paged.insert((t * 37) % 199 + 1, t, 1.0)
        assert len(paged.roots) > 8  # enough roots for a real directory
        assert paged.roots.page_count > 1
        pool = paged.pool
        pool.clear()
        before = pool.stats.snapshot()
        paged.query(100, 100)
        reads = pool.stats.delta(before).logical_reads
        # Directory descent + tree descent; still logarithmic overall.
        assert reads <= 12

    def test_mvbt_paged_roots_same_answers(self):
        plain = MVBT(memory_pool(), MVBTConfig(capacity=6),
                     key_space=(1, 501))
        paged = MVBT(memory_pool(), MVBTConfig(capacity=6),
                     key_space=(1, 501), paged_roots=True)
        alive = []
        for t in range(1, 200):
            key = (t * 31) % 499 + 1
            if key in alive:
                plain.delete(key, t)
                paged.delete(key, t)
                alive.remove(key)
            else:
                plain.insert(key, 1.0, t)
                paged.insert(key, 1.0, t)
                alive.append(key)
        for t in range(1, 200, 13):
            assert paged.range_snapshot(1, 500, t) \
                == plain.range_snapshot(1, 500, t)

    def test_rta_index_with_paged_roots(self):
        index = RTAIndex(memory_pool(), MVSBTConfig(capacity=8),
                         key_space=(1, 1001), paged_roots=True)
        for t in range(1, 100):
            index.insert((t * 61) % 999 + 1, 1.0, t)
        assert index.count(KeyRange(1, 1000), Interval(1, 100)) == 99


class TestFileBackedHeap:
    """The [Tum92] heap baseline over a real on-disk file."""

    def test_heap_on_file_disk_round_trips(self, tmp_path):
        disk = FileDiskManager(str(tmp_path / "heap.db"), page_bytes=512)
        pool = BufferPool(disk, capacity=2)  # tiny buffer forces evictions
        heap = HeapFileScanBaseline(pool, capacity=8, key_space=(1, 1001))
        for i in range(1, 60):
            heap.insert(i, float(i), t=i)
        for i in range(1, 30):
            heap.delete(i, t=100 + i)
        pool.flush_all()
        # Queries read pages back through the file.
        r = KeyRange(1, 1000)
        assert heap.sum(r, Interval(1, 60)) == sum(range(1, 60))
        assert heap.sum(r, Interval(140, 150)) == sum(range(30, 60))
        assert pool.stats.reads > 0  # evictions really happened
        disk.close()

    def test_file_disk_persists_across_pools(self, tmp_path):
        disk = FileDiskManager(str(tmp_path / "heap.db"), page_bytes=512)
        pool = BufferPool(disk, capacity=4)
        heap = HeapFileScanBaseline(pool, capacity=8, key_space=(1, 1001))
        heap.insert(42, 9.0, t=5)
        pool.flush_all()
        # A second pool over the same (still-open) disk sees the data.
        other = BufferPool(disk, capacity=4)
        page_ids = list(disk.live_page_ids())
        record = other.fetch(page_ids[0]).records[0]
        assert (record.key, record.value) == (42, 9.0)
        disk.close()


class TestFullPipeline:
    def test_generate_load_query_checkpoint_reload(self, tmp_path):
        config = paper_config("normal-short", scale=0.001)
        dataset = generate_dataset(config)
        index = RTAIndex(memory_pool(), MVSBTConfig(capacity=16),
                         key_space=config.key_space)
        dataset.replay_into(index)
        r = KeyRange(*config.key_space)
        iv = Interval(1, config.time_space[1])
        total = index.count(r, iv)
        assert total == len(dataset)

        index.save(str(tmp_path / "ck"))
        reopened = RTAIndex.load(str(tmp_path / "ck"))
        assert reopened.count(r, iv) == total

    def test_small_buffer_does_not_change_answers(self):
        """Answers are buffer-size independent (only I/O counts move)."""
        config = paper_config("uniform-long", scale=0.001)
        dataset = generate_dataset(config)
        big = RTAIndex(BufferPool(InMemoryDiskManager(), capacity=1024),
                       MVSBTConfig(capacity=16), key_space=config.key_space)
        tiny = RTAIndex(BufferPool(InMemoryDiskManager(), capacity=4),
                        MVSBTConfig(capacity=16), key_space=config.key_space)
        dataset.replay_into(big)
        dataset.replay_into(tiny)
        for (k1, k2, t1, t2) in [(1, 10**9, 1, 10**8),
                                 (10**8, 10**9, 10**7, 10**8)]:
            r, iv = KeyRange(k1, k2), Interval(t1, t2)
            assert big.sum(r, iv) == tiny.sum(r, iv)
            assert big.count(r, iv) == tiny.count(r, iv)
        assert tiny.pool.stats.reads > big.pool.stats.reads
