"""Tests for the TimeIT-like dataset generator."""

from collections import defaultdict

import pytest

from repro.core.model import NOW
from repro.workloads.generator import DatasetConfig, generate_dataset


def small_config(**overrides):
    defaults = dict(
        n_records=500, n_keys=20, key_space=(1, 10_001),
        time_space=(1, 100_001), seed=7,
    )
    defaults.update(overrides)
    return DatasetConfig(**defaults)


class TestConfigValidation:
    def test_more_keys_than_records_rejected(self):
        with pytest.raises(ValueError):
            DatasetConfig(n_records=5, n_keys=10)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            small_config(key_distribution="pareto")

    def test_unknown_interval_style_rejected(self):
        with pytest.raises(ValueError):
            small_config(interval_style="medium")

    def test_mean_interval_styles_differ(self):
        long_cfg = small_config(interval_style="long")
        short_cfg = small_config(interval_style="short")
        assert long_cfg.mean_interval > short_cfg.mean_interval


class TestGeneratedTuples:
    def test_record_count_matches_config(self):
        dataset = generate_dataset(small_config())
        assert len(dataset) == 500

    def test_unique_key_count(self):
        dataset = generate_dataset(small_config())
        assert dataset.unique_keys == 20

    def test_1tnf_no_overlaps_per_key(self):
        dataset = generate_dataset(small_config())
        by_key = defaultdict(list)
        for key, start, end, _value in dataset.tuples:
            real_end = end if end != NOW else 10**18
            by_key[key].append((start, real_end))
        for key, intervals in by_key.items():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2, f"key {key}: [{s1},{e1}) overlaps [{s2},{e2})"

    def test_tuples_within_spaces(self):
        cfg = small_config()
        dataset = generate_dataset(cfg)
        for key, start, end, _value in dataset.tuples:
            assert cfg.key_space[0] <= key < cfg.key_space[1]
            assert cfg.time_space[0] <= start < cfg.time_space[1]
            assert end > start

    def test_deterministic_for_fixed_seed(self):
        a = generate_dataset(small_config())
        b = generate_dataset(small_config())
        assert a.tuples == b.tuples
        assert a.events == b.events

    def test_different_seeds_differ(self):
        a = generate_dataset(small_config(seed=1))
        b = generate_dataset(small_config(seed=2))
        assert a.tuples != b.tuples

    def test_normal_keys_concentrate_in_middle(self):
        cfg = small_config(n_keys=200, n_records=1000,
                           key_distribution="normal")
        dataset = generate_dataset(cfg)
        keys = [key for (key, _s, _e, _v) in dataset.tuples]
        center = (cfg.key_space[0] + cfg.key_space[1]) / 2
        span = cfg.key_space[1] - cfg.key_space[0]
        inside = sum(1 for k in keys if abs(k - center) < span / 4)
        assert inside / len(keys) > 0.8  # ~2 sigma of N(center, span/8)

    def test_zipf_keys_skew_low(self):
        cfg = small_config(n_keys=200, n_records=1000,
                           key_distribution="zipf")
        dataset = generate_dataset(cfg)
        keys = {key for (key, _s, _e, _v) in dataset.tuples}
        assert len(keys) == 200
        # Zipf a=1.5: the bulk of distinct keys sit near the bottom.
        low = sum(1 for k in keys if k < cfg.key_space[0] + 10_000)
        assert low / len(keys) > 0.9

    def test_zipf_keys_within_space(self):
        cfg = small_config(n_keys=50, n_records=200,
                           key_distribution="zipf")
        dataset = generate_dataset(cfg)
        for key, _s, _e, _v in dataset.tuples:
            assert cfg.key_space[0] <= key < cfg.key_space[1]

    def test_uniform_keys_spread(self):
        cfg = small_config(n_keys=200, n_records=1000)
        dataset = generate_dataset(cfg)
        keys = {key for (key, _s, _e, _v) in dataset.tuples}
        span = cfg.key_space[1] - cfg.key_space[0]
        low_third = sum(1 for k in keys if k < cfg.key_space[0] + span / 3)
        assert 0.15 < low_third / len(keys) < 0.55

    def test_interval_styles_have_different_lengths(self):
        def mean_length(style):
            dataset = generate_dataset(small_config(
                interval_style=style, time_space=(1, 10**6 + 1)))
            lengths = [end - start for (_k, start, end, _v) in dataset.tuples
                       if end != NOW]
            return sum(lengths) / len(lengths)

        assert mean_length("long") > 5 * mean_length("short")


class TestEventStream:
    def test_events_time_ordered(self):
        dataset = generate_dataset(small_config())
        times = [event.time for event in dataset.events]
        assert times == sorted(times)

    def test_deletes_precede_inserts_within_instant(self):
        dataset = generate_dataset(small_config())
        by_time = defaultdict(list)
        for event in dataset.events:
            by_time[event.time].append(event.op)
        for ops in by_time.values():
            if "delete" in ops and "insert" in ops:
                assert ops.index("insert") > ops.index("delete") \
                    or "delete" not in ops[ops.index("insert"):]

    def test_every_closed_tuple_has_matching_delete(self):
        dataset = generate_dataset(small_config())
        closed = sum(1 for (_k, _s, end, _v) in dataset.tuples if end != NOW)
        deletes = sum(1 for e in dataset.events if e.op == "delete")
        assert deletes == closed

    def test_replay_into_index(self, pool):
        from repro.core.rta import RTAIndex
        from repro.core.model import Interval, KeyRange
        from repro.mvsbt.tree import MVSBTConfig

        cfg = small_config(n_records=200, n_keys=10)
        dataset = generate_dataset(cfg)
        index = RTAIndex(pool, MVSBTConfig(capacity=16),
                         key_space=cfg.key_space)
        dataset.replay_into(index)
        total = index.count(KeyRange(*cfg.key_space),
                            Interval(1, cfg.time_space[1]))
        assert total == len(dataset)

    def test_iter_batches(self):
        dataset = generate_dataset(small_config(n_records=50, n_keys=5))
        batches = list(dataset.iter_batches(16))
        assert sum(len(b) for b in batches) == len(dataset.events)
        assert all(len(b) <= 16 for b in batches)
