"""Tests for query-rectangle generation (QRS and R/I shape)."""

import pytest

from repro.errors import QueryError
from repro.workloads.datasets import PAPER_FAMILIES, paper_config
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

SPACES = dict(key_space=(1, 10_001), time_space=(1, 100_001))


class TestConfig:
    def test_qrs_bounds(self):
        with pytest.raises(QueryError):
            QueryRectangleConfig(qrs=0.0)
        with pytest.raises(QueryError):
            QueryRectangleConfig(qrs=1.5)

    def test_shape_positive(self):
        with pytest.raises(QueryError):
            QueryRectangleConfig(shape=-1)

    def test_relative_extents_square(self):
        cfg = QueryRectangleConfig(qrs=0.01, shape=1.0)
        r, i = cfg.relative_extents
        assert r == pytest.approx(0.1)
        assert i == pytest.approx(0.1)

    def test_relative_extents_wide_in_keys(self):
        cfg = QueryRectangleConfig(qrs=0.01, shape=4.0)
        r, i = cfg.relative_extents
        assert r == pytest.approx(0.2)
        assert i == pytest.approx(0.05)
        assert r * i == pytest.approx(0.01)

    def test_extents_clamped_preserving_area(self):
        cfg = QueryRectangleConfig(qrs=0.25, shape=100.0)
        r, i = cfg.relative_extents
        assert r == 1.0
        assert r * i == pytest.approx(0.25)


class TestGeneration:
    def test_count_and_determinism(self):
        cfg = QueryRectangleConfig(qrs=0.01, count=25, seed=3, **SPACES)
        a = generate_query_rectangles(cfg)
        b = generate_query_rectangles(cfg)
        assert len(a) == 25
        assert a == b

    def test_rectangles_fit_spaces(self):
        cfg = QueryRectangleConfig(qrs=0.04, count=50, **SPACES)
        for rect in generate_query_rectangles(cfg):
            assert rect.range.low >= 1
            assert rect.range.high <= 10_001
            assert rect.interval.start >= 1
            assert rect.interval.end <= 100_001

    def test_area_matches_qrs(self):
        cfg = QueryRectangleConfig(qrs=0.01, count=5, **SPACES)
        key_span = 10_000
        time_span = 100_000
        for rect in generate_query_rectangles(cfg):
            area_fraction = rect.area / (key_span * time_span)
            assert area_fraction == pytest.approx(0.01, rel=0.05)

    def test_full_space_rectangle(self):
        cfg = QueryRectangleConfig(qrs=1.0, count=3, **SPACES)
        for rect in generate_query_rectangles(cfg):
            assert rect.range.width == 10_000
            assert rect.interval.length == 100_000


class TestPaperFamilies:
    def test_all_families_resolve(self):
        for family in PAPER_FAMILIES:
            cfg = paper_config(family, scale=0.001)
            assert cfg.n_records == 1000
            assert cfg.n_keys == 10

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            paper_config("zipf-long")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            paper_config(scale=0)
        with pytest.raises(ValueError):
            paper_config(scale=2)

    def test_full_scale_matches_paper(self):
        cfg = paper_config("uniform-long", scale=1.0)
        assert cfg.n_records == 1_000_000
        assert cfg.n_keys == 10_000
        assert cfg.key_space == (1, 10**9 + 1)
        assert cfg.time_space == (1, 10**8 + 1)

    def test_family_fields_propagate(self):
        cfg = paper_config("normal-short", scale=0.001)
        assert cfg.key_distribution == "normal"
        assert cfg.interval_style == "short"
