"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP-517 editable installs (``bdist_wheel``) are unavailable.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
