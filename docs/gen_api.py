"""Generate docs/API.md from the library's docstrings.

Run from the repository root::

    python docs/gen_api.py

The output is deterministic (modules and members sorted), so the test
suite regenerates it in memory and fails if the committed file is stale —
API docs cannot silently drift from the code.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

HEADER = """\
# API reference

Generated from docstrings by `python docs/gen_api.py` — do not edit by
hand.  Entries show each public module, its public classes (with public
methods) and functions, and the first paragraph of every docstring.
"""


def public_modules() -> list[str]:
    """Every public module name under ``repro``, sorted."""
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_") and leaf != "__main__":
            continue
        names.append(info.name)
    return sorted(names)


def first_paragraph(obj) -> str:
    """The docstring's first paragraph, joined to one line."""
    doc = inspect.getdoc(obj) or ""
    paragraph = doc.split("\n\n", 1)[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def signature_of(obj) -> str:
    """Best-effort signature text, scrubbed of memory addresses.

    Default values whose repr embeds ``at 0x...`` (functions, lambdas,
    rich dataclasses) would make the output non-deterministic; they are
    collapsed to ``...``.
    """
    import re

    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    text = re.sub(r"<[^<>]*at 0x[0-9a-f]+>", "...", text)
    # Collapse long dataclass default reprs to their class name.
    text = re.sub(r"(\w+)\((?:[^()]|\([^()]*\))*\.\.\.(?:[^()]|\([^()]*\))*\)",
                  r"\1(...)", text)
    return text


def document_class(name: str, cls: type) -> list[str]:
    """Markdown lines for one class and its public methods."""
    lines = [f"### class `{name}`", "", first_paragraph(cls), ""]
    members = []
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if isinstance(attr, property):
            members.append((attr_name, "property",
                            first_paragraph(attr.fget) if attr.fget else ""))
        elif inspect.isfunction(attr):
            members.append((attr_name, f"`{attr_name}{signature_of(attr)}`",
                            first_paragraph(attr)))
        elif isinstance(attr, classmethod):
            inner = attr.__func__
            members.append((attr_name,
                            f"classmethod `{attr_name}{signature_of(inner)}`",
                            first_paragraph(inner)))
    for attr_name, heading, doc in members:
        lines.append(f"- **{attr_name}** — {doc or heading}")
    if members:
        lines.append("")
    return lines


def document_module(module_name: str) -> list[str]:
    """Markdown lines for one module."""
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", "", first_paragraph(module), ""]
    classes = []
    functions = []
    for name, obj in sorted(vars(module).items()):
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isfunction(obj):
            functions.append((name, obj))
    for name, cls in classes:
        lines.extend(document_class(name, cls))
    for name, fn in functions:
        lines.append(f"### `{name}{signature_of(fn)}`")
        lines.append("")
        lines.append(first_paragraph(fn))
        lines.append("")
    return lines


def generate() -> str:
    """The full API.md content."""
    lines = [HEADER]
    for module_name in public_modules():
        lines.extend(document_module(module_name))
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    """Write docs/API.md next to this script."""
    target = Path(__file__).parent / "API.md"
    target.write_text(generate())
    print(f"wrote {target} ({len(generate().splitlines())} lines)")


if __name__ == "__main__":
    main()
