"""Randomized self-validation: fuzz every structure against brute force.

``python -m repro.validate --events 5000 --seed 7`` replays a random
transaction-time stream into the RTA index, the MVBT baseline and the heap
scan simultaneously, cross-checks hundreds of random rectangles against a
brute-force oracle, audits every structural invariant, and round-trips a
checkpoint — a release-gate smoke screen that needs no test harness.

Programmatic use: :func:`run_validation` returns a
:class:`ValidationReport`; it raises nothing and reports failures as data,
so operational tooling can act on it.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.baselines.mvbt_rta import MVBTRTABaseline
from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.model import Interval, KeyRange
from repro.core.rta import RTAIndex
from repro.mvbt.config import MVBTConfig
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager

KEY_SPACE = (1, 100_001)


@dataclass
class ValidationReport:
    """Outcome of one validation run."""

    events: int = 0
    rectangles_checked: int = 0
    mismatches: List[str] = field(default_factory=list)
    invariant_errors: List[str] = field(default_factory=list)
    checkpoint_ok: Optional[bool] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return (not self.mismatches and not self.invariant_errors
                and self.checkpoint_ok is not False)

    def summary(self) -> str:
        """One-paragraph human-readable verdict (PASS/FAIL + details)."""
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"validation {status}: {self.events} events, "
            f"{self.rectangles_checked} rectangles, "
            f"checkpoint={'ok' if self.checkpoint_ok else 'FAILED'}, "
            f"{self.elapsed_s:.1f}s",
        ]
        lines.extend(f"  mismatch: {m}" for m in self.mismatches[:10])
        lines.extend(f"  invariant: {e}" for e in self.invariant_errors[:10])
        return "\n".join(lines)


class _BruteForce:
    """Self-contained oracle: explicit tuples, direct aggregation."""

    def __init__(self) -> None:
        self.rows: List[Tuple[int, int, int, float]] = []
        self._alive: dict[int, int] = {}

    def insert(self, key: int, value: float, t: int) -> None:
        self._alive[key] = len(self.rows)
        self.rows.append((key, t, 2**62, value))

    def delete(self, key: int, t: int) -> None:
        idx = self._alive.pop(key)
        k, s, _e, v = self.rows[idx]
        self.rows[idx] = (k, s, t, v)

    def sum_count(self, k1: int, k2: int, t1: int,
                  t2: int) -> Tuple[float, int]:
        total, count = 0.0, 0
        for (k, s, e, v) in self.rows:
            if k1 <= k < k2 and s < t2 and e > t1:
                total += v
                count += 1
        return total, count


def _lcg(state: int) -> int:
    return (state * 48271) % (2**31 - 1)


def run_validation(events: int = 5000, seed: int = 1, rectangles: int = 200,
                   capacity: int = 16,
                   checkpoint_dir: Optional[str] = None) -> ValidationReport:
    """Run the full cross-check; see the module docstring."""
    started = time.perf_counter()
    report = ValidationReport()

    def pool() -> BufferPool:
        return BufferPool(InMemoryDiskManager(), capacity=4096)

    rta = RTAIndex(pool(), MVSBTConfig(capacity=capacity),
                   key_space=KEY_SPACE)
    mvbt = MVBTRTABaseline(pool(), MVBTConfig(capacity=capacity),
                           key_space=KEY_SPACE)
    heap = HeapFileScanBaseline(pool(), capacity=capacity,
                                key_space=KEY_SPACE)
    oracle = _BruteForce()
    competitors = (rta, mvbt, heap)

    state = seed
    t = 1
    alive: List[int] = []
    for _ in range(events):
        state = _lcg(state)
        t += state % 2
        if alive and state % 3 == 0:
            key = alive.pop(state % len(alive))
            for competitor in competitors:
                competitor.delete(key, t)
            oracle.delete(key, t)
        else:
            key = state % (KEY_SPACE[1] - 1) + 1
            if key in oracle._alive:
                continue
            value = float(state % 201 - 100)
            for competitor in competitors:
                competitor.insert(key, value, t)
            oracle.insert(key, value, t)
        report.events += 1

    state = _lcg(seed + 99)
    for _ in range(rectangles):
        state = _lcg(state)
        k1 = state % (KEY_SPACE[1] - 1) + 1
        state = _lcg(state)
        k2 = min(k1 + state % (KEY_SPACE[1] // 2) + 1, KEY_SPACE[1])
        state = _lcg(state)
        t1 = state % t + 1
        state = _lcg(state)
        t2 = min(t1 + state % max(t // 2, 2) + 1, t + 10)
        expected_sum, expected_count = oracle.sum_count(k1, k2, t1, t2)
        r, iv = KeyRange(k1, k2), Interval(t1, t2)
        for name, competitor in (("rta", rta), ("mvbt", mvbt),
                                 ("heap", heap)):
            got = competitor.aggregate_all(r, iv)
            if abs(got.sum - expected_sum) > 1e-6 \
                    or got.count != expected_count:
                report.mismatches.append(
                    f"{name} on [{k1},{k2})x[{t1},{t2}): "
                    f"sum {got.sum} vs {expected_sum}, "
                    f"count {got.count} vs {expected_count}"
                )
        report.rectangles_checked += 1

    for name, check in (("rta", rta.check_invariants),
                        ("mvbt", mvbt.check_invariants)):
        try:
            check()
        except AssertionError as exc:
            report.invariant_errors.append(f"{name}: {exc}")

    if checkpoint_dir is not None:
        rta.save(checkpoint_dir)
        reopened = RTAIndex.load(checkpoint_dir, buffer_pages=4096)
        probe_r = KeyRange(*KEY_SPACE)
        probe_iv = Interval(1, t + 2)
        report.checkpoint_ok = (
            reopened.sum(probe_r, probe_iv) == rta.sum(probe_r, probe_iv)
            and reopened.count(probe_r, probe_iv)
            == rta.count(probe_r, probe_iv)
        )

    report.elapsed_s = time.perf_counter() - started
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exit code 0 on PASS, 1 on FAIL."""
    parser = argparse.ArgumentParser(prog="python -m repro.validate")
    parser.add_argument("--events", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rectangles", type=int, default=200)
    parser.add_argument("--capacity", type=int, default=16)
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        report = run_validation(events=args.events, seed=args.seed,
                                rectangles=args.rectangles,
                                capacity=args.capacity,
                                checkpoint_dir=directory)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
