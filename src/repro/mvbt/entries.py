"""MVBT page entries and their on-disk codecs.

Leaf entries carry the *logical* tuple: key, lifespan ``[start, end)``
(``end == NOW`` while alive) and the aggregated value.  Version splits copy
alive entries verbatim — the copy keeps the logical start — so one logical
tuple may exist in several pages; the pair ``(key, start)`` identifies the
tuple globally, which is what rectangle queries deduplicate on.

Index entries describe a child page: its key range, the time slice during
which the child is the authoritative subtree under this parent, and the
child page id.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import NOW
from repro.storage.serialization import RecordCodec, register_codec

LEAF_KIND = "mvbt-leaf"
INDEX_KIND = "mvbt-index"


@dataclass(slots=True)
class LeafEntry:
    """One physical copy of a logical tuple."""

    key: int
    start: int
    end: int
    value: float

    @property
    def alive(self) -> bool:
        """Alive in the current version (never logically deleted)."""
        return self.end == NOW

    def alive_at(self, t: int) -> bool:
        """True when the tuple was alive at instant ``t``."""
        return self.start <= t < self.end

    @property
    def tuple_id(self) -> tuple[int, int]:
        """Global identity of the logical tuple this copy belongs to."""
        return (self.key, self.start)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "now" if self.end == NOW else self.end
        return f"Leaf(key={self.key}, [{self.start},{end}), v={self.value})"


@dataclass(slots=True)
class IndexEntry:
    """Router to a child page authoritative for ``[low, high)`` x ``[start, end)``."""

    low: int
    high: int
    start: int
    end: int
    child: int

    @property
    def alive(self) -> bool:
        return self.end == NOW

    def alive_at(self, t: int) -> bool:
        """True when the child is authoritative at instant ``t``."""
        return self.start <= t < self.end

    def covers_key(self, key: int) -> bool:
        """True when ``key`` falls in the child's key range."""
        return self.low <= key < self.high

    def intersects(self, low: int, high: int, t_start: int, t_end: int) -> bool:
        """True when the child's rectangle meets the query rectangle."""
        return (self.low < high and low < self.high
                and self.start < t_end and t_start < self.end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "now" if self.end == NOW else self.end
        return (
            f"Index([{self.low},{self.high}) x [{self.start},{end}) "
            f"-> {self.child})"
        )


register_codec(LEAF_KIND, RecordCodec(
    fmt="<qqqd",
    to_tuple=lambda e: (e.key, e.start, e.end, e.value),
    from_tuple=lambda t: LeafEntry(*t),
))
register_codec(INDEX_KIND, RecordCodec(
    fmt="<qqqqq",
    to_tuple=lambda e: (e.low, e.high, e.start, e.end, e.child),
    from_tuple=lambda t: IndexEntry(*t),
))

#: Serialized entry widths (capacity computations in benchmarks).
LEAF_ENTRY_BYTES = 32
INDEX_ENTRY_BYTES = 40

#: The paper's 4-byte-field layout: key/start/end/value at 4 bytes each.
PAPER_LEAF_ENTRY_BYTES = 16
PAPER_INDEX_ENTRY_BYTES = 20
