"""The Multiversion B-Tree ([BGO+96]) — the paper's comparison baseline.

A partially persistent B+-tree over a transaction-time update stream: every
insert/delete creates a new logical version while all older versions stay
queryable.  The structure guarantees a minimum *key density* per page (the
weak version condition), restructures via version splits followed by key
splits or sibling merges (the strong version condition), and answers the
range-snapshot query "keys in ``r`` alive at ``t``" in optimal
``O(log_b n + s/b)`` I/Os.

The paper's naive RTA competitor retrieves all tuples in a key-time
rectangle from this tree and aggregates them on the fly; that plan lives in
:mod:`repro.baselines.mvbt_rta` on top of
:meth:`~repro.mvbt.tree.MVBT.rectangle_query`.
"""

from repro.mvbt.config import MVBTConfig
from repro.mvbt.entries import IndexEntry, LeafEntry
from repro.mvbt.tree import MVBT

__all__ = ["IndexEntry", "LeafEntry", "MVBT", "MVBTConfig"]
