"""MVBT tuning parameters and their consistency rules.

[BGO+96] parameterizes the structure by the page capacity ``b``, the weak
version condition ``d`` (minimum alive entries per non-root page at any
instant of its lifespan), and a strong condition window
``[strong_min, strong_max]`` every freshly restructured page must fall into.
The window is what guarantees a freshly created page absorbs O(b) further
updates before it can trigger restructuring again, which is the amortization
argument behind the tree's linear space.

The constraints checked here are the ones the correctness/space proofs need:

* ``d >= 2`` — every non-root index page then keeps at least two alive
  children, so a page needing a merge always finds an adjacent sibling;
* ``strong_min <= 2 * d - 1`` — merging two pages that both satisfy the weak
  condition (one of them just dipped to ``d - 1``) cannot strong-underflow;
* ``(strong_max + 1) // 2 >= strong_min`` — a key split of a
  strong-overflowing pool leaves both halves above ``strong_min``;
* ``b + d - 1 <= 2 * strong_max`` — a merge pool always key-splits into at
  most two pages;
* ``strong_max <= b - 1`` — a fresh page accepts at least one insertion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class MVBTConfig:
    """Validated MVBT parameters.

    The defaults follow the fractions used throughout the literature:
    ``d = 0.2 b``, strong window ``[2d - 1, 0.8 b]``.
    """

    capacity: int = 32
    weak_min: int = 0          # 0 -> derive as max(2, ceil(0.2 * capacity))
    strong_min: int = 0        # 0 -> derive (see __post_init__)
    strong_max: int = 0        # 0 -> derive as floor(0.8 * capacity)

    def __post_init__(self) -> None:
        if self.capacity < 4:
            raise ValueError("MVBT needs page capacity >= 4")
        if self.weak_min == 0:
            object.__setattr__(self, "weak_min",
                               max(2, math.ceil(0.2 * self.capacity)))
        if self.strong_max == 0:
            object.__setattr__(self, "strong_max",
                               min(self.capacity - 1,
                                   math.floor(0.8 * self.capacity)))
        if self.strong_min == 0:
            # As high as the proofs permit: bounded by mergeability
            # (2d - 1) and by what a key split can leave on each side.
            derived = min(2 * self.weak_min - 1, (self.strong_max + 1) // 2)
            object.__setattr__(self, "strong_min",
                               max(self.weak_min, derived))
        self._validate()

    def _validate(self) -> None:
        b, d = self.capacity, self.weak_min
        if not (2 <= d <= self.strong_min <= self.strong_max <= b - 1):
            raise ValueError(
                f"inconsistent MVBT bounds: d={d}, "
                f"strong=[{self.strong_min},{self.strong_max}], b={b}"
            )
        if self.strong_min > 2 * d - 1:
            raise ValueError(
                f"strong_min={self.strong_min} > 2d-1={2 * d - 1}: "
                "a sibling merge could strong-underflow"
            )
        if (self.strong_max + 1) // 2 < self.strong_min:
            raise ValueError(
                f"key split of a strong-overflowing pool would "
                f"underflow: strong=[{self.strong_min},{self.strong_max}]"
            )
        if b + d - 1 > 2 * self.strong_max:
            raise ValueError(
                f"merge pool may exceed two pages: b+d-1={b + d - 1} > "
                f"2*strong_max={2 * self.strong_max}"
            )
