"""The Multiversion B-Tree ([BGO+96]).

Partial persistence of a B+-tree over a transaction-time stream: an update
at time ``t`` produces version ``t`` while every earlier version stays
queryable.  The implementation follows the published algorithm:

* **weak version condition** — every non-root page holds at least
  ``d`` entries alive at any instant of its lifespan, giving snapshot
  queries their ``O(log_b n + s/b)`` optimality;
* **version split** — an overflowing (or weakly underflowing) page is
  logically killed and its alive entries are copied to fresh page(s);
* **strong version condition** — a fresh page must hold between
  ``strong_min`` and ``strong_max`` entries: below, the alive entries of an
  adjacent sibling are merged in (killing the sibling too); above, the pool
  is key-split at the median.  The slack on both sides is what amortizes
  restructuring cost over O(b) intervening updates.

Leaf copies keep the tuple's *logical* start time, so ``(key, start)``
identifies a logical tuple across all its physical copies; rectangle queries
deduplicate on it and qualify tuples through per-copy *responsibility
intervals* (the copy's lifespan clipped to its page's lifespan), which
partition the tuple's true lifespan across its copies.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.model import MAX_KEY, NOW
from repro.errors import (
    DuplicateKeyError,
    InvariantViolation,
    KeyNotFoundError,
    QueryError,
    TimeOrderError,
)
from repro.mvbt.config import MVBTConfig
from repro.mvbt.entries import INDEX_KIND, LEAF_KIND, IndexEntry, LeafEntry
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.storage.rootstar import RootDirectory


class _AliveMirror:
    """Sorted snapshot of a page's alive entries, tagged with ``Page.version``.

    Index pages sort by ``low`` (their alive entries tile the page's key
    range), leaves by ``key`` (1TNF makes alive keys unique), so both admit
    binary search.  ``keys`` is the parallel list fed to :mod:`bisect`.
    """

    __slots__ = ("version", "alive", "keys")

    def __init__(self, page: Page) -> None:
        self.version = page.version
        if page.kind == LEAF_KIND:
            self.alive = sorted((e for e in page.records if e.alive),
                                key=lambda e: e.key)
            self.keys = [e.key for e in self.alive]
        else:
            self.alive = sorted((e for e in page.records if e.alive),
                                key=lambda e: e.low)
            self.keys = [e.low for e in self.alive]


def _mirror(page: Page) -> _AliveMirror:
    m = page.cache
    if m is None or m.version != page.version:
        m = _AliveMirror(page)
        page.cache = m
    return m


@dataclass
class MVBTCounters:
    """Operation counters exposed for experiments and ablations."""

    inserts: int = 0
    deletes: int = 0
    version_splits: int = 0
    key_splits: int = 0
    merges: int = 0
    disposals: int = 0
    root_shrinks: int = 0
    strong_underflows_unmerged: int = 0


class MVBT:
    """A multiversion B+-tree over (key, value) tuples in transaction time.

    Parameters
    ----------
    pool:
        Buffer pool supplying pages.
    config:
        Capacity and version-condition parameters.
    key_space:
        Half-open key domain; keys outside are rejected.
    paged_roots:
        Store root* as directory pages (adds the Theorem 2 ``O(log_b n)``
        lookup I/Os); defaults to the in-memory array.
    dispose_pages:
        Physically free pages whose lifespan came out empty (killed at
        their birth instant).
    """

    #: Observability hook set by :func:`repro.obs.attach_metrics`; a class
    #: attribute (not set in ``__init__``) because :meth:`restore` builds
    #: trees via ``cls.__new__``.
    metrics = None

    def __init__(self, pool: BufferPool, config: Optional[MVBTConfig] = None,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 start_time: int = 1, paged_roots: bool = False,
                 dispose_pages: bool = True) -> None:
        self.pool = pool
        self.config = config or MVBTConfig()
        self.key_space = key_space
        self.dispose_pages = dispose_pages
        self.counters = MVBTCounters()
        self.roots = RootDirectory(pool=pool, paged=paged_roots)
        self.now = start_time
        self._batch_depth = 0
        self._ever_roots: Set[int] = set()
        root = self._new_page(LEAF_KIND, key_space[0], key_space[1],
                              start_time, level=0)
        self._register_root(start_time, root.page_id)

    # -- time & bookkeeping helpers ---------------------------------------------------

    def _advance_time(self, t: int) -> None:
        if t < self.now:
            raise TimeOrderError(
                f"update at t={t} after the clock reached {self.now}"
            )
        self.now = t

    def _new_page(self, kind: str, low: int, high: int, birth: int,
                  level: int) -> Page:
        page = self.pool.allocate(self.config.capacity, kind)
        page.meta.update(low=low, high=high, birth=birth, death=NOW,
                         level=level)
        return page

    def _register_root(self, t: int, page_id: int) -> None:
        self.roots.append(t, page_id)
        self._ever_roots.add(page_id)

    @property
    def root_id(self) -> int:
        return self.roots.latest.root_id

    def begin_batch(self) -> None:
        """Enter batch-ingestion mode (nestable).

        While open, insert/delete maintain each touched leaf's alive mirror
        incrementally instead of letting the next access rebuild it, which
        removes the per-event re-sort from hot leaves.  Restructuring paths
        are untouched (their mutations bump ``Page.version``, so the mirrors
        self-invalidate); page contents are identical either way.
        """
        self._batch_depth += 1

    def end_batch(self) -> None:
        """Leave batch-ingestion mode (one nesting level)."""
        if self._batch_depth <= 0:
            raise ValueError("end_batch() without matching begin_batch()")
        self._batch_depth -= 1

    # -- updates ----------------------------------------------------------------------

    def insert(self, key: int, value: float, t: int) -> None:
        """Insert a tuple alive from ``t`` (transaction-time semantics).

        Raises :class:`DuplicateKeyError` if ``key`` is currently alive
        (1TNF) and :class:`TimeOrderError` on out-of-order timestamps.
        """
        self._advance_time(t)
        self._check_key(key)
        path = self._descend_alive(key)
        leaf = path[-1]
        m = _mirror(leaf)
        i = bisect_left(m.keys, key)
        if i < len(m.alive) and m.alive[i].key == key:
            raise DuplicateKeyError(
                f"key {key} is alive since t={m.alive[i].start}"
            )
        entry = LeafEntry(key, t, NOW, value)
        leaf.add(entry)
        if self._batch_depth:
            m.alive.insert(i, entry)
            m.keys.insert(i, key)
            m.version = leaf.version
        self.counters.inserts += 1
        if leaf.overflowed:
            self._restructure(path, t)
            self._maybe_shrink_root(t)

    def delete(self, key: int, t: int) -> float:
        """Logically delete the alive tuple with ``key`` at time ``t``.

        Returns the tuple's value.  A tuple inserted and deleted at the same
        instant never existed for any queryable version and is removed
        physically.
        """
        self._advance_time(t)
        self._check_key(key)
        path = self._descend_alive(key)
        leaf = path[-1]
        m = _mirror(leaf)
        i = bisect_left(m.keys, key)
        target: Optional[LeafEntry] = None
        if i < len(m.alive) and m.alive[i].key == key:
            target = m.alive[i]
        if target is None:
            raise KeyNotFoundError(f"no alive tuple with key {key}")
        if target.start == t:
            leaf.remove(target)
        else:
            target.end = t
        leaf.mark_dirty()
        if self._batch_depth:
            del m.alive[i]
            del m.keys[i]
            m.version = leaf.version
        self.counters.deletes += 1
        if (leaf.page_id != self.root_id
                and len(_mirror(leaf).alive) < self.config.weak_min):
            self._restructure(path, t)
            self._maybe_shrink_root(t)
        return target.value

    def update(self, key: int, value: float, t: int) -> None:
        """Replace the alive tuple's value at ``t`` (delete + insert)."""
        self.delete(key, t)
        self.insert(key, value, t)

    def _check_key(self, key: int) -> None:
        if not (self.key_space[0] <= key < self.key_space[1]):
            raise QueryError(f"key {key} outside key space {self.key_space}")

    def _descend_alive(self, key: int) -> List[Page]:
        """Path of pages from the latest root to the leaf covering ``key``."""
        path = [self.pool.fetch(self.root_id)]
        while path[-1].kind == INDEX_KIND:
            page = path[-1]
            m = _mirror(page)
            i = bisect_right(m.keys, key) - 1
            child_id = None
            if i >= 0:
                entry = m.alive[i]
                if entry.covers_key(key):
                    child_id = entry.child
            if child_id is None:
                raise InvariantViolation(
                    f"index page {page.page_id} has no alive route for "
                    f"key {key}"
                )
            path.append(self.pool.fetch(child_id))
        return path

    @staticmethod
    def _alive_count(page: Page) -> int:
        return sum(1 for entry in page.records if entry.alive)

    @staticmethod
    def _alive_entries(page: Page) -> List:
        return [entry for entry in page.records if entry.alive]

    # -- restructuring -----------------------------------------------------------------

    def _restructure(self, path: List[Page], t: int) -> None:
        """Version split ``path[-1]`` (plus strong-condition repair) at ``t``."""
        page = path[-1]
        parent = path[-2] if len(path) >= 2 else None
        cfg = self.config
        self.counters.version_splits += 1

        pool_entries = self._copy_alive(page)
        dead_pages = [page]

        if len(pool_entries) < cfg.strong_min and parent is not None:
            sibling = self._find_sibling(parent, page)
            if sibling is not None:
                pool_entries.extend(self._copy_alive(sibling))
                dead_pages.append(sibling)
                self.counters.merges += 1
            else:
                self.counters.strong_underflows_unmerged += 1

        low = min(p.meta["low"] for p in dead_pages)
        high = max(p.meta["high"] for p in dead_pages)
        level = page.meta["level"]
        kind = page.kind

        new_pages: List[Page] = []
        if len(pool_entries) > cfg.strong_max:
            new_pages.extend(
                self._key_split(pool_entries, kind, low, high, t, level)
            )
        else:
            fresh = self._new_page(kind, low, high, t, level)
            for entry in sorted(pool_entries, key=self._sort_key):
                fresh.add(entry)
            new_pages.append(fresh)

        for dead in dead_pages:
            dead.meta["death"] = t
            # An alive entry born at the split instant has an empty
            # responsibility interval in the dying page (the page is never
            # consulted for instants >= t): its authoritative copy lives in
            # the new page(s).  Pruning it returns the dead page to <= b
            # records — in [BGO+96] the triggering entry goes straight to
            # the new block.
            dead.records = [
                entry for entry in dead.records
                if not (entry.alive and entry.start == t)
            ]
            dead.mark_dirty()

        if parent is None:
            self._install_new_root(new_pages, t, level)
        else:
            self._update_parent(path, dead_pages, new_pages, t)

        for dead in dead_pages:
            if self.dispose_pages and dead.meta["birth"] == t:
                # Empty lifespan: no version can ever consult this page.
                self.pool.free(dead.page_id)
                self.counters.disposals += 1

    def _copy_alive(self, page: Page) -> List:
        if page.kind == LEAF_KIND:
            return [LeafEntry(e.key, e.start, e.end, e.value)
                    for e in page.records if e.alive]
        return [IndexEntry(e.low, e.high, e.start, e.end, e.child)
                for e in page.records if e.alive]

    @staticmethod
    def _sort_key(entry) -> int:
        return entry.key if isinstance(entry, LeafEntry) else entry.low

    def _key_split(self, pool_entries: List, kind: str, low: int, high: int,
                   t: int, level: int) -> List[Page]:
        self.counters.key_splits += 1
        ordered = sorted(pool_entries, key=self._sort_key)
        mid = len(ordered) // 2
        split_key = self._sort_key(ordered[mid])
        assert self._sort_key(ordered[mid - 1]) < split_key, (
            "cannot key-split: duplicate split keys"
        )
        lower = self._new_page(kind, low, split_key, t, level)
        upper = self._new_page(kind, split_key, high, t, level)
        for entry in ordered[:mid]:
            lower.add(entry)
        for entry in ordered[mid:]:
            upper.add(entry)
        return [lower, upper]

    def _find_sibling(self, parent: Page, page: Page) -> Optional[Page]:
        """An alive page adjacent to ``page`` under the same parent."""
        low, high = page.meta["low"], page.meta["high"]
        right = left = None
        for entry in parent.records:
            if not entry.alive or entry.child == page.page_id:
                continue
            if entry.low == high:
                right = entry
            elif entry.high == low:
                left = entry
        chosen = right if right is not None else left
        return self.pool.fetch(chosen.child) if chosen is not None else None

    def _install_new_root(self, new_pages: List[Page], t: int,
                          level: int) -> None:
        if len(new_pages) == 1:
            self._register_root(t, new_pages[0].page_id)
            return
        root = self._new_page(INDEX_KIND, self.key_space[0],
                              self.key_space[1], t, level + 1)
        for child in new_pages:
            root.add(IndexEntry(child.meta["low"], child.meta["high"],
                                t, NOW, child.page_id))
        self._register_root(t, root.page_id)

    def _update_parent(self, path: List[Page], dead_pages: List[Page],
                       new_pages: List[Page], t: int) -> None:
        parent = path[-2]
        dead_ids = {p.page_id for p in dead_pages}
        for entry in list(parent.records):
            if entry.alive and entry.child in dead_ids:
                if entry.start == t:
                    parent.remove(entry)
                else:
                    entry.end = t
        for child in new_pages:
            # Direct append: a key split legitimately pushes the parent two
            # records past capacity for the duration of this restructure.
            parent.records.append(
                IndexEntry(child.meta["low"], child.meta["high"],
                           t, NOW, child.page_id)
            )
        parent.mark_dirty()
        if parent.overflowed:
            self._restructure(path[:-1], t)
        elif (parent.page_id != self.root_id
              and self._alive_count(parent) < self.config.weak_min):
            self._restructure(path[:-1], t)

    def _maybe_shrink_root(self, t: int) -> None:
        """Route around single-child index roots (keeps heights tight)."""
        while True:
            root = self.pool.fetch(self.root_id)
            if root.kind != INDEX_KIND:
                return
            alive = self._alive_entries(root)
            if len(alive) != 1:
                return
            child_id = alive[0].child
            root.meta["death"] = t
            self.counters.root_shrinks += 1
            self._register_root(t, child_id)
            if self.dispose_pages and root.meta["birth"] == t:
                self.pool.free(root.page_id)
                self.counters.disposals += 1

    # -- queries ------------------------------------------------------------------------

    def snapshot_point(self, key: int, t: int) -> Optional[float]:
        """Value of the tuple with ``key`` alive at instant ``t`` (or None)."""
        self._check_key(key)
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("mvbt.snapshot_point", key=key, t=t):
                return self._snapshot_point(key, t, tracer)
        return self._snapshot_point(key, t, None)

    def _snapshot_point(self, key: int, t: int, tracer) -> Optional[float]:
        """Version-``t`` root-to-leaf descent behind :meth:`snapshot_point`."""
        page = self.pool.fetch(self.roots.find(t).root_id)
        pages = 1
        if tracer is not None:
            tracer.event("mvbt.page", page=page.page_id, kind=page.kind)
        result = None
        while page.kind == INDEX_KIND:
            child_id = None
            for entry in page.records:
                if entry.alive_at(t) and entry.covers_key(key):
                    child_id = entry.child
                    break
            if child_id is None:
                break
            page = self.pool.fetch(child_id)
            pages += 1
            if tracer is not None:
                tracer.event("mvbt.page", page=page.page_id, kind=page.kind)
        else:
            for entry in page.records:
                if entry.key == key and entry.alive_at(t):
                    result = entry.value
                    break
        if self.metrics is not None:
            self.metrics.descent_pages.observe(pages)
        return result

    def range_snapshot(self, low: int, high: int,
                       t: int) -> List[Tuple[int, float]]:
        """All (key, value) pairs with key in ``[low, high)`` alive at ``t``.

        The optimal MVBT query: ``O(log_b n + s/b)`` I/Os for ``s`` results.
        """
        if low >= high:
            raise QueryError(f"empty key range [{low}, {high})")
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("mvbt.range_snapshot", low=low, high=high, t=t):
                return self._range_snapshot(low, high, t, tracer)
        return self._range_snapshot(low, high, t, None)

    def _range_snapshot(self, low: int, high: int, t: int,
                        tracer) -> List[Tuple[int, float]]:
        """Version-``t`` subtree traversal behind :meth:`range_snapshot`."""
        results: List[Tuple[int, float]] = []
        try:
            root_id = self.roots.find(t).root_id
        except LookupError:
            return results
        stack = [root_id]
        pages = 0
        while stack:
            page = self.pool.fetch(stack.pop())
            pages += 1
            if tracer is not None:
                tracer.event("mvbt.page", page=page.page_id, kind=page.kind)
            if page.kind == INDEX_KIND:
                for entry in page.records:
                    if entry.alive_at(t) and entry.low < high and low < entry.high:
                        stack.append(entry.child)
            else:
                for entry in page.records:
                    if entry.alive_at(t) and low <= entry.key < high:
                        results.append((entry.key, entry.value))
        if self.metrics is not None:
            self.metrics.descent_pages.observe(pages)
        results.sort()
        return results

    def rectangle_query(self, low: int, high: int, t_start: int,
                        t_end: int) -> List[Tuple[int, int, int, float]]:
        """All logical tuples with key in ``[low, high)`` whose lifespan
        intersects the instants ``[t_start, t_end)``.

        Returns ``(key, start, end, value)`` per tuple, deduplicated across
        physical copies; ``end`` is the tightest bound among the copies the
        traversal encountered.  This is the access path of the paper's naive
        RTA baseline — its cost grows with the query-rectangle size.
        """
        if low >= high or t_start >= t_end:
            raise QueryError("empty query rectangle")
        tracer = self.pool.tracer
        if tracer.enabled:
            with tracer.span("mvbt.rectangle_query", low=low, high=high,
                             t_start=t_start, t_end=t_end) as span:
                found = self._rectangle_query(low, high, t_start, t_end,
                                              tracer, span)
                return sorted(found.values())
        found = self._rectangle_query(low, high, t_start, t_end, None, None)
        return sorted(found.values())

    def _rectangle_query(self, low: int, high: int, t_start: int, t_end: int,
                         tracer, span
                         ) -> Dict[Tuple[int, int],
                                   Tuple[int, int, int, float]]:
        """Multi-root traversal behind :meth:`rectangle_query`."""
        found: Dict[Tuple[int, int], Tuple[int, int, int, float]] = {}
        # Tightest stored end per tuple over ALL copies in key range, even
        # those whose responsibility misses the query window.  A copy's
        # ``end`` is either the open sentinel or the true death time (1TNF:
        # one delete per logical tuple), so the minimum is authoritative.
        # Without this, a delete coinciding with a version split leaves the
        # closed copy in a page born at the death instant — an empty
        # responsibility interval — and only stale open copies would report.
        ends: Dict[Tuple[int, int], int] = {}
        visited: Set[int] = set()
        for root in self.roots.roots_intersecting(t_start, t_end):
            stack = [root.root_id]
            while stack:
                page_id = stack.pop()
                if page_id in visited:
                    continue
                visited.add(page_id)
                page = self.pool.fetch(page_id)
                if tracer is not None:
                    tracer.event("mvbt.page", page=page_id, kind=page.kind)
                if page.kind == INDEX_KIND:
                    for entry in page.records:
                        if entry.intersects(low, high, t_start, t_end):
                            stack.append(entry.child)
                    continue
                birth, death = page.meta["birth"], page.meta["death"]
                for entry in page.records:
                    if not (low <= entry.key < high):
                        continue
                    tid = entry.tuple_id
                    known_end = ends.get(tid)
                    if known_end is None or entry.end < known_end:
                        ends[tid] = entry.end
                    resp_start = max(entry.start, birth)
                    resp_end = min(entry.end, death)
                    if resp_start < resp_end and resp_start < t_end \
                            and t_start < resp_end:
                        if tid not in found:
                            found[tid] = (entry.key, entry.start,
                                          entry.end, entry.value)
        for tid, (key, start, _end, value) in found.items():
            found[tid] = (key, start, ends[tid], value)
        if span is not None:
            span.attrs["pages"] = len(visited)
        if self.metrics is not None:
            self.metrics.descent_pages.observe(len(visited))
        return found

    # -- persistence -------------------------------------------------------------------

    def state(self) -> dict:
        """JSON-safe structural state (pages live in the pool's disk)."""
        from dataclasses import asdict

        return {
            "type": "mvbt",
            "config": asdict(self.config),
            "key_space": list(self.key_space),
            "now": self.now,
            "dispose_pages": self.dispose_pages,
            "roots": [[e.start, e.root_id] for e in self.roots.entries()],
            "ever_roots": sorted(self._ever_roots),
            "counters": asdict(self.counters),
        }

    @classmethod
    def restore(cls, pool: BufferPool, state: dict) -> "MVBT":
        tree = cls.__new__(cls)
        tree.pool = pool
        tree.config = MVBTConfig(**state["config"])
        tree.key_space = tuple(state["key_space"])
        tree.now = state["now"]
        tree.dispose_pages = state["dispose_pages"]
        tree.counters = MVBTCounters(**state["counters"])
        tree._batch_depth = 0
        tree._ever_roots = set(state["ever_roots"])
        tree.roots = RootDirectory()
        for start, root_id in state["roots"]:
            tree.roots.append(start, root_id)
        return tree

    def save(self, directory: str) -> None:
        """Checkpoint the tree (pages + structure) into ``directory``."""
        from repro.storage.checkpoint import write_checkpoint

        write_checkpoint(self.pool, self.state(), directory)

    @classmethod
    def load(cls, directory: str, buffer_pages: int = 64) -> "MVBT":
        """Reopen a tree from a checkpoint written by :meth:`save`."""
        from repro.storage.checkpoint import read_checkpoint

        pool, state = read_checkpoint(directory, buffer_pages)
        if state.get("type") != "mvbt":
            raise ValueError(
                f"checkpoint holds a {state.get('type')!r}, not an MVBT"
            )
        return cls.restore(pool, state)

    # -- introspection & invariants ---------------------------------------------------

    def page_ids(self) -> Set[int]:
        """Ids of every page reachable from any root (live structure)."""
        seen: Set[int] = set()
        for root in self.roots.entries():
            stack = [root.root_id]
            while stack:
                pid = stack.pop()
                if pid in seen:
                    continue
                seen.add(pid)
                page = self.pool.fetch(pid)
                if page.kind == INDEX_KIND:
                    stack.extend(e.child for e in page.records)
        return seen

    def page_count(self) -> int:
        """Pages reachable from root* — the space metric of Figure 4a."""
        return len(self.page_ids()) + self.roots.page_count

    def check_invariants(self) -> None:
        """Exhaustive structural check; raises AssertionError on violation.

        Verifies: capacity, the weak version condition at every critical
        instant of every never-root page, alive-children tiling of index
        pages, entry/child metadata agreement, and per-instant key
        uniqueness (1TNF) in leaves.
        """
        cfg = self.config
        for pid in self.page_ids():
            page = self.pool.fetch(pid)
            assert len(page.records) <= cfg.capacity, (
                f"page {pid} over capacity"
            )
            birth, death = page.meta["birth"], page.meta["death"]
            assert birth < death or not page.records, (
                f"page {pid} has non-empty lifespan violation"
            )
            instants = {birth}
            for entry in page.records:
                if birth <= entry.start < death:
                    instants.add(entry.start)
                if birth < entry.end < death:
                    instants.add(entry.end)
            for t in instants:
                alive = [e for e in page.records if e.alive_at(t)]
                if pid not in self._ever_roots:
                    assert len(alive) >= cfg.weak_min, (
                        f"page {pid} violates weak condition at t={t}: "
                        f"{len(alive)} < {cfg.weak_min}"
                    )
                if page.kind == INDEX_KIND:
                    self._check_tiling(page, alive, t)
                else:
                    keys = [e.key for e in alive]
                    assert len(keys) == len(set(keys)), (
                        f"1TNF violation in page {pid} at t={t}"
                    )
            if page.kind == INDEX_KIND:
                for entry in page.records:
                    child = self.pool.fetch(entry.child)
                    assert child.meta["low"] >= page.meta["low"] \
                        and child.meta["high"] <= page.meta["high"], (
                            f"child {entry.child} range escapes parent {pid}"
                        )
                    assert child.meta["level"] == page.meta["level"] - 1, (
                        f"level mismatch {pid} -> {entry.child}"
                    )

    def _check_tiling(self, page: Page, alive: Sequence[IndexEntry],
                      t: int) -> None:
        ordered = sorted(alive, key=lambda e: e.low)
        for left, right in zip(ordered, ordered[1:]):
            assert left.high == right.low, (
                f"index page {page.page_id} at t={t}: alive children do not "
                f"tile ({left.high} != {right.low})"
            )
        if ordered:
            assert ordered[0].low == page.meta["low"], (
                f"index page {page.page_id} at t={t}: leftmost gap"
            )
            assert ordered[-1].high == page.meta["high"], (
                f"index page {page.page_id} at t={t}: rightmost gap"
            )
