"""TQL execution over a :class:`~repro.core.warehouse.TemporalWarehouse`.

``execute(warehouse, text_or_statement)`` parses (if needed), fills the
defaults — whole key space, everything up to ``now`` — and dispatches:
plain SELECTs go through the warehouse's cost-based planner, TIMELINE uses
the RTA rollup, SNAPSHOT/HISTORY use the tuple store.  ``explain`` returns
the planner's decision for a SELECT without running it; ``EXPLAIN SELECT
...`` (the statement) additionally *runs* the select under a tracer and
returns an :class:`~repro.obs.explain.ExplainReport` whose ``str()`` is
the indented span-tree plan with per-node I/O and CPU.

The ``warehouse`` argument is duck-typed: a
:class:`~repro.serve.sharded.ShardedWarehouse` works too.  EXPLAIN
against a sharded warehouse returns its list of per-shard
:class:`~repro.serve.sharded.ShardPlan` decisions instead of a traced
report (span tracing is a single-warehouse facility).

``as_of`` pins a statement to a snapshot time — the AS OF semantics the
:mod:`repro.serve` server runs every read under.  The default interval
becomes "everything up to the snapshot" and explicit intervals are clipped
so they end at or before ``as_of + 1``; a rectangle that only touches
closed versions never races a concurrent writer.  Every error raised here
derives from :class:`~repro.errors.ReproError` and carries a stable
``code``, so process boundaries can map failures without string matching.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import QueryPlan, TemporalWarehouse
from repro.errors import QueryError
from repro.obs.explain import ExplainReport, explain_query
from repro.tql.parser import (
    DeleteStatement,
    ExplainStatement,
    HistoryStatement,
    InsertStatement,
    LoadStatement,
    SelectStatement,
    SnapshotStatement,
    parse,
)

_AGGREGATES = {a.name: a for a in (SUM, COUNT, AVG, MIN, MAX)}

StatementLike = Union[str, SelectStatement, SnapshotStatement,
                      HistoryStatement]


def _aggregate_named(name: str):
    aggregate = _AGGREGATES.get(name)
    if aggregate is None:
        raise QueryError(f"unknown aggregate {name!r}")
    return aggregate


def _resolve_rectangle(warehouse: TemporalWarehouse,
                       statement: SelectStatement,
                       as_of: Optional[int] = None):
    lo, hi = warehouse.key_space
    key_range = KeyRange(*(statement.key_range or (lo, hi)))
    horizon = (as_of if as_of is not None else warehouse.now) + 1
    if statement.interval is not None:
        start, end = statement.interval
        if as_of is not None and end > horizon:
            end = horizon
        if start >= end:
            raise QueryError(
                f"interval [{statement.interval[0]}, "
                f"{statement.interval[1]}) is empty at snapshot "
                f"time {as_of}"
            )
        interval = Interval(start, end)
    else:
        interval = Interval(1, max(horizon, 2))
    return key_range, interval


def execute(warehouse: TemporalWarehouse,
            statement: StatementLike, *,
            as_of: Optional[int] = None) -> Any:
    """Run one TQL statement; the result type depends on the statement.

    * plain ``SELECT`` — a float (``None`` for AVG/MIN/MAX of nothing);
    * ``SELECT TIMELINE(...)`` — a list of ``(Interval, value)`` buckets;
    * ``SNAPSHOT`` — a list of ``(key, value)`` pairs;
    * ``HISTORY`` — a list of :class:`~repro.core.model.TemporalTuple`;
    * ``EXPLAIN SELECT ...`` — an :class:`~repro.obs.explain.ExplainReport`
      (plan decision, result, and the traced span tree), or per-shard
      plans for a sharded warehouse.

    ``as_of`` pins reads to a snapshot time (see the module docstring);
    write statements ignore it.
    """
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, ExplainStatement):
        return explain_select(warehouse, statement.select, as_of=as_of)
    if isinstance(statement, SelectStatement):
        key_range, interval = _resolve_rectangle(warehouse, statement, as_of)
        aggregate = _aggregate_named(statement.agg.name)
        if statement.agg.timeline_buckets is not None:
            return warehouse.aggregates.timeline(
                key_range, interval, statement.agg.timeline_buckets,
                aggregate,
            )
        return warehouse.aggregate(key_range, interval, aggregate)
    if isinstance(statement, SnapshotStatement):
        lo, hi = warehouse.key_space
        key_range = KeyRange(*(statement.key_range or (lo, hi)))
        at = statement.at
        if as_of is not None:
            at = min(at, as_of)
        return warehouse.snapshot(key_range, at)
    if isinstance(statement, HistoryStatement):
        return warehouse.history(statement.key)
    if isinstance(statement, InsertStatement):
        warehouse.insert(statement.key, statement.value, statement.at)
        return f"inserted key {statement.key} at t={statement.at}"
    if isinstance(statement, DeleteStatement):
        value = warehouse.delete(statement.key, statement.at)
        return (f"deleted key {statement.key} at t={statement.at} "
                f"(value was {value})")
    if isinstance(statement, LoadStatement):
        mode = "buffered" if statement.buffered else "direct"
        report = warehouse.load_events(statement.events, mode=mode)
        return (f"loaded {report.events} events ({report.inserts} inserts, "
                f"{report.deletes} deletes, mode={mode})")
    raise QueryError(f"cannot execute {type(statement).__name__}")


def execute_select_batch(warehouse: TemporalWarehouse,
                         requests) -> list:
    """Answer many plain ``SELECT`` aggregates with one batched sweep.

    ``requests`` is a sequence of ``(SelectStatement, as_of)`` pairs —
    each statement resolves its own rectangle (AS OF clipping included),
    then every query rides a single
    :meth:`~repro.core.warehouse.TemporalWarehouse.aggregate_batch`
    call.  The returned list is positional: each slot holds the value
    serial :func:`execute` would have produced, or the *exception
    instance* that statement would have raised (resolution errors and
    per-query sweep errors alike), so one bad rectangle fails only
    itself.  TIMELINE selects and non-SELECT statements are rejected
    in-band the same way.
    """
    queries = []
    slots = []
    results: list = [None] * len(requests)
    for i, (statement, as_of) in enumerate(requests):
        try:
            if not isinstance(statement, SelectStatement) \
                    or statement.agg.timeline_buckets is not None:
                raise QueryError(
                    "batch execution supports plain SELECT aggregates")
            key_range, interval = _resolve_rectangle(warehouse, statement,
                                                     as_of)
            aggregate = _aggregate_named(statement.agg.name)
        except Exception as exc:  # noqa: BLE001 — in-band per slot
            results[i] = exc
            continue
        slots.append(i)
        queries.append((key_range, interval, aggregate))
    if queries:
        for i, answer in zip(slots, warehouse.aggregate_batch(queries)):
            results[i] = answer
    return results


def explain(warehouse: TemporalWarehouse,
            statement: StatementLike, *,
            as_of: Optional[int] = None) -> QueryPlan:
    """The planner's decision for a SELECT, without executing it.

    For a sharded warehouse the return value is its list of per-shard
    :class:`~repro.serve.sharded.ShardPlan` decisions.
    """
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, ExplainStatement):
        statement = statement.select
    if not isinstance(statement, SelectStatement):
        raise QueryError("only SELECT statements have query plans")
    key_range, interval = _resolve_rectangle(warehouse, statement, as_of)
    return warehouse.explain(key_range, interval,
                             _aggregate_named(statement.agg.name))


def explain_select(warehouse: TemporalWarehouse,
                   statement: SelectStatement, *,
                   as_of: Optional[int] = None) -> ExplainReport:
    """Run a SELECT under a tracer and report the full span tree.

    The traced counterpart of :func:`explain`: the query actually executes
    (under a temporarily attached tracer), so the report carries the
    result and exact per-node I/O and CPU alongside the plan decision.
    Sharded warehouses have no single span tree; they return their
    per-shard plan decisions instead.
    """
    if statement.agg.timeline_buckets is not None:
        raise QueryError(
            "EXPLAIN supports plain SELECT aggregates, not TIMELINE"
        )
    key_range, interval = _resolve_rectangle(warehouse, statement, as_of)
    if not hasattr(warehouse, "run_plan"):  # sharded: per-shard plans
        return warehouse.explain(key_range, interval,
                                 _aggregate_named(statement.agg.name))
    return explain_query(warehouse, key_range, interval,
                         _aggregate_named(statement.agg.name))
