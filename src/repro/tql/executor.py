"""TQL execution over a :class:`~repro.core.warehouse.TemporalWarehouse`.

``execute(warehouse, text_or_statement)`` parses (if needed), fills the
defaults — whole key space, everything up to ``now`` — and dispatches:
plain SELECTs go through the warehouse's cost-based planner, TIMELINE uses
the RTA rollup, SNAPSHOT/HISTORY use the tuple store.  ``explain`` returns
the planner's decision for a SELECT without running it; ``EXPLAIN SELECT
...`` (the statement) additionally *runs* the select under a tracer and
returns an :class:`~repro.obs.explain.ExplainReport` whose ``str()`` is
the indented span-tree plan with per-node I/O and CPU.
"""

from __future__ import annotations

from typing import Any, Union

from repro.core.aggregates import AVG, COUNT, MAX, MIN, SUM
from repro.core.model import Interval, KeyRange
from repro.core.warehouse import QueryPlan, TemporalWarehouse
from repro.errors import QueryError
from repro.obs.explain import ExplainReport, explain_query
from repro.tql.parser import (
    DeleteStatement,
    ExplainStatement,
    HistoryStatement,
    InsertStatement,
    SelectStatement,
    SnapshotStatement,
    parse,
)

_AGGREGATES = {a.name: a for a in (SUM, COUNT, AVG, MIN, MAX)}

StatementLike = Union[str, SelectStatement, SnapshotStatement,
                      HistoryStatement]


def _resolve_rectangle(warehouse: TemporalWarehouse,
                       statement: SelectStatement):
    lo, hi = warehouse.key_space
    key_range = KeyRange(*(statement.key_range or (lo, hi)))
    if statement.interval is not None:
        interval = Interval(*statement.interval)
    else:
        interval = Interval(1, max(warehouse.now + 1, 2))
    return key_range, interval


def execute(warehouse: TemporalWarehouse,
            statement: StatementLike) -> Any:
    """Run one TQL statement; the result type depends on the statement.

    * plain ``SELECT`` — a float (``None`` for AVG/MIN/MAX of nothing);
    * ``SELECT TIMELINE(...)`` — a list of ``(Interval, value)`` buckets;
    * ``SNAPSHOT`` — a list of ``(key, value)`` pairs;
    * ``HISTORY`` — a list of :class:`~repro.core.model.TemporalTuple`;
    * ``EXPLAIN SELECT ...`` — an :class:`~repro.obs.explain.ExplainReport`
      (plan decision, result, and the traced span tree).
    """
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, ExplainStatement):
        return explain_select(warehouse, statement.select)
    if isinstance(statement, SelectStatement):
        key_range, interval = _resolve_rectangle(warehouse, statement)
        aggregate = _AGGREGATES[statement.agg.name]
        if statement.agg.timeline_buckets is not None:
            return warehouse.aggregates.timeline(
                key_range, interval, statement.agg.timeline_buckets,
                aggregate,
            )
        return warehouse.aggregate(key_range, interval, aggregate)
    if isinstance(statement, SnapshotStatement):
        lo, hi = warehouse.key_space
        key_range = KeyRange(*(statement.key_range or (lo, hi)))
        return warehouse.snapshot(key_range, statement.at)
    if isinstance(statement, HistoryStatement):
        return warehouse.history(statement.key)
    if isinstance(statement, InsertStatement):
        warehouse.insert(statement.key, statement.value, statement.at)
        return f"inserted key {statement.key} at t={statement.at}"
    if isinstance(statement, DeleteStatement):
        value = warehouse.delete(statement.key, statement.at)
        return (f"deleted key {statement.key} at t={statement.at} "
                f"(value was {value})")
    raise QueryError(f"cannot execute {type(statement).__name__}")


def explain(warehouse: TemporalWarehouse,
            statement: StatementLike) -> QueryPlan:
    """The planner's decision for a SELECT, without executing it."""
    if isinstance(statement, str):
        statement = parse(statement)
    if isinstance(statement, ExplainStatement):
        statement = statement.select
    if not isinstance(statement, SelectStatement):
        raise QueryError("only SELECT statements have query plans")
    key_range, interval = _resolve_rectangle(warehouse, statement)
    return warehouse.explain(key_range, interval,
                             _AGGREGATES[statement.agg.name])


def explain_select(warehouse: TemporalWarehouse,
                   statement: SelectStatement) -> ExplainReport:
    """Run a SELECT under a tracer and report the full span tree.

    The traced counterpart of :func:`explain`: the query actually executes
    (under a temporarily attached tracer), so the report carries the
    result and exact per-node I/O and CPU alongside the plan decision.
    """
    if statement.agg.timeline_buckets is not None:
        raise QueryError(
            "EXPLAIN supports plain SELECT aggregates, not TIMELINE"
        )
    key_range, interval = _resolve_rectangle(warehouse, statement)
    return explain_query(warehouse, key_range, interval,
                         _AGGREGATES[statement.agg.name])
