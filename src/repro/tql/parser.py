"""TQL recursive-descent parser producing statement ASTs.

Grammar (keywords case-insensitive; ``[a, b)`` denotes half-open)::

    statement  := explain | select | snapshot | history | load
    explain    := EXPLAIN select
    load       := LOAD [BUFFERED] loadevent (',' loadevent)*
    loadevent  := INSERT KEY INT VALUE NUMBER AT INT
                | DELETE KEY INT AT INT
    select     := SELECT aggspec WHERE predicates
                | SELECT aggspec                      -- no filter: whole space
    aggspec    := (SUM|AVG|MIN|MAX) '(' VALUE ')'
                | COUNT '(' '*' ')'
                | TIMELINE '(' (SUM|COUNT|AVG) ',' INT ')'
    snapshot   := SNAPSHOT AT INT [WHERE keypred]
    history    := HISTORY OF INT
    predicates := pred (AND pred)*
    pred       := keypred | timepred
    keypred    := KEY IN range | KEY '=' INT
    timepred   := TIME DURING range | TIME AT INT
    range      := '[' INT ',' INT ')'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import QueryError
from repro.tql.lexer import Token, tokenize

AGG_NAMES = ("SUM", "COUNT", "AVG", "MIN", "MAX")
TIMELINE_AGGS = ("SUM", "COUNT", "AVG")


class TQLSyntaxError(QueryError):
    """Malformed TQL (reported with the offending token)."""

    code = "SYNTAX"


@dataclass(frozen=True)
class AggSpec:
    """The aggregate of a SELECT: name, plus bucket count for TIMELINE."""

    name: str
    timeline_buckets: Optional[int] = None


@dataclass(frozen=True)
class SelectStatement:
    """``SELECT agg WHERE ...`` — an RTA (or timeline of RTAs)."""

    agg: AggSpec
    key_range: Optional[Tuple[int, int]]    # half-open; None = whole space
    interval: Optional[Tuple[int, int]]     # half-open; None = up to now


@dataclass(frozen=True)
class SnapshotStatement:
    """``SNAPSHOT AT t [WHERE key ...]`` — alive tuples of one version."""

    at: int
    key_range: Optional[Tuple[int, int]]


@dataclass(frozen=True)
class HistoryStatement:
    """``HISTORY OF key`` — every version the key ever had."""

    key: int


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT KEY k VALUE v AT t`` — open a tuple at instant ``t``."""

    key: int
    value: float
    at: int


@dataclass(frozen=True)
class DeleteStatement:
    """``DELETE KEY k AT t`` — logically delete the alive tuple."""

    key: int
    at: int


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN SELECT ...`` — trace the select and render its span tree."""

    select: SelectStatement


@dataclass(frozen=True)
class LoadStatement:
    """``LOAD [BUFFERED] INSERT ..., DELETE ...`` — a bulk event batch.

    ``events`` holds plain ``(op, key, value, time)`` rows in statement
    order; ``BUFFERED`` selects the buffer-tree ingest path (byte-
    identical answers, amortized CPU).
    """

    events: Tuple[Tuple[str, int, float, int], ...]
    buffered: bool = False


Statement = (SelectStatement, SnapshotStatement, HistoryStatement,
             InsertStatement, DeleteStatement, ExplainStatement,
             LoadStatement)


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers -------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _take(self, kind: str) -> Token:
        token = self._current
        if token.kind != kind:
            raise TQLSyntaxError(
                f"expected {kind} at position {token.position}, "
                f"found {token.text or 'end of input'!r}"
            )
        self._index += 1
        return token

    def _accept(self, kind: str) -> Optional[Token]:
        if self._current.kind == kind:
            return self._take(kind)
        return None

    def _int(self) -> int:
        token = self._take("NUMBER")
        try:
            return int(token.text)
        except ValueError:
            raise TQLSyntaxError(
                f"expected an integer at position {token.position}, "
                f"found {token.text!r}"
            ) from None

    def _number(self) -> float:
        return float(self._take("NUMBER").text)

    # -- grammar -------------------------------------------------------------------

    def statement(self):
        """Parse one complete statement followed by end of input."""
        if self._accept("EXPLAIN"):
            self._take("SELECT")
            result = ExplainStatement(select=self._select())
        elif self._accept("SELECT"):
            result = self._select()
        elif self._accept("SNAPSHOT"):
            result = self._snapshot()
        elif self._accept("HISTORY"):
            result = self._history()
        elif self._accept("INSERT"):
            result = self._insert()
        elif self._accept("DELETE"):
            result = self._delete()
        elif self._accept("LOAD"):
            result = self._load()
        else:
            token = self._current
            raise TQLSyntaxError(
                f"expected SELECT, EXPLAIN, SNAPSHOT, HISTORY, INSERT, "
                f"DELETE or LOAD, found {token.text or 'end of input'!r}"
            )
        self._take("EOF")
        return result

    def _select(self) -> SelectStatement:
        agg = self._aggspec()
        key_range = interval = None
        if self._accept("WHERE"):
            key_range, interval = self._predicates()
        return SelectStatement(agg=agg, key_range=key_range,
                               interval=interval)

    def _aggspec(self) -> AggSpec:
        token = self._current
        if token.kind == "TIMELINE":
            self._take("TIMELINE")
            self._take("(")
            inner = self._current
            if inner.kind not in TIMELINE_AGGS:
                raise TQLSyntaxError(
                    f"TIMELINE supports {'/'.join(TIMELINE_AGGS)}, found "
                    f"{inner.text!r}"
                )
            self._take(inner.kind)
            self._take(",")
            buckets = self._int()
            self._take(")")
            if buckets < 1:
                raise TQLSyntaxError("TIMELINE needs at least one bucket")
            return AggSpec(name=inner.kind, timeline_buckets=buckets)
        if token.kind not in AGG_NAMES:
            raise TQLSyntaxError(
                f"expected an aggregate, found {token.text!r}"
            )
        self._take(token.kind)
        self._take("(")
        if token.kind == "COUNT":
            # COUNT(*) is canonical; COUNT(value) is accepted too.
            if self._accept("*") is None:
                self._take("VALUE")
        else:
            self._take("VALUE")
        self._take(")")
        return AggSpec(name=token.kind)

    def _predicates(self) -> Tuple[Optional[Tuple[int, int]],
                                   Optional[Tuple[int, int]]]:
        key_range = interval = None
        while True:
            if self._accept("KEY"):
                if key_range is not None:
                    raise TQLSyntaxError("duplicate key predicate")
                key_range = self._key_predicate()
            elif self._accept("TIME"):
                if interval is not None:
                    raise TQLSyntaxError("duplicate time predicate")
                interval = self._time_predicate()
            else:
                token = self._current
                raise TQLSyntaxError(
                    f"expected KEY or TIME, found {token.text!r}"
                )
            if self._accept("AND") is None:
                break
        return key_range, interval

    def _key_predicate(self) -> Tuple[int, int]:
        if self._accept("IN"):
            return self._range()
        if self._accept("="):
            key = self._int()
            return (key, key + 1)
        raise TQLSyntaxError(
            f"expected IN or = after KEY, found {self._current.text!r}"
        )

    def _time_predicate(self) -> Tuple[int, int]:
        if self._accept("DURING"):
            return self._range()
        if self._accept("AT"):
            instant = self._int()
            return (instant, instant + 1)
        raise TQLSyntaxError(
            f"expected DURING or AT after TIME, found {self._current.text!r}"
        )

    def _range(self) -> Tuple[int, int]:
        self._take("[")
        low = self._int()
        self._take(",")
        high = self._int()
        self._take(")")
        if low >= high:
            raise TQLSyntaxError(f"empty range [{low}, {high})")
        return (low, high)

    def _snapshot(self) -> SnapshotStatement:
        self._take("AT")
        at = self._int()
        key_range = None
        if self._accept("WHERE"):
            self._take("KEY")
            key_range = self._key_predicate()
        return SnapshotStatement(at=at, key_range=key_range)

    def _history(self) -> HistoryStatement:
        self._take("OF")
        return HistoryStatement(key=self._int())

    def _insert(self) -> InsertStatement:
        self._take("KEY")
        key = self._int()
        self._take("VALUE")
        value = self._number()
        self._take("AT")
        return InsertStatement(key=key, value=value, at=self._int())

    def _delete(self) -> DeleteStatement:
        self._take("KEY")
        key = self._int()
        self._take("AT")
        return DeleteStatement(key=key, at=self._int())

    def _load(self) -> LoadStatement:
        buffered = self._accept("BUFFERED") is not None
        events: List[Tuple[str, int, float, int]] = []
        while True:
            if self._accept("INSERT"):
                row = self._insert()
                events.append(("insert", row.key, row.value, row.at))
            elif self._accept("DELETE"):
                row = self._delete()
                events.append(("delete", row.key, 0.0, row.at))
            else:
                raise TQLSyntaxError(
                    f"expected INSERT or DELETE in LOAD, found "
                    f"{self._current.text or 'end of input'!r}"
                )
            if self._accept(",") is None:
                break
        return LoadStatement(events=tuple(events), buffered=buffered)


def parse(text: str):
    """Parse one TQL statement; returns the statement dataclass."""
    return _Parser(tokenize(text)).statement()
