"""Render TQL statement ASTs back to canonical text.

``parse(render(statement)) == statement`` for every statement the parser
can produce — the round-trip property the test suite enforces.  Canonical
form: upper-case keywords, ``COUNT(*)``, explicit half-open ranges, key
predicate before time predicate.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.tql.parser import (
    AggSpec,
    DeleteStatement,
    HistoryStatement,
    InsertStatement,
    LoadStatement,
    SelectStatement,
    SnapshotStatement,
)


def _render_agg(agg: AggSpec) -> str:
    if agg.timeline_buckets is not None:
        return f"TIMELINE({agg.name}, {agg.timeline_buckets})"
    if agg.name == "COUNT":
        return "COUNT(*)"
    return f"{agg.name}(value)"


def _render_predicates(statement: SelectStatement) -> str:
    parts = []
    if statement.key_range is not None:
        low, high = statement.key_range
        if high == low + 1:
            parts.append(f"key = {low}")
        else:
            parts.append(f"key IN [{low}, {high})")
    if statement.interval is not None:
        start, end = statement.interval
        if end == start + 1:
            parts.append(f"time AT {start}")
        else:
            parts.append(f"time DURING [{start}, {end})")
    if not parts:
        return ""
    return " WHERE " + " AND ".join(parts)


def render(statement) -> str:
    """Canonical TQL text for a statement AST."""
    if isinstance(statement, SelectStatement):
        return (f"SELECT {_render_agg(statement.agg)}"
                f"{_render_predicates(statement)}")
    if isinstance(statement, SnapshotStatement):
        text = f"SNAPSHOT AT {statement.at}"
        if statement.key_range is not None:
            low, high = statement.key_range
            if high == low + 1:
                text += f" WHERE key = {low}"
            else:
                text += f" WHERE key IN [{low}, {high})"
        return text
    if isinstance(statement, HistoryStatement):
        return f"HISTORY OF {statement.key}"
    if isinstance(statement, InsertStatement):
        value = statement.value
        value_text = str(int(value)) if value == int(value) else repr(value)
        return (f"INSERT KEY {statement.key} VALUE {value_text} "
                f"AT {statement.at}")
    if isinstance(statement, DeleteStatement):
        return f"DELETE KEY {statement.key} AT {statement.at}"
    if isinstance(statement, LoadStatement):
        rows = []
        for op, key, value, time in statement.events:
            if op == "insert":
                rows.append(render(InsertStatement(key=key, value=value,
                                                   at=time)))
            else:
                rows.append(render(DeleteStatement(key=key, at=time)))
        keyword = "LOAD BUFFERED" if statement.buffered else "LOAD"
        return f"{keyword} " + ", ".join(rows)
    raise QueryError(f"cannot render {type(statement).__name__}")
