"""Interactive TQL shell over a demo (or durable) warehouse.

Usage::

    python -m repro.tql                     # demo warehouse, generated data
    python -m repro.tql --scale 0.005       # bigger demo
    python -m repro.tql --dir ./mywh        # open/create a durable warehouse

Reads one statement per line; ``EXPLAIN <select>`` shows the plan,
``\\describe`` prints index statistics, ``\\help`` lists commands, and
``\\q`` (or end-of-input) exits.  Statements are plain TQL (see
:mod:`repro.tql`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.analyze import describe, render_report
from repro.core.warehouse import TemporalWarehouse
from repro.errors import ReproError
from repro.tql import execute
from repro.workloads.datasets import paper_config
from repro.workloads.generator import generate_dataset

HELP = """\
TQL statements:
  SELECT SUM(value) WHERE key IN [a, b) AND time DURING [t1, t2)
  SELECT COUNT(*) WHERE time AT t
  SELECT AVG(value) WHERE key = k
  SELECT MIN(value) / MAX(value) ...
  SELECT TIMELINE(SUM, n) WHERE ...
  SNAPSHOT AT t [WHERE key IN [a, b)]
  HISTORY OF k
  INSERT KEY k VALUE v AT t
  DELETE KEY k AT t
  EXPLAIN <select>        traced plan: span tree with per-node I/O + CPU
Shell commands:
  \\describe   index statistics      \\help   this text      \\q   quit
"""


def build_demo_warehouse(scale: float) -> TemporalWarehouse:
    """A warehouse pre-loaded with a generated paper-style dataset."""
    config = paper_config("uniform-long", scale=scale)
    dataset = generate_dataset(config)
    warehouse = TemporalWarehouse(key_space=config.key_space,
                                  page_capacity=24)
    dataset.replay_into(warehouse)
    print(f"demo warehouse: {len(dataset)} tuples over "
          f"{dataset.unique_keys} keys, time horizon {warehouse.now}")
    return warehouse


def run_line(warehouse: TemporalWarehouse, line: str) -> Optional[str]:
    """Execute one shell line; returns the text to print (None = quit)."""
    line = line.strip()
    if not line:
        return ""
    if line in ("\\q", "\\quit", "exit", "quit"):
        return None
    if line == "\\help":
        return HELP
    if line == "\\describe":
        return render_report(describe(warehouse))
    try:
        result = execute(warehouse, line)
    except ReproError as exc:
        return f"error: {exc}"
    if isinstance(result, list):
        if not result:
            return "(empty)"
        return "\n".join(f"  {item}" for item in result)
    return str(result)


def main(argv: Optional[list[str]] = None) -> int:
    """Run the shell until end-of-input or ``\\q``."""
    parser = argparse.ArgumentParser(prog="python -m repro.tql")
    parser.add_argument("--scale", type=float, default=0.001,
                        help="demo dataset scale")
    parser.add_argument("--dir", default=None,
                        help="open/create a durable warehouse here instead")
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    if args.dir:
        warehouse = TemporalWarehouse.open_durable(args.dir)
        print(f"durable warehouse at {args.dir} (now={warehouse.now})")
    else:
        warehouse = build_demo_warehouse(args.scale)
    print('type \\help for the grammar, \\q to quit')

    try:
        while True:
            try:
                line = input("tql> ")
            except EOFError:
                break
            output = run_line(warehouse, line)
            if output is None:
                break
            if output:
                print(output)
    finally:
        warehouse.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
