"""TQL — a small temporal query language over the warehouse.

The paper's introduction motivates RTA queries as the warehouse manager's
tool: "focus the aggregation to any time-interval and/or key-range".  TQL
is that interface as text, so the examples and ad-hoc exploration read
like the sentences in the paper::

    SELECT SUM(value)  WHERE key IN [1000, 2000) AND time DURING [50, 100)
    SELECT AVG(value)  WHERE key = 1042
    SELECT COUNT(*)    WHERE time AT 75
    SELECT TIMELINE(SUM, 4) WHERE key IN [1, 500) AND time DURING [1, 101)
    SNAPSHOT AT 75     WHERE key IN [1000, 2000)
    HISTORY OF 1042

Semantics are exactly the library's: half-open ranges and intervals,
``time AT t`` is the instant ``[t, t+1)``, a missing key predicate means
the whole key space and a missing time predicate means everything up to
``now``.  ``MIN``/``MAX`` route through the warehouse's retrieval plan
(open problem (ii)); everything else uses the cost-based planner.

Entry points: :func:`parse` (text -> statement AST),
:func:`execute` (text or AST + warehouse -> result),
:func:`explain` (text + warehouse -> the planner's decision), and
:func:`explain_select` (SELECT AST + warehouse -> traced
:class:`~repro.obs.explain.ExplainReport`); ``EXPLAIN SELECT ...`` routes
through the latter.
"""

from repro.tql.executor import execute, explain, explain_select
from repro.tql.parser import (
    DeleteStatement,
    ExplainStatement,
    HistoryStatement,
    InsertStatement,
    SelectStatement,
    SnapshotStatement,
    TQLSyntaxError,
    parse,
)
from repro.tql.render import render

__all__ = [
    "DeleteStatement",
    "ExplainStatement",
    "HistoryStatement",
    "InsertStatement",
    "SelectStatement",
    "SnapshotStatement",
    "TQLSyntaxError",
    "execute",
    "explain",
    "explain_select",
    "parse",
    "render",
]
