"""TQL tokenizer.

Tokens: case-insensitive keywords, integer literals, and the punctuation
``( ) [ , = *``.  The right bracket of half-open ranges is the ``)`` token
(the syntax mirrors the library's interval notation literally).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import QueryError

KEYWORDS = {
    "SELECT", "WHERE", "AND", "KEY", "TIME", "IN", "DURING", "AT",
    "SNAPSHOT", "HISTORY", "OF", "VALUE",
    "SUM", "COUNT", "AVG", "MIN", "MAX", "TIMELINE",
    "INSERT", "DELETE", "EXPLAIN", "LOAD", "BUFFERED",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<WORD>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<SYM>[()\[\],=*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexed token: ``kind`` is a keyword name, ``INT``, or a symbol."""

    kind: str
    text: str
    position: int


class TQLLexError(QueryError):
    """Unlexable input (reported with the offending position)."""

    code = "SYNTAX"


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens, dropping whitespace."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TQLLexError(
                f"cannot read TQL at position {position}: "
                f"{text[position:position + 12]!r}"
            )
        position = match.end()
        if match.lastgroup == "WS":
            continue
        raw = match.group()
        if match.lastgroup == "NUMBER":
            tokens.append(Token("NUMBER", raw, match.start()))
        elif match.lastgroup == "WORD":
            upper = raw.upper()
            if upper not in KEYWORDS:
                raise TQLLexError(
                    f"unknown word {raw!r} at position {match.start()}"
                )
            tokens.append(Token(upper, raw, match.start()))
        else:
            tokens.append(Token(raw, raw, match.start()))
    tokens.append(Token("EOF", "", len(text)))
    return tokens


def token_stream(text: str) -> Iterator[Token]:
    """Convenience iterator over :func:`tokenize`."""
    return iter(tokenize(text))
