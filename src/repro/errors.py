"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are deliberately fine-grained: storage-level
failures, structural index corruption, and user-input problems are distinct
conditions with distinct remedies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class StorageError(ReproError):
    """Base class for storage-engine failures."""


class PageNotFoundError(StorageError):
    """A page id was requested that the disk manager does not hold."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class PageOverflowError(StorageError):
    """A page's serialized payload exceeded the configured page size."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. unpinning an unpinned page)."""


class IndexError_(ReproError):
    """Base class for index-structure errors (named to avoid shadowing
    the builtin :class:`IndexError`)."""


class InvariantViolation(IndexError_):
    """A structural invariant check failed; indicates a bug, not bad input."""


class TimeOrderError(IndexError_):
    """An update arrived with a timestamp lower than an earlier update.

    The paper assumes the transaction-time model (section 2.3): updates are
    applied in non-decreasing time order.  Violations are rejected eagerly.
    """


class DuplicateKeyError(IndexError_):
    """An insertion would violate first temporal normal form (1TNF): two
    alive records with the same key at the same instant."""


class KeyNotFoundError(IndexError_):
    """A logical deletion referenced a key with no alive record."""


class QueryError(ReproError):
    """A query was malformed (empty range, reversed interval, ...)."""
