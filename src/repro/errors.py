"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class.  Errors are deliberately fine-grained: storage-level
failures, structural index corruption, and user-input problems are distinct
conditions with distinct remedies.

Every class carries a stable machine-readable ``code`` so process
boundaries (the ``repro.serve`` wire protocol, logs, clients in other
languages) can dispatch on the condition without parsing prose;
:func:`error_payload` is the one sanctioned way to serialize an exception
into the ``{"code", "message"}`` object the protocol ships.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class for every error raised by this library."""

    #: Stable machine-readable identifier, refined by every subclass.
    code = "REPRO_ERROR"


class StorageError(ReproError):
    """Base class for storage-engine failures."""

    code = "STORAGE"


class PageNotFoundError(StorageError):
    """A page id was requested that the disk manager does not hold."""

    code = "PAGE_NOT_FOUND"

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class PageOverflowError(StorageError):
    """A page's serialized payload exceeded the configured page size."""

    code = "PAGE_OVERFLOW"


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. unpinning an unpinned page)."""

    code = "BUFFER_POOL"


class ConcurrentAccessError(BufferPoolError):
    """Two threads entered an unlocked buffer pool at once.

    Raised only in assertion mode (see
    :meth:`~repro.storage.buffer.BufferPool.enable_concurrency_assertions`);
    production servers enable locking instead, which makes this impossible.
    """

    code = "CONCURRENT_ACCESS"


class WALTruncatedError(StorageError):
    """A WAL tail cursor fell behind a checkpoint truncation.

    Raised by :class:`~repro.storage.wal.WALCursor` when the log no longer
    holds the records after the cursor's position (the primary checkpointed
    and truncated past it).  The reader must *rebase*: reload the primary's
    current checkpoint and resume tailing from the sequence it covers.
    """

    code = "WAL_TRUNCATED"


class IndexError_(ReproError):
    """Base class for index-structure errors (named to avoid shadowing
    the builtin :class:`IndexError`)."""

    code = "INDEX"


class InvariantViolation(IndexError_):
    """A structural invariant check failed; indicates a bug, not bad input."""

    code = "INVARIANT"


class TimeOrderError(IndexError_):
    """An update arrived with a timestamp lower than an earlier update.

    The paper assumes the transaction-time model (section 2.3): updates are
    applied in non-decreasing time order.  Violations are rejected eagerly.
    """

    code = "TIME_ORDER"


class DuplicateKeyError(IndexError_):
    """An insertion would violate first temporal normal form (1TNF): two
    alive records with the same key at the same instant."""

    code = "DUPLICATE_KEY"


class KeyNotFoundError(IndexError_):
    """A logical deletion referenced a key with no alive record."""

    code = "KEY_NOT_FOUND"


class QueryError(ReproError):
    """A query was malformed (empty range, reversed interval, ...)."""

    code = "QUERY"


class ShardRoutingError(QueryError):
    """A key or key range fell outside every shard's partition."""

    code = "SHARD_ROUTING"


class ServerError(ReproError):
    """Base class for query-server failures (see :mod:`repro.serve`)."""

    code = "SERVER"


class ServerBusyError(ServerError):
    """Admission control rejected the request: in-flight and queued work
    are both at their configured limits.  Clients should back off and
    retry."""

    code = "SERVER_BUSY"


class RequestTimeoutError(ServerError):
    """The per-request timeout elapsed before the query finished."""

    code = "TIMEOUT"


class ServerShuttingDownError(ServerError):
    """The server is draining for shutdown and accepts no new work."""

    code = "SHUTTING_DOWN"


class ProtocolError(ServerError):
    """A request line was not valid protocol JSON or named an unknown op."""

    code = "PROTOCOL"


class ShardDownError(ServerError):
    """A statement was routed to a shard whose worker process is dead.

    Raised by the process-per-shard backend (:mod:`repro.serve.procpool`)
    when the owning worker has exited — crashed, killed, or unreachable.
    Durable deployments recover the shard via WAL replay on respawn; the
    error is retriable once the shard is back.
    """

    code = "SHARD_DOWN"


class ShardRedirectError(ServerError):
    """A statement was routed with a shard map the cluster has since
    replaced (split, merge, or promotion swapped the topology).

    Always retriable: re-resolving against the current topology routes
    the statement correctly, and :class:`repro.serve.client.Client`
    does so transparently.
    """

    code = "SHARD_REDIRECT"


class ReplicaLagError(ServerError):
    """A read-your-writes read reached a replica that could not catch up
    to the required WAL sequence in time.

    The cluster router treats this as a soft failure and falls back to
    the next read target (ultimately the primary); it only surfaces to
    clients when no target can satisfy the read.
    """

    code = "REPLICA_LAG"


def error_payload(exc: BaseException) -> Dict[str, str]:
    """The wire form of an exception: ``{"code": ..., "message": ...}``.

    Library errors report their class's stable ``code``; anything else is
    collapsed to ``INTERNAL`` so foreign tracebacks never leak structure
    the protocol does not promise.
    """
    if isinstance(exc, ReproError):
        return {"code": exc.code, "message": str(exc)}
    return {"code": "INTERNAL",
            "message": f"{type(exc).__name__}: {exc}"}


def _code_registry() -> Dict[str, type]:
    """``code -> class`` over the whole :class:`ReproError` hierarchy."""
    registry: Dict[str, type] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        registry.setdefault(cls.code, cls)
        stack.extend(cls.__subclasses__())
    return registry


def error_from_payload(payload: Dict[str, str]) -> ReproError:
    """Rebuild a typed exception from an :func:`error_payload` dict.

    The inverse used at process boundaries (the :mod:`repro.serve.procpool`
    worker pipe): the reconstructed exception is of the class whose stable
    ``code`` matches, so re-serializing it yields the original payload and
    callers can keep dispatching on types.  Unknown codes collapse to
    :class:`ReproError`.  Construction bypasses subclass ``__init__``
    signatures (some take structured arguments) — only the message is
    carried across.
    """
    code = payload.get("code", "")
    cls = _code_registry().get(code)
    exc = (cls or ReproError).__new__(cls or ReproError)
    Exception.__init__(exc, payload.get("message", "unknown error"))
    if cls is None and code:
        exc.code = code  # instance shadow: unknown codes round-trip intact
    return exc
