"""Plain-text result tables in the shape of the paper's plotted series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Table:
    """A titled table: fixed column names, appendable rows.

    Rows are kept as dicts so benchmark assertions can read values by
    column name; :meth:`render` produces the aligned text block written to
    ``benchmarks/results/`` and embedded in EXPERIMENTS.md.
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **values: Any) -> None:
        """Append one row; every declared column must be present."""
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row[name] for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a footnote rendered below the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The aligned plain-text table (header, rule, rows, notes)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                if value == 0:
                    return "0"
                if abs(value) >= 1000 or abs(value) < 0.01:
                    return f"{value:.3g}"
                return f"{value:.3f}".rstrip("0").rstrip(".")
            return str(value)

        header = [str(c) for c in self.columns]
        body = [[fmt(row[c]) for c in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
