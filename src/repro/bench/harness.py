"""Competitor construction and measured replays (paper section 5 methodology).

Each competitor gets its own in-memory disk and LRU buffer pool so I/O
budgets never mix.  Page capacities are derived from the paper's 4-byte
record layouts and a configurable page size: the paper's 4 KB pages give
``b = 203`` for MVSBT records (20 bytes) and ``b = 254`` for MVBT leaf
records (16 bytes); scaled-down runs shrink the page instead of distorting
the record widths, preserving the fan-out ratios between competitors.

Costs are reported as :class:`MeasuredCost`: physical/logical I/Os plus CPU
seconds, and the paper's estimated time (``I/Os x 10 ms + CPU``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, List, Optional, Sequence

from repro.baselines.mvbt_rta import MVBTRTABaseline
from repro.baselines.naive_scan import HeapFileScanBaseline
from repro.core.aggregates import Aggregate, SUM
from repro.obs import collect as _collect
from repro.core.ingest import DEFAULT_BATCH_SIZE, BatchLoader
from repro.core.model import Rectangle
from repro.core.rta import RTAIndex
from repro.mvbt.config import MVBTConfig
from repro.mvbt.entries import PAPER_LEAF_ENTRY_BYTES
from repro.mvsbt.records import PAPER_LEAF_RECORD_BYTES
from repro.mvsbt.tree import MVSBTConfig
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.serialization import records_per_page
from repro.storage.stats import CostModel, CpuTimer, IOStats
from repro.workloads.generator import UpdateEvent, WorkloadDataset


@dataclass(frozen=True)
class BenchSettings:
    """Shared experiment parameters (paper defaults, scaled page size).

    ``page_bytes`` is the single scale knob for structure granularity: the
    paper's 4096 gives paper fan-outs; the default 512 keeps every ratio
    while letting CPython finish the full suite in minutes.
    """

    page_bytes: int = 512
    buffer_pages: int = 64
    io_latency_s: float = 0.010
    strong_factor: float = 0.9

    # cached_property works on frozen dataclasses (it writes the instance
    # __dict__ directly, bypassing the frozen __setattr__), so each derived
    # value is computed once per settings object instead of per access.

    @cached_property
    def mvsbt_capacity(self) -> int:
        """Records per MVSBT page at this page size (the paper's ``b``)."""
        return records_per_page(PAPER_LEAF_RECORD_BYTES, self.page_bytes)

    @cached_property
    def mvbt_capacity(self) -> int:
        """Entries per MVBT page at this page size."""
        return records_per_page(PAPER_LEAF_ENTRY_BYTES, self.page_bytes)

    @cached_property
    def cost_model(self) -> CostModel:
        """The paper's estimated-time model, built once per settings."""
        return CostModel(io_latency_s=self.io_latency_s)


@dataclass(frozen=True)
class MeasuredCost:
    """One measured phase: I/O counters, CPU seconds, estimated time."""

    stats: IOStats
    cpu_s: float
    estimated_s: float
    operations: int

    @property
    def ios(self) -> int:
        return self.stats.total_ios

    @property
    def per_operation_ios(self) -> float:
        return self.ios / self.operations if self.operations else 0.0

    @property
    def per_operation_s(self) -> float:
        return self.estimated_s / self.operations if self.operations else 0.0


def fresh_pool(settings: BenchSettings,
               buffer_pages: Optional[int] = None) -> BufferPool:
    """A private pool over a fresh in-memory disk (one per competitor)."""
    return BufferPool(InMemoryDiskManager(),
                      capacity=buffer_pages or settings.buffer_pages)


def build_rta_index(settings: BenchSettings, dataset: WorkloadDataset,
                    aggregates: tuple[Aggregate, ...] = (SUM,),
                    buffer_pages: Optional[int] = None,
                    **config_overrides) -> RTAIndex:
    """The paper's approach: a (LKST, LKLT) MVSBT pair per aggregate.

    The paper's space/query comparison uses the *two*-MVSBT form (SUM only);
    pass ``aggregates=(SUM, COUNT)`` for the four-tree AVG-capable variant.
    """
    config = MVSBTConfig(
        capacity=settings.mvsbt_capacity,
        strong_factor=config_overrides.pop("strong_factor",
                                           settings.strong_factor),
        **config_overrides,
    )
    return RTAIndex(fresh_pool(settings, buffer_pages), config,
                    key_space=dataset.config.key_space,
                    aggregates=aggregates)


def build_mvbt_baseline(settings: BenchSettings, dataset: WorkloadDataset,
                        buffer_pages: Optional[int] = None) -> MVBTRTABaseline:
    """The naive competitor: retrieve from one MVBT, aggregate on the fly."""
    config = MVBTConfig(capacity=settings.mvbt_capacity)
    return MVBTRTABaseline(fresh_pool(settings, buffer_pages), config,
                           key_space=dataset.config.key_space)


def build_heap_baseline(settings: BenchSettings, dataset: WorkloadDataset,
                        buffer_pages: Optional[int] = None) -> HeapFileScanBaseline:
    """[Tum92] full-scan baseline over a heap file."""
    return HeapFileScanBaseline(fresh_pool(settings, buffer_pages),
                                capacity=settings.mvbt_capacity,
                                key_space=dataset.config.key_space)


def measure_updates(index, events: Iterable[UpdateEvent],
                    settings: BenchSettings) -> MeasuredCost:
    """Replay an update stream, measuring I/Os and CPU for the whole batch."""
    pool: BufferPool = index.pool
    before = pool.stats.snapshot()
    count = 0
    with CpuTimer() as timer:
        for event in events:
            if event.op == "insert":
                index.insert(event.key, event.value, event.time)
            else:
                index.delete(event.key, event.time)
            count += 1
    pool.flush_all()
    stats = pool.stats.delta(before)
    cost = MeasuredCost(
        stats=stats, cpu_s=timer.elapsed,
        estimated_s=settings.cost_model.estimate(stats, timer.elapsed),
        operations=count,
    )
    _record_phase("bench.updates", index, cost)
    return cost


def measure_batched_updates(index, events: Sequence[UpdateEvent],
                            settings: BenchSettings,
                            batch_size: int = DEFAULT_BATCH_SIZE) -> MeasuredCost:
    """Replay an update stream through the :class:`BatchLoader`.

    Produces bit-identical index contents to :func:`measure_updates` (the
    metamorphic guarantee); only CPU cost and write scheduling differ.
    """
    pool: BufferPool = index.pool
    before = pool.stats.snapshot()
    loader = BatchLoader(index, batch_size=batch_size)
    with CpuTimer() as timer:
        report = loader.load(events)
    pool.flush_all()
    stats = pool.stats.delta(before)
    cost = MeasuredCost(
        stats=stats, cpu_s=timer.elapsed,
        estimated_s=settings.cost_model.estimate(stats, timer.elapsed),
        operations=report.events,
    )
    _record_phase("bench.batched_updates", index, cost,
                  batch_size=batch_size)
    return cost


def measure_buffered_updates(index, events: Sequence[UpdateEvent],
                             settings: BenchSettings,
                             batch_size: int = DEFAULT_BATCH_SIZE) -> MeasuredCost:
    """Replay an update stream through the buffer-tree ingest path.

    ``BatchLoader(mode="buffered")`` opens a buffered window on every
    MVSBT behind the index; updates are absorbed into bounded in-page
    buffers and flushed downward in sorted batches.  The timed window
    includes the closing drain/finalize, so the cost is end-to-end.
    Query answers are byte-identical to the direct path (the metamorphic
    guarantee); logical I/O is *lower* — routing through resident sealed
    pages skips per-event root-to-leaf pool traffic, which is the
    amortization being measured, so callers must not expect the
    logical-read equality that holds for :func:`measure_batched_updates`.
    """
    pool: BufferPool = index.pool
    before = pool.stats.snapshot()
    loader = BatchLoader(index, batch_size=batch_size, mode="buffered")
    with CpuTimer() as timer:
        report = loader.load(events)
    pool.flush_all()
    stats = pool.stats.delta(before)
    cost = MeasuredCost(
        stats=stats, cpu_s=timer.elapsed,
        estimated_s=settings.cost_model.estimate(stats, timer.elapsed),
        operations=report.events,
    )
    _record_phase("bench.buffered_updates", index, cost,
                  batch_size=batch_size)
    return cost


def measure_queries(index, rectangles: Sequence[Rectangle],
                    settings: BenchSettings,
                    aggregate: Aggregate = SUM,
                    cold_buffer: bool = True) -> MeasuredCost:
    """Run a query batch (paper: 100 rectangles of one size and shape).

    ``cold_buffer`` clears the LRU buffer first so the batch starts cold and
    warms up across queries, exactly the situation Figure 4c sweeps.
    """
    pool: BufferPool = index.pool
    if cold_buffer:
        pool.clear()
    before = pool.stats.snapshot()
    with CpuTimer() as timer:
        for rect in rectangles:
            index.query(rect.range, rect.interval, aggregate)
    stats = pool.stats.delta(before)
    cost = MeasuredCost(
        stats=stats, cpu_s=timer.elapsed,
        estimated_s=settings.cost_model.estimate(stats, timer.elapsed),
        operations=len(rectangles),
    )
    _record_phase("bench.queries", index, cost, aggregate=aggregate.name,
                  cold_buffer=cold_buffer)
    return cost


def _record_phase(name: str, index, cost: MeasuredCost, **attrs) -> None:
    """Feed one measured phase to the active trace collector, if any.

    With no collector installed (``python -m repro.bench`` without
    ``--trace``) this is one global load and a branch — measured numbers
    are untouched either way, since recording happens after measurement.
    """
    collector = _collect.active()
    if collector is None:
        return
    collector.record(name, cost.stats, cost.cpu_s, cost.operations,
                     competitor=type(index).__name__,
                     estimated_s=cost.estimated_s, **attrs)


def space_pages(index) -> int:
    """Live pages on the competitor's disk — the Figure 4a space metric."""
    return index.pool.disk.live_page_count
