"""Experiment registry and (optionally parallel) execution for the bench CLI.

``python -m repro.bench`` used to run every experiment inline in one
process; the registry and the per-experiment execution now live here so a
worker process can import and run them too.  :func:`run_one` is a plain
top-level function of picklable arguments — exactly what
:class:`concurrent.futures.ProcessPoolExecutor` needs — and builds its
:class:`~repro.bench.harness.BenchSettings` *inside* the worker, so nothing
stateful crosses the process boundary in either direction.

Determinism: every experiment seeds its dataset generators from constants,
so results are reproducible regardless of worker count or scheduling order.
When the caller supplies a base ``seed``, each experiment derives its own
task seed as ``base + crc32(experiment id)`` — a pure function of the
experiment's identity, not of which worker ran it or when.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence
from zlib import crc32

from repro.bench import experiments
from repro.bench.ascii_chart import bar_chart
from repro.bench.harness import BenchSettings
from repro.obs.collect import collecting

#: experiment id -> (function name in :mod:`repro.bench.experiments`,
#: chart spec ``(label column, value columns)`` or None)
EXPERIMENTS = {
    "fig4a": ("fig4a_space", ("updates", ("mvbt_pages", "two_mvsbt_pages"))),
    "fig4b": ("fig4b_speedup", ("qrs", ("mvsbt_est_s", "mvbt_est_s"))),
    "fig4c": ("fig4c_buffer", ("buffer_pages",
                               ("mvsbt_est_s", "mvbt_est_s"))),
    "update-cost": ("update_cost", None),
    "families": ("dataset_families", None),
    "strong-factor": ("ablation_strong_factor", ("f", ("pages",))),
    "logical-split": ("ablation_logical_split", None),
    "merging": ("ablation_merging", None),
    "disposal": ("ablation_disposal", None),
    "theorem2": ("theorem2_bounds", None),
    "scalar-context": ("scalar_context", None),
    "minmax": ("minmax_open_problem",
               ("qrs", ("index_est_s", "mvbt_est_s"))),
    "operational": ("operational_mix",
                    ("queries_per_1000_updates",
                     ("two_mvsbt_s", "mvbt_s"))),
    "rootstar": ("rootstar_overhead", None),
}

#: experiments whose signature has no ``scale`` parameter.
_NO_SCALE = {"theorem2", "scalar-context"}


@dataclass(frozen=True)
class RunResult:
    """One finished experiment: rendered output plus wall-clock seconds."""

    #: Experiment id (a key of :data:`EXPERIMENTS`).
    exp_id: str
    #: Name of the experiment function (used for the output file name).
    func_name: str
    #: Rendered table, plus the bar chart when the registry defines one.
    output: str
    #: Wall-clock seconds spent inside the experiment function.
    elapsed_s: float
    #: Trace records (plain dicts, schema of :mod:`repro.obs.tracefile`)
    #: captured while the experiment ran; empty unless tracing was on.
    trace_records: tuple = ()
    #: Metrics registry snapshot (the ``to_json`` dict) for the traced run;
    #: ``None`` unless tracing was on.
    metrics: Optional[dict] = None


def task_seed(base: Optional[int], exp_id: str) -> Optional[int]:
    """Per-experiment seed derived from a base seed and the experiment id.

    ``None`` base (the default CLI behavior) keeps every experiment on its
    built-in constants.  Otherwise the derivation is a pure function of the
    experiment id, so a parallel run hands out the same seeds as a
    sequential one no matter how tasks are scheduled.
    """
    if base is None:
        return None
    return (base + crc32(exp_id.encode("ascii"))) % (2**31)


def run_one(exp_id: str, page_bytes: int, buffer_pages: int,
            scale: float, seed: Optional[int] = None,
            trace: bool = False) -> RunResult:
    """Run a single experiment and return its rendered output.

    Picklable in and out: settings are rebuilt from scalars inside the
    (possibly worker) process, and only strings/floats come back.  With
    ``trace=True`` a :class:`~repro.obs.collect.BenchCollector` is active
    while the experiment runs, and its records plus metrics snapshot ride
    back on the result (still plain dicts, so workers stay picklable).
    """
    func_name, chart_spec = EXPERIMENTS[exp_id]
    func = getattr(experiments, func_name)
    settings = BenchSettings(page_bytes=page_bytes,
                             buffer_pages=buffer_pages)
    kwargs = {}
    if exp_id not in _NO_SCALE:
        kwargs["scale"] = scale
    derived = task_seed(seed, exp_id)
    if derived is not None:
        kwargs["seed"] = derived
    started = time.perf_counter()
    if trace:
        with collecting(exp_id) as collector:
            table = func(settings, **kwargs)
        trace_records = tuple(collector.records)
        metrics = collector.registry.to_json()
    else:
        table = func(settings, **kwargs)
        trace_records = ()
        metrics = None
    elapsed = time.perf_counter() - started

    output = table.render()
    if chart_spec is not None:
        label_col, value_cols = chart_spec
        output += "\n" + bar_chart(table, label_col, value_cols)
    return RunResult(exp_id=exp_id, func_name=func_name,
                     output=output, elapsed_s=elapsed,
                     trace_records=trace_records, metrics=metrics)


def run_many(selected: Sequence[str], page_bytes: int, buffer_pages: int,
             scale: float, seed: Optional[int] = None,
             workers: int = 1, trace: bool = False) -> list[RunResult]:
    """Run the selected experiments, in order, optionally across processes.

    ``workers=1`` (the default) runs inline — byte-identical to the
    pre-parallel CLI.  With more workers the experiments are farmed out to
    a :class:`ProcessPoolExecutor`; results still come back in selection
    order, so reports are stable regardless of completion order.  Tracing
    works in both modes: the collector lives inside whichever process runs
    the experiment, and the records come back on the (picklable) results.
    """
    unknown = [exp_id for exp_id in selected if exp_id not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")
    if workers <= 1:
        return [run_one(exp_id, page_bytes, buffer_pages, scale, seed,
                        trace=trace)
                for exp_id in selected]
    with ProcessPoolExecutor(max_workers=min(workers, len(selected))) as pool:
        futures = [pool.submit(run_one, exp_id, page_bytes, buffer_pages,
                               scale, seed, trace)
                   for exp_id in selected]
        return [future.result() for future in futures]
