"""Terminal-friendly charts for experiment tables.

The paper's figures are log-scale line plots; in a text-only environment a
labelled horizontal bar chart per series conveys the same shape.  Bars are
scaled logarithmically when the series spans more than two decades (as the
Figure 4b speedups do), linearly otherwise.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.reporting import Table

BAR_WIDTH = 46


def _scaled(values: Sequence[float], width: int) -> list[int]:
    positives = [v for v in values if v > 0]
    if not positives:
        return [0 for _ in values]
    lo, hi = min(positives), max(values)
    if hi <= 0:
        return [0 for _ in values]
    log_scale = hi / max(lo, 1e-12) > 100
    lengths = []
    for value in values:
        if value <= 0:
            lengths.append(0)
        elif log_scale:
            span = math.log10(hi) - math.log10(max(lo, 1e-12)) or 1.0
            frac = (math.log10(value) - math.log10(max(lo, 1e-12))) / span
            lengths.append(max(1, round(frac * (width - 1)) + 1))
        else:
            lengths.append(max(1, round(value / hi * width)))
    return lengths


def bar_chart(table: Table, label_column: str, value_columns: Sequence[str],
              width: int = BAR_WIDTH) -> str:
    """Render one bar per (row, value column), grouped by row label."""
    values = [
        float(row[col]) for row in table.rows for col in value_columns
    ]
    lengths = _scaled(values, width)
    label_width = max(
        (len(f"{row[label_column]} {col}") for row in table.rows
         for col in value_columns), default=0,
    )
    lines = [table.title, "-" * len(table.title)]
    idx = 0
    for row in table.rows:
        for col in value_columns:
            label = f"{row[label_column]} {col}"
            value = values[idx]
            bar = "#" * lengths[idx]
            lines.append(f"{label:<{label_width}} |{bar:<{width}}| "
                         f"{value:.4g}")
            idx += 1
        if len(value_columns) > 1:
            lines.append("")
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"
