"""Regenerate every paper figure and ablation from the command line.

Usage::

    python -m repro.bench                       # default small scale
    python -m repro.bench --scale 0.01          # bigger dataset
    python -m repro.bench --page-bytes 4096     # the paper's page size
    python -m repro.bench --only fig4a fig4b    # a subset
    python -m repro.bench --out results/        # where tables are written
    python -m repro.bench --workers 4           # experiments in parallel
    python -m repro.bench --seed 7              # re-seed the datasets
    python -m repro.bench --trace out.jsonl     # per-phase trace records

Each experiment prints its table (plus a bar chart for the figure sweeps)
and writes both into the output directory.  With ``--workers N`` the
experiments run across N worker processes; results are printed in selection
order either way, and ``--workers 1`` (the default) stays byte-identical to
the sequential CLI.  ``--seed`` derives a deterministic per-experiment seed
(see :func:`repro.bench.runner.task_seed`), independent of scheduling.

``--trace FILE`` additionally captures one JSONL record per measured phase
(update replay, batched load, query batch — see
:mod:`repro.obs.tracefile` for the schema), writes them all to FILE, and
appends each experiment's metrics-registry snapshot to its report file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.runner import EXPERIMENTS, run_many
from repro.obs.tracefile import write_trace


def parse_args(argv: list[str]) -> argparse.Namespace:
    """Parse CLI options (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument("--scale", type=float, default=0.003,
                        help="fraction of the paper's 1M-record dataset")
    parser.add_argument("--page-bytes", type=int, default=512,
                        help="page size (paper: 4096)")
    parser.add_argument("--buffer-pages", type=int, default=64,
                        help="LRU buffer frames (paper default: 64)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks") / "results",
                        help="directory for rendered tables")
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="run a subset of experiments")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = run inline)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base dataset seed; each experiment derives "
                             "its own (default: built-in paper seeds)")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write one JSONL trace record per measured "
                             "phase to FILE and embed metrics snapshots "
                             "in the reports")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments; returns a process exit code."""
    args = parse_args(argv if argv is not None else sys.argv[1:])
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    selected = args.only or list(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)

    results = run_many(selected, page_bytes=args.page_bytes,
                       buffer_pages=args.buffer_pages, scale=args.scale,
                       seed=args.seed, workers=args.workers,
                       trace=args.trace is not None)
    for result in results:
        output = result.output
        if result.metrics is not None:
            output += ("\nmetrics:\n"
                       + json.dumps(result.metrics, indent=2, sort_keys=True)
                       + "\n")
        (args.out / f"{result.func_name}.txt").write_text(output)
        print(output)
        print(f"[{result.exp_id} done in {result.elapsed_s:.1f}s]\n")
    if args.trace is not None:
        records = [record for result in results
                   for record in result.trace_records]
        count = write_trace(records, args.trace)
        print(f"[{count} trace records -> {args.trace}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
