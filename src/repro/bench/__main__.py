"""Regenerate every paper figure and ablation from the command line.

Usage::

    python -m repro.bench                       # default small scale
    python -m repro.bench --scale 0.01          # bigger dataset
    python -m repro.bench --page-bytes 4096     # the paper's page size
    python -m repro.bench --only fig4a fig4b    # a subset
    python -m repro.bench --out results/        # where tables are written

Each experiment prints its table (plus a bar chart for the figure sweeps)
and writes both into the output directory.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench import experiments
from repro.bench.ascii_chart import bar_chart
from repro.bench.harness import BenchSettings

#: experiment id -> (function name, chart spec or None)
EXPERIMENTS = {
    "fig4a": ("fig4a_space", ("updates", ("mvbt_pages", "two_mvsbt_pages"))),
    "fig4b": ("fig4b_speedup", ("qrs", ("mvsbt_est_s", "mvbt_est_s"))),
    "fig4c": ("fig4c_buffer", ("buffer_pages",
                               ("mvsbt_est_s", "mvbt_est_s"))),
    "update-cost": ("update_cost", None),
    "families": ("dataset_families", None),
    "strong-factor": ("ablation_strong_factor", ("f", ("pages",))),
    "logical-split": ("ablation_logical_split", None),
    "merging": ("ablation_merging", None),
    "disposal": ("ablation_disposal", None),
    "theorem2": ("theorem2_bounds", None),
    "scalar-context": ("scalar_context", None),
    "minmax": ("minmax_open_problem",
               ("qrs", ("index_est_s", "mvbt_est_s"))),
    "operational": ("operational_mix",
                    ("queries_per_1000_updates",
                     ("two_mvsbt_s", "mvbt_s"))),
    "rootstar": ("rootstar_overhead", None),
}

#: experiments whose signature has no ``scale`` parameter.
_NO_SCALE = {"theorem2", "scalar-context"}


def parse_args(argv: list[str]) -> argparse.Namespace:
    """Parse CLI options (see module docstring for usage)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's evaluation figures.",
    )
    parser.add_argument("--scale", type=float, default=0.003,
                        help="fraction of the paper's 1M-record dataset")
    parser.add_argument("--page-bytes", type=int, default=512,
                        help="page size (paper: 4096)")
    parser.add_argument("--buffer-pages", type=int, default=64,
                        help="LRU buffer frames (paper default: 64)")
    parser.add_argument("--out", type=Path,
                        default=Path("benchmarks") / "results",
                        help="directory for rendered tables")
    parser.add_argument("--only", nargs="*", choices=sorted(EXPERIMENTS),
                        help="run a subset of experiments")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    """Run the selected experiments; returns a process exit code."""
    args = parse_args(argv if argv is not None else sys.argv[1:])
    settings = BenchSettings(page_bytes=args.page_bytes,
                             buffer_pages=args.buffer_pages)
    selected = args.only or list(EXPERIMENTS)
    args.out.mkdir(parents=True, exist_ok=True)

    for exp_id in selected:
        func_name, chart_spec = EXPERIMENTS[exp_id]
        func = getattr(experiments, func_name)
        started = time.perf_counter()
        if exp_id in _NO_SCALE:
            table = func(settings)
        else:
            table = func(settings, scale=args.scale)
        elapsed = time.perf_counter() - started

        output = table.render()
        if chart_spec is not None:
            label_col, value_cols = chart_spec
            output += "\n" + bar_chart(table, label_col, value_cols)
        (args.out / f"{func_name}.txt").write_text(output)
        print(output)
        print(f"[{exp_id} done in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
