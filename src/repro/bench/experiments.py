"""One function per paper figure plus the ablations (DESIGN.md E1-E5, A1-A6).

Every function is pure — settings and scale in, :class:`Table` out — so the
``benchmarks/`` suites can assert result *shapes* and the harness can write
the rendered tables for EXPERIMENTS.md.  Absolute numbers differ from the
paper (Python, scaled page size and record counts); the reproduced claims
are the relative ones: who wins, how trends move, roughly by what factor.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from repro.baselines.aggregation_tree import AggregationTree
from repro.baselines.balanced_tree import BalancedTemporalAggregate
from repro.bench.harness import (
    BenchSettings,
    build_heap_baseline,
    build_mvbt_baseline,
    build_rta_index,
    fresh_pool,
    measure_queries,
    measure_updates,
    space_pages,
)
from repro.core.rta import RTAIndex
from repro.mvsbt.tree import MVSBTConfig
from repro.bench.reporting import Table
from repro.core.aggregates import MIN, SUM
from repro.core.model import NOW
from repro.sbtree.tree import SBTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InMemoryDiskManager
from repro.storage.stats import CpuTimer
from repro.workloads.datasets import PAPER_FAMILIES, paper_config
from repro.workloads.generator import (
    DatasetConfig,
    UpdateEvent,
    generate_dataset,
)
from repro.workloads.queries import (
    QueryRectangleConfig,
    generate_query_rectangles,
)

DEFAULT_SCALE = 0.005
DEFAULT_QUERY_COUNT = 100


def _dataset(family: str, scale: float, seed: Optional[int] = None):
    if seed is None:
        return generate_dataset(paper_config(family, scale=scale))
    return generate_dataset(paper_config(family, scale=scale, seed=seed))


def _rectangles(dataset, qrs: float, shape: float = 1.0,
                count: int = DEFAULT_QUERY_COUNT, seed: int = 4001):
    return generate_query_rectangles(QueryRectangleConfig(
        qrs=qrs, shape=shape, count=count,
        key_space=dataset.config.key_space,
        time_space=dataset.config.time_space, seed=seed,
    ))


# ---------------------------------------------------------------------------
# E1 — Figure 4a: space versus number of updates
# ---------------------------------------------------------------------------

def fig4a_space(settings: Optional[BenchSettings] = None,
                scale: float = DEFAULT_SCALE, points: int = 5,
                family: str = "uniform-long",
                seed: Optional[int] = None) -> Table:
    """Space of the MVBT versus the two-MVSBT approach as the warehouse grows.

    Paper result: the two-MVSBT approach costs a small constant factor more
    (about 2.5x there) — the ``O(log_b K)`` space overhead of Theorem 2.
    """
    settings = settings or BenchSettings()
    dataset = _dataset(family, scale, seed)
    table = Table(
        title=f"Figure 4a — space (pages), {family}, scale={scale}",
        columns=("updates", "mvbt_pages", "two_mvsbt_pages", "ratio"),
    )
    rta = build_rta_index(settings, dataset)
    mvbt = build_mvbt_baseline(settings, dataset)
    checkpoints = [
        len(dataset.events) * (i + 1) // points for i in range(points)
    ]
    done = 0
    for checkpoint in checkpoints:
        batch = dataset.events[done:checkpoint]
        measure_updates(rta, batch, settings)
        measure_updates(mvbt, batch, settings)
        done = checkpoint
        mvbt_pages = space_pages(mvbt)
        rta_pages = space_pages(rta)
        table.add(updates=done, mvbt_pages=mvbt_pages,
                  two_mvsbt_pages=rta_pages,
                  ratio=rta_pages / mvbt_pages)
    table.note("paper reports ~2.5x for the two-MVSBT approach")
    return table


# ---------------------------------------------------------------------------
# E2 — Figure 4b: query speedup versus query-rectangle size
# ---------------------------------------------------------------------------

def fig4b_speedup(settings: Optional[BenchSettings] = None,
                  scale: float = DEFAULT_SCALE,
                  qrs_points: Sequence[float] = (0.0001, 0.001, 0.01,
                                                 0.1, 0.5, 1.0),
                  shape: float = 1.0, count: int = DEFAULT_QUERY_COUNT,
                  family: str = "uniform-long",
                  seed: Optional[int] = None) -> Table:
    """Estimated query time of both approaches across QRS values.

    Paper result: the two-MVSBT cost is independent of QRS while the MVBT
    plan degrades with it — thousands of times slower at QRS=100%.
    """
    settings = settings or BenchSettings()
    dataset = _dataset(family, scale, seed)
    rta = build_rta_index(settings, dataset)
    mvbt = build_mvbt_baseline(settings, dataset)
    measure_updates(rta, dataset.events, settings)
    measure_updates(mvbt, dataset.events, settings)
    table = Table(
        title=(f"Figure 4b — RTA query cost vs QRS, {family}, "
               f"scale={scale}, shape R/I={shape}, {count} queries/point"),
        columns=("qrs", "mvsbt_est_s", "mvbt_est_s", "speedup",
                 "mvsbt_ios", "mvbt_ios"),
    )
    for qrs in qrs_points:
        rects = _rectangles(dataset, qrs, shape, count)
        rta_cost = measure_queries(rta, rects, settings, SUM)
        mvbt_cost = measure_queries(mvbt, rects, settings, SUM)
        table.add(
            qrs=qrs,
            mvsbt_est_s=rta_cost.estimated_s,
            mvbt_est_s=mvbt_cost.estimated_s,
            speedup=mvbt_cost.estimated_s / max(rta_cost.estimated_s, 1e-9),
            mvsbt_ios=rta_cost.ios,
            mvbt_ios=mvbt_cost.ios,
        )
    table.note("paper: speedup grows with QRS, >5000x at QRS=100%")
    return table


# ---------------------------------------------------------------------------
# E3 — Figure 4c: query cost versus buffer size (QRS = 1%)
# ---------------------------------------------------------------------------

def fig4c_buffer(settings: Optional[BenchSettings] = None,
                 scale: float = DEFAULT_SCALE,
                 buffer_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
                 qrs: float = 0.01, count: int = DEFAULT_QUERY_COUNT,
                 family: str = "uniform-long",
                 seed: Optional[int] = None) -> Table:
    """Query cost of both approaches across LRU buffer sizes at QRS=1%.

    Paper result: the two-MVSBT approach is clearly superior at every
    buffer size (its working set is tiny, so it barely benefits from more
    buffer, while the MVBT plan needs a large buffer to amortize rescans).
    Buffer sizes that would hold most of the MVBT outright are dropped —
    at the paper's scale the structures dwarf the buffer, and a buffer
    larger than the competitor voids the sweep's premise.
    """
    settings = settings or BenchSettings()
    dataset = _dataset(family, scale, seed)
    rta = build_rta_index(settings, dataset)
    mvbt = build_mvbt_baseline(settings, dataset)
    measure_updates(rta, dataset.events, settings)
    measure_updates(mvbt, dataset.events, settings)
    mvbt_space = space_pages(mvbt)
    kept = [size for size in buffer_sizes if size <= mvbt_space // 2]
    buffer_sizes = kept or list(buffer_sizes)[:3]
    rects = _rectangles(dataset, qrs, count=count)
    table = Table(
        title=(f"Figure 4c — query cost vs buffer pages, QRS={qrs:.0%}, "
               f"{family}, scale={scale}"),
        columns=("buffer_pages", "mvsbt_est_s", "mvbt_est_s", "speedup"),
    )
    for pages in buffer_sizes:
        for competitor in (rta, mvbt):
            competitor.pool.capacity = pages
        rta_cost = measure_queries(rta, rects, settings, SUM)
        mvbt_cost = measure_queries(mvbt, rects, settings, SUM)
        table.add(
            buffer_pages=pages,
            mvsbt_est_s=rta_cost.estimated_s,
            mvbt_est_s=mvbt_cost.estimated_s,
            speedup=mvbt_cost.estimated_s / max(rta_cost.estimated_s, 1e-9),
        )
    table.note("paper: two-MVSBT superior across all buffer sizes")
    return table


# ---------------------------------------------------------------------------
# E4 — update cost (the paper's "similar behavior" remark)
# ---------------------------------------------------------------------------

def update_cost(settings: Optional[BenchSettings] = None,
                scale: float = DEFAULT_SCALE,
                family: str = "uniform-long",
                seed: Optional[int] = None) -> Table:
    """Amortized per-update cost of both approaches.

    Paper: update time behaves like the space comparison — the two-MVSBT
    approach pays a small constant factor over the single MVBT.
    """
    settings = settings or BenchSettings()
    dataset = _dataset(family, scale, seed)
    table = Table(
        title=f"Update cost per operation, {family}, scale={scale}",
        columns=("method", "ops", "ios_per_op", "est_ms_per_op", "cpu_ms_per_op"),
    )
    for name, build in (("two-MVSBT", build_rta_index),
                        ("MVBT", build_mvbt_baseline)):
        index = build(settings, dataset)
        cost = measure_updates(index, dataset.events, settings)
        table.add(
            method=name, ops=cost.operations,
            ios_per_op=cost.per_operation_ios,
            est_ms_per_op=cost.per_operation_s * 1000,
            cpu_ms_per_op=cost.cpu_s / cost.operations * 1000,
        )
    return table


# ---------------------------------------------------------------------------
# E5 — dataset families (uniform/normal x long/short)
# ---------------------------------------------------------------------------

def dataset_families(settings: Optional[BenchSettings] = None,
                     scale: float = DEFAULT_SCALE, qrs: float = 0.01,
                     count: int = DEFAULT_QUERY_COUNT,
                     seed: Optional[int] = None) -> Table:
    """Space and query cost across the paper's four dataset families.

    Figure 4 shows the uniform/long-lived family; this sweep adds the
    other three.  Short-lived families have high temporal selectivity, so
    the naive plan is competitive at small QRS there — the ``speedup_full``
    column (QRS=100%) shows the MVSBT advantage that always materializes
    once rectangles grow.
    """
    settings = settings or BenchSettings()
    table = Table(
        title=f"Dataset families, scale={scale}, QRS={qrs:.0%} and 100%",
        columns=("family", "mvbt_pages", "two_mvsbt_pages", "space_ratio",
                 "mvsbt_query_s", "mvbt_query_s", "speedup",
                 "speedup_full"),
    )
    for family in PAPER_FAMILIES:
        dataset = _dataset(family, scale, seed)
        rta = build_rta_index(settings, dataset)
        mvbt = build_mvbt_baseline(settings, dataset)
        measure_updates(rta, dataset.events, settings)
        measure_updates(mvbt, dataset.events, settings)
        rects = _rectangles(dataset, qrs, count=count)
        rta_cost = measure_queries(rta, rects, settings, SUM)
        mvbt_cost = measure_queries(mvbt, rects, settings, SUM)
        full = _rectangles(dataset, 1.0, count=count)
        rta_full = measure_queries(rta, full, settings, SUM)
        mvbt_full = measure_queries(mvbt, full, settings, SUM)
        table.add(
            family=family,
            mvbt_pages=space_pages(mvbt),
            two_mvsbt_pages=space_pages(rta),
            space_ratio=space_pages(rta) / space_pages(mvbt),
            mvsbt_query_s=rta_cost.estimated_s,
            mvbt_query_s=mvbt_cost.estimated_s,
            speedup=mvbt_cost.estimated_s / max(rta_cost.estimated_s, 1e-9),
            speedup_full=(mvbt_full.estimated_s
                          / max(rta_full.estimated_s, 1e-9)),
        )
    table.note("short-lived families: fewer tuples per rectangle, so the "
               "MVBT is competitive at small QRS and loses at large QRS")
    return table


# ---------------------------------------------------------------------------
# A1 — strong factor sweep (open problem (i))
# ---------------------------------------------------------------------------

def ablation_strong_factor(settings: Optional[BenchSettings] = None,
                           scale: float = DEFAULT_SCALE,
                           factors: Sequence[float] = (0.3, 0.5, 0.7,
                                                       0.9, 1.0),
                           qrs: float = 0.01,
                           seed: Optional[int] = None) -> Table:
    """Effect of the strong factor ``f`` on space, update and query cost."""
    settings = settings or BenchSettings()
    dataset = _dataset("uniform-long", scale, seed)
    table = Table(
        title=f"Ablation — strong factor f (paper uses 0.9), scale={scale}",
        columns=("f", "pages", "update_ios_per_op", "query_est_s"),
    )
    rects = _rectangles(dataset, qrs)
    for factor in factors:
        rta = build_rta_index(settings, dataset, strong_factor=factor)
        update = measure_updates(rta, dataset.events, settings)
        query = measure_queries(rta, rects, settings, SUM)
        table.add(f=factor, pages=space_pages(rta),
                  update_ios_per_op=update.per_operation_ios,
                  query_est_s=query.estimated_s)
    return table


# ---------------------------------------------------------------------------
# A2 — logical splitting (section 4.2.1) on/off
# ---------------------------------------------------------------------------

def ablation_logical_split(settings: Optional[BenchSettings] = None,
                           scale: float = DEFAULT_SCALE,
                           qrs: float = 0.01,
                           seed: Optional[int] = None) -> Table:
    """Aggregation-in-a-page versus physically splitting every record."""
    settings = settings or BenchSettings()
    dataset = _dataset("uniform-long", scale, seed)
    table = Table(
        title=f"Ablation — logical splitting (4.2.1), scale={scale}",
        columns=("mode", "pages", "records_created", "update_ios_per_op",
                 "query_est_s"),
    )
    rects = _rectangles(dataset, qrs)
    for mode, overrides in (
        ("logical", {}),
        ("physical", dict(logical_split=False, record_merging=False)),
    ):
        rta = build_rta_index(settings, dataset, **overrides)
        update = measure_updates(rta, dataset.events, settings)
        query = measure_queries(rta, rects, settings, SUM)
        records = sum(
            tree.counters.records_created
            for pair in rta.trees().values() for tree in pair
        )
        table.add(mode=mode, pages=space_pages(rta),
                  records_created=records,
                  update_ios_per_op=update.per_operation_ios,
                  query_est_s=query.estimated_s)
    table.note("physical mode splits Theta(b) records per insertion")
    return table


# ---------------------------------------------------------------------------
# A3 — record merging (section 4.2.2) on/off
# ---------------------------------------------------------------------------

def ablation_merging(settings: Optional[BenchSettings] = None,
                     scale: float = DEFAULT_SCALE,
                     seed: Optional[int] = None) -> Table:
    """Space effect of record merging."""
    settings = settings or BenchSettings()
    dataset = _dataset("uniform-long", scale, seed)
    table = Table(
        title=f"Ablation — record merging (4.2.2), scale={scale}",
        columns=("merging", "pages", "records_created", "time_merges",
                 "key_merges"),
    )
    for merging in (True, False):
        rta = build_rta_index(settings, dataset, record_merging=merging)
        measure_updates(rta, dataset.events, settings)
        counters = [
            tree.counters
            for pair in rta.trees().values() for tree in pair
        ]
        table.add(
            merging=merging, pages=space_pages(rta),
            records_created=sum(c.records_created for c in counters),
            time_merges=sum(c.time_merges for c in counters),
            key_merges=sum(c.key_merges for c in counters),
        )
    return table


# ---------------------------------------------------------------------------
# A4 — page disposal (section 4.2.3) on/off under same-instant bursts
# ---------------------------------------------------------------------------

def ablation_disposal(settings: Optional[BenchSettings] = None,
                      scale: float = DEFAULT_SCALE,
                      burst: int = 64,
                      seed: Optional[int] = None) -> Table:
    """Space effect of page disposal when many updates share an instant.

    The update stream's timestamps are quantized into bursts of ``burst``
    consecutive events per instant — the workload the optimization targets.
    """
    settings = settings or BenchSettings()
    # Disposal pays off when many *distinct-key* updates share an instant:
    # a page created and killed within one instant holds nothing any
    # version can see.  Use a key-rich dataset (one record per key) and
    # quantize timestamps so each group of `burst` consecutive events
    # lands on one shared instant (the stream is time-sorted, so
    # group-leader times are non-decreasing and relative event order is
    # untouched).
    base = (paper_config("uniform-long", scale=scale) if seed is None
            else paper_config("uniform-long", scale=scale, seed=seed))
    config = DatasetConfig(
        n_records=base.n_records, n_keys=base.n_records,
        key_space=base.key_space, time_space=base.time_space,
        seed=base.seed,
    )
    dataset = generate_dataset(config)
    bursty = [
        UpdateEvent(event.op, event.key, event.value,
                    dataset.events[(i // burst) * burst].time)
        for i, event in enumerate(dataset.events)
    ]
    table = Table(
        title=(f"Ablation — page disposal (4.2.3), scale={scale}, "
               f"{burst} updates per instant"),
        columns=("disposal", "pages", "disposals"),
    )
    for disposal in (True, False):
        rta = build_rta_index(settings, dataset, page_disposal=disposal)
        for event in bursty:
            tree_insert_stream(rta, event)
        disposals = sum(
            tree.counters.disposals
            for pair in rta.trees().values() for tree in pair
        )
        table.add(disposal=disposal, pages=space_pages(rta),
                  disposals=disposals)
    return table


def tree_insert_stream(rta, event: UpdateEvent) -> None:
    """Replay one event into an RTA index (insert or delete)."""
    if event.op == "insert":
        rta.insert(event.key, event.value, event.time)
    else:
        rta.delete(event.key, event.time)


# ---------------------------------------------------------------------------
# A5 — Theorem 2 / Corollary 1 bound checks
# ---------------------------------------------------------------------------

def theorem2_bounds(settings: Optional[BenchSettings] = None,
                    scales: Sequence[float] = (0.001, 0.002, 0.005),
                    qrs: float = 0.01,
                    seed: Optional[int] = None) -> Table:
    """Measured costs against the paper's asymptotic bounds.

    Query: ``O(log_b n)`` I/Os.  Update: ``O(log_b K)`` I/Os.  Space:
    ``O((n/b) log_b K)`` pages.  The table reports measured-over-bound
    ratios, which must stay bounded (roughly constant) as ``n`` grows.
    """
    settings = settings or BenchSettings()
    b = settings.mvsbt_capacity
    table = Table(
        title=f"Theorem 2 bounds, b={b}",
        columns=("n", "K", "query_ios_per_q", "log_b_n",
                 "update_ios_per_op", "log_b_K", "pages",
                 "space_bound_pages"),
    )
    for scale in scales:
        dataset = _dataset("uniform-long", scale, seed)
        n = len(dataset.events)
        keys = dataset.unique_keys
        rta = build_rta_index(settings, dataset)
        update = measure_updates(rta, dataset.events, settings)
        rects = _rectangles(dataset, qrs)
        query = measure_queries(rta, rects, settings, SUM)
        table.add(
            n=n, K=keys,
            query_ios_per_q=query.stats.logical_reads / query.operations,
            log_b_n=math.log(max(n, 2), b),
            update_ios_per_op=update.stats.logical_reads / update.operations,
            log_b_K=math.log(max(keys, 2), b),
            pages=space_pages(rta),
            space_bound_pages=(n / b) * math.log(max(keys, 2), b),
        )
    return table


# ---------------------------------------------------------------------------
# A7 — range MIN/MAX, insert-only (toward open problem (ii))
# ---------------------------------------------------------------------------

def minmax_open_problem(settings: Optional[BenchSettings] = None,
                        scale: float = DEFAULT_SCALE,
                        qrs_points: Sequence[float] = (0.01, 0.25, 1.0),
                        count: int = 50,
                        seed: Optional[int] = None) -> Table:
    """Insert-only range-temporal MIN: segment-of-SB-trees index vs the
    retrieval fallbacks (MVBT rectangle query, heap scan).

    The paper leaves range MIN/MAX open; for the insert-only case the
    :class:`~repro.minmax.index.RangeMinMaxIndex` answers in
    polylogarithmic I/Os.  Expected shape: the fallbacks degrade with QRS
    while the index stays flat — the Figure 4b story transplanted to MIN.
    """
    from repro.minmax.index import RangeMinMaxIndex

    settings = settings or BenchSettings()
    config = (paper_config("uniform-long", scale=scale) if seed is None
              else paper_config("uniform-long", scale=scale, seed=seed))
    dataset = generate_dataset(config)
    # Insert-only: replay tuples (with their full validity intervals),
    # which all competitors support.
    index = RangeMinMaxIndex(
        BufferPool(InMemoryDiskManager(), capacity=settings.buffer_pages),
        mode="min", key_space=config.key_space, fanout=8,
        capacity=settings.mvsbt_capacity,
        time_domain=(1, config.time_space[1]),
    )
    mvbt = build_mvbt_baseline(settings, dataset)
    heap = build_heap_baseline(settings, dataset)
    for key, start, end, value in sorted(dataset.tuples,
                                         key=lambda t: t[1]):
        index.insert(key, value, start=start, end=end)
    for event in dataset.events:
        if event.op == "insert":
            mvbt.insert(event.key, event.value, event.time)
            heap.insert(event.key, event.value, event.time)
        else:
            mvbt.delete(event.key, event.time)
            heap.delete(event.key, event.time)

    table = Table(
        title=(f"Range MIN (insert-only), scale={scale}: "
               f"segment-of-SB-trees vs retrieval"),
        columns=("qrs", "index_est_s", "mvbt_est_s", "heap_est_s",
                 "index_ios", "mvbt_ios"),
    )
    model = settings.cost_model
    for qrs in qrs_points:
        rects = _rectangles(dataset, qrs, count=count)

        index.pool.clear()
        before = index.pool.stats.snapshot()
        with CpuTimer() as timer:
            for rect in rects:
                index.query(rect.range, rect.interval)
        index_stats = index.pool.stats.delta(before)
        index_est = model.estimate(index_stats, timer.elapsed)

        mvbt_cost = measure_queries(mvbt, rects, settings, MIN)
        heap_cost = measure_queries(heap, rects, settings, MIN)
        table.add(
            qrs=qrs,
            index_est_s=index_est,
            mvbt_est_s=mvbt_cost.estimated_s,
            heap_est_s=heap_cost.estimated_s,
            index_ios=index_stats.logical_reads,
            mvbt_ios=mvbt_cost.stats.logical_reads,
        )
    table.note("deletions void this index; the general case stays open")
    return table


# ---------------------------------------------------------------------------
# A9 — root* representation: paged B+-tree vs main-memory array
# ---------------------------------------------------------------------------

def rootstar_overhead(settings: Optional[BenchSettings] = None,
                      scale: float = DEFAULT_SCALE,
                      qrs: float = 0.01,
                      count: int = DEFAULT_QUERY_COUNT,
                      seed: Optional[int] = None) -> Table:
    """Query cost with root* on disk versus in memory.

    Theorem 2 charges ``O(log_b n)`` I/Os per point query to locate the
    root in a B+-tree root*; the paper remarks that a main-memory array
    reduces the query to ``O(log_b K)``.  This experiment measures both
    representations on the same workload — the paged mode must cost more,
    by a bounded logarithmic term.
    """
    settings = settings or BenchSettings()
    dataset = _dataset("uniform-long", scale, seed)
    table = Table(
        title=f"root* representation, scale={scale}, QRS={qrs:.0%}",
        columns=("rootstar", "roots", "query_est_s", "query_logical_reads",
                 "pages"),
    )
    rects = _rectangles(dataset, qrs, count=count)
    for paged in (False, True):
        index = RTAIndex(
            fresh_pool(settings),
            MVSBTConfig(capacity=settings.mvsbt_capacity,
                        strong_factor=settings.strong_factor),
            key_space=dataset.config.key_space, paged_roots=paged,
        )
        measure_updates(index, dataset.events, settings)
        cost = measure_queries(index, rects, settings, SUM)
        roots = sum(len(tree.roots)
                    for pair in index.trees().values() for tree in pair)
        table.add(
            rootstar="paged B+-tree" if paged else "in-memory array",
            roots=roots,
            query_est_s=cost.estimated_s,
            query_logical_reads=cost.stats.logical_reads,
            pages=space_pages(index),
        )
    table.note("paper: the in-memory array drops the O(log_b n) term")
    return table


# ---------------------------------------------------------------------------
# A8 — operational mix: interleaved updates and queries
# ---------------------------------------------------------------------------

def operational_mix(settings: Optional[BenchSettings] = None,
                    scale: float = DEFAULT_SCALE,
                    queries_per_1000_updates: Sequence[int] = (1, 10, 100),
                    qrs: float = 0.01,
                    seed: Optional[int] = None) -> Table:
    """End-to-end cost of a live warehouse: updates with periodic queries.

    The figure experiments measure updates and queries separately; a
    deployment pays for both.  The two-MVSBT approach spends more per
    update (it maintains two trees) and far less per query — so the
    winner depends on the query rate.  This sweep locates the crossover.
    """
    settings = settings or BenchSettings()
    dataset = _dataset("uniform-long", scale, seed)
    table = Table(
        title=(f"Operational mix, scale={scale}, QRS={qrs:.0%}: total "
               f"estimated seconds (updates + interleaved queries)"),
        columns=("queries_per_1000_updates", "two_mvsbt_s", "mvbt_s",
                 "winner"),
    )
    for rate in queries_per_1000_updates:
        rects = _rectangles(dataset, qrs,
                            count=max(1, rate * len(dataset.events) // 1000))
        totals = {}
        for name, build in (("two-MVSBT", build_rta_index),
                            ("MVBT", build_mvbt_baseline)):
            index = build(settings, dataset)
            pool = index.pool
            before = pool.stats.snapshot()
            rect_iter = iter(rects)
            period = max(1, 1000 // max(rate, 1))
            with CpuTimer() as timer:
                for i, event in enumerate(dataset.events):
                    if event.op == "insert":
                        index.insert(event.key, event.value, event.time)
                    else:
                        index.delete(event.key, event.time)
                    if i % period == period - 1:
                        rect = next(rect_iter, None)
                        if rect is not None:
                            index.sum(rect.range, rect.interval)
            pool.flush_all()
            totals[name] = settings.cost_model.estimate(
                pool.stats.delta(before), timer.elapsed
            )
        table.add(
            queries_per_1000_updates=rate,
            two_mvsbt_s=totals["two-MVSBT"],
            mvbt_s=totals["MVBT"],
            winner=("two-MVSBT" if totals["two-MVSBT"] <= totals["MVBT"]
                    else "MVBT"),
        )
    table.note("crossover: the MVSBT premium on updates pays off once "
               "queries are frequent enough")
    return table


# ---------------------------------------------------------------------------
# A6 — scalar prior-work context (section 2)
# ---------------------------------------------------------------------------

def scalar_context(settings: Optional[BenchSettings] = None,
                   n_intervals: int = 3000,
                   n_queries: int = 200,
                   seed: Optional[int] = None) -> Table:
    """Scalar temporal aggregation: SB-tree vs [KS95] vs [MLI00] vs scan.

    The disk-based SB-tree is measured in estimated time (I/Os + CPU); the
    main-memory structures in CPU only — reproducing the section 2
    narrative: [KS95] degenerates, [MLI00] is balanced but memory-bound,
    the SB-tree is both balanced and disk-resident.
    """
    settings = settings or BenchSettings()
    domain = (1, 10**6)
    # The LCG multiplies the state, so it must start non-zero.
    state = 13 if seed is None else max(1, seed % (2**31 - 1))
    intervals = []
    for _ in range(n_intervals):
        state = (state * 48271) % (2**31 - 1)
        start = state % (domain[1] - 1000) + 1
        length = state % 5000 + 1
        intervals.append((start, min(start + length, domain[1]),
                          float(state % 100)))
    # Sorted starts: the adversarial pattern for the aggregation tree.
    intervals.sort()
    probes = [domain[0] + i * (domain[1] - domain[0]) // (n_queries + 1)
              for i in range(1, n_queries + 1)]

    table = Table(
        title=(f"Scalar temporal aggregation context, {n_intervals} "
               f"intervals (sorted starts), {n_queries} point queries"),
        columns=("method", "update_s", "query_s", "depth", "disk_based"),
    )

    pool = BufferPool(InMemoryDiskManager(), capacity=settings.buffer_pages)
    sbtree = SBTree(pool, capacity=settings.mvsbt_capacity, domain=domain)
    before = pool.stats.snapshot()
    with CpuTimer() as timer:
        for start, end, value in intervals:
            sbtree.insert(start, end, value)
    pool.flush_all()
    update_s = settings.cost_model.estimate(pool.stats.delta(before),
                                            timer.elapsed)
    pool.clear()
    before = pool.stats.snapshot()
    with CpuTimer() as timer:
        for t in probes:
            sbtree.query(t)
    query_s = settings.cost_model.estimate(pool.stats.delta(before),
                                           timer.elapsed)
    table.add(method="SB-tree [YW01]", update_s=update_s, query_s=query_s,
              depth=sbtree.height, disk_based=True)

    agg_tree = AggregationTree(domain=domain)
    with CpuTimer() as timer:
        for start, end, value in intervals:
            agg_tree.insert(start, end, value)
    update_s = timer.elapsed
    with CpuTimer() as timer:
        for t in probes:
            agg_tree.aggregate(t)
    table.add(method="aggregation tree [KS95]", update_s=update_s,
              query_s=timer.elapsed, depth=agg_tree.depth(),
              disk_based=False)

    balanced = BalancedTemporalAggregate()
    with CpuTimer() as timer:
        for start, end, value in intervals:
            balanced.insert(start, end, value)
    update_s = timer.elapsed
    with CpuTimer() as timer:
        for t in probes:
            balanced.aggregate(t)
    table.add(method="balanced tree [MLI00]", update_s=update_s,
              query_s=timer.elapsed, depth=balanced.depth(),
              disk_based=False)

    table.note("[KS95] depth degenerates under sorted insertions")
    return table
