"""Benchmark harness: the paper's methodology as reusable machinery.

Section 5 measures *estimated running time* — counted I/Os times a 10 ms
random-access latency plus measured CPU time — over synthetic datasets and
fixed-size query-rectangle workloads with an LRU buffer (64 pages default).
This package provides:

* :mod:`~repro.bench.harness` — competitor construction (two-MVSBT vs MVBT
  vs heap scan, one buffer pool each), measured update replays and query
  batches;
* :mod:`~repro.bench.experiments` — one function per paper figure (4a, 4b,
  4c), the update-cost and dataset-family sweeps, and the ablations
  (strong factor, logical split, merging, disposal, Theorem 2 bounds,
  scalar prior-work context);
* :mod:`~repro.bench.reporting` — plain-text tables matching the series
  the paper plots.

Every experiment function is pure: config in, result table out.  The
``benchmarks/`` pytest-benchmark suites call these and assert the *shape*
of each result (who wins, how trends move).
"""

from repro.bench.harness import (
    BenchSettings,
    MeasuredCost,
    build_mvbt_baseline,
    build_rta_index,
    measure_queries,
    measure_updates,
)
from repro.bench.reporting import Table

__all__ = [
    "BenchSettings",
    "MeasuredCost",
    "Table",
    "build_mvbt_baseline",
    "build_rta_index",
    "measure_queries",
    "measure_updates",
]
