"""One schema for every ``BENCH_*.json`` artifact.

Each PR so far shipped a benchmark with its own ad-hoc payload —
``BENCH_ingest.json`` (PR 1, per-competitor replay costs),
``BENCH_serve.json`` (PR 3, raw loadgen report), ``BENCH_cache.json``
(PR 4, direct-path + loadgen cache speedups).  Comparing them, or
feeding them to one tool, meant knowing three shapes.  This module fixes
the contract going forward and adapts the past:

* :func:`envelope` / :func:`write_report` — the v1 envelope every writer
  now emits::

      {"schema_version": 1,
       "bench":   "serve",            # which benchmark family
       "config":  {...},              # the knobs that produced the run
       "metrics": {"qps": 1234.5},    # flat name -> number headline
       "raw":     {...}}              # the full legacy payload, untouched

  ``metrics`` is deliberately flat (no nesting, numeric or boolean
  values only) so a report across benches is a join, not a traversal.

* :func:`load_report` / :func:`normalize` — read any ``BENCH_*.json``
  ever written.  Pre-envelope files are *sniffed* by their
  distinguishing keys (``competitors`` → ingest, ``direct`` → cache,
  ``totals`` + ``latency_ms`` → serve) and upgraded in memory to the
  same envelope, raw payload preserved verbatim.

``python -m repro.analyze bench`` consumes these to print the
performance trajectory across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

#: Version of the on-disk envelope written by :func:`write_report`.
SCHEMA_VERSION = 1

#: Bench family -> the PR that introduced it (trajectory ordering).
BENCH_PR = {
    "ingest": 1,
    "serve": 3,
    "cache": 4,
    "multicore": 5,
    "telemetry": 7,
    "cluster": 8,
    "mvcc": 9,
    "batchscan": 10,
}


def envelope(bench: str, config: Mapping[str, Any],
             metrics: Mapping[str, Any],
             raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Assemble a v1 envelope; validates the flat-metrics contract."""
    for name, value in metrics.items():
        if not isinstance(value, (int, float, bool)):
            raise TypeError(
                f"metric {name!r} is {type(value).__name__}; metrics "
                "must be flat numbers (put structure in raw)")
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "config": dict(config),
        "metrics": dict(metrics),
        "raw": dict(raw),
    }


def write_report(path: Path, bench: str, config: Mapping[str, Any],
                 metrics: Mapping[str, Any],
                 raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Write the envelope as pretty sorted JSON; returns it."""
    report = envelope(bench, config, metrics, raw)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return report


def _loadgen_metrics(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Headline numbers of a loadgen ``run_load`` payload."""
    totals = data.get("totals", {})
    latency = data.get("latency_ms", {})
    metrics: Dict[str, Any] = {
        "qps": totals.get("qps", 0.0),
        "requests": totals.get("requests", 0),
        "p50_ms": latency.get("p50"),
        "p95_ms": latency.get("p95"),
        "p99_ms": latency.get("p99"),
    }
    if "offered" in totals:
        metrics["offered"] = totals["offered"]
    if "dropped" in totals:
        metrics["dropped"] = totals["dropped"]
    if totals.get("bursts"):
        metrics["bursts"] = totals["bursts"]
        burst = data.get("config", {}).get("burst")
        if burst:
            metrics["burst"] = burst
    if "retries" in totals:
        metrics["retries"] = totals["retries"]
        metrics["retried_ok"] = totals.get("retried_ok", 0)
    slo = data.get("slo") or {}
    if slo:
        metrics["slo_attained"] = slo.get("attained")
        metrics["slo_burn"] = slo.get("burn")
        metrics["slo_met"] = slo.get("met")
    return {k: v for k, v in metrics.items() if v is not None}


def normalize(data: Mapping[str, Any],
              source: str = "") -> Dict[str, Any]:
    """Upgrade any known ``BENCH_*.json`` payload to the v1 envelope.

    Envelopes pass through unchanged.  Legacy shapes are identified by
    their distinguishing keys; an unrecognized payload becomes an
    ``"unknown"`` bench with empty metrics rather than an error, so one
    stray file never breaks the trajectory report.
    """
    if data.get("schema_version") == SCHEMA_VERSION:
        return dict(data)

    if "competitors" in data:  # legacy BENCH_ingest.json
        metrics = {
            f"cpu_speedup[{name}]": entry.get("cpu_speedup", 0.0)
            for name, entry in data["competitors"].items()
        }
        config = {k: data[k] for k in
                  ("scale", "page_bytes", "buffer_pages", "events",
                   "rounds") if k in data}
        return envelope("ingest", config, metrics, data)

    if "direct" in data:  # legacy BENCH_cache.json
        direct = data["direct"]
        metrics = {
            "warm_speedup": direct.get("speedup", 0.0),
            "warm_qps": direct.get("warm_qps", 0.0),
            "uncached_qps": direct.get("uncached_qps", 0.0),
            "byte_identical": direct.get("byte_identical", False),
        }
        loadgen = data.get("loadgen", {})
        if "speedup" in loadgen:
            metrics["loadgen_speedup"] = loadgen["speedup"]
        config = {k: data[k] for k in
                  ("scale", "keys", "queries", "hot_rectangles",
                   "hot_fraction") if k in data}
        return envelope("cache", config, metrics, data)

    if "totals" in data and "latency_ms" in data:  # legacy BENCH_serve.json
        return envelope("serve", data.get("config", {}),
                        _loadgen_metrics(data), data)

    bench = source or "unknown"
    return envelope(bench, {}, {}, data)


def load_report(path: Path) -> Dict[str, Any]:
    """Read one ``BENCH_*.json`` file, normalized to the v1 envelope.

    The bench name sniffed from the filename (``BENCH_<name>.json``) is
    the fallback label for payloads :func:`normalize` cannot identify.
    """
    path = Path(path)
    stem = path.stem
    source = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    return normalize(json.loads(path.read_text()), source=source)


def load_all(directory: Path) -> Dict[str, Dict[str, Any]]:
    """All ``BENCH_*.json`` envelopes under ``directory``, keyed by file.

    Ordered for the trajectory report: known bench families by the PR
    that introduced them (:data:`BENCH_PR`), then everything else
    alphabetically.
    """
    directory = Path(directory)
    reports = {
        path.name: load_report(path)
        for path in sorted(directory.glob("BENCH_*.json"))
    }

    def rank(item: "tuple[str, Dict[str, Any]]") -> "tuple[int, str]":
        bench = item[1].get("bench", "unknown")
        return (BENCH_PR.get(bench, 99), item[0])

    return dict(sorted(reports.items(), key=rank))
