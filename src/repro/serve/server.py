"""The concurrent TQL query server.

:class:`TQLServer` is an asyncio TCP server speaking the newline-delimited
JSON protocol of :mod:`repro.serve.protocol` over a
:class:`~repro.serve.sharded.ShardedWarehouse`.  The moving parts:

* **Sessions & snapshots** — each connection is pinned to a snapshot time
  (the warehouse's ``now`` at connect, re-pinnable with the ``snapshot``
  op).  Reads execute with ``AS OF`` semantics at that time, so their
  rectangles only touch closed, immutable versions and concurrent ingest
  cannot change their answers mid-flight.
* **Single writer, many readers** — DML is serialized through a per-shard
  asyncio writer queue; read statements run in a thread pool.  Underneath,
  each shard's readers-writer lock and buffer-pool locks keep page access
  safe (see :mod:`repro.serve.sharded`).
* **Admission control** — at most ``max_inflight`` requests execute at
  once and at most ``max_queue`` wait; beyond that the server answers a
  structured ``SERVER_BUSY`` error immediately instead of letting latency
  grow without bound.  Each request also has a ``request_timeout``,
  answered with ``TIMEOUT`` (the worker thread finishes in the background
  and keeps its slot until it does, so the pool cannot oversubscribe).
* **Graceful shutdown** — the ``shutdown`` op (or SIGTERM from the CLI)
  stops admissions, drains in-flight work, checkpoints every shard
  through the WAL/checkpoint path, and closes.  A kill -9 anywhere in
  that sequence recovers via WAL replay on the next open (acknowledged
  updates were logged before their responses were sent).
* **Metrics** — a :class:`~repro.obs.metrics.ServerMetrics` set published
  into the registry the ``metrics`` op exports.

:func:`serve_in_thread` runs the whole event loop in a daemon thread and
returns a handle — the harness tests and the load generator's
``--spawn-server`` mode use it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.cache import CacheConfig
from repro.core.model import MAX_KEY
from repro.errors import (
    ProtocolError,
    ReproError,
    RequestTimeoutError,
    ServerBusyError,
    ServerShuttingDownError,
    ShardDownError,
    error_payload,
)
from repro.obs.metrics import MetricsRegistry, ServerMetrics
from repro.obs.tracefile import TraceSink
from repro.serve import protocol
from repro.serve.sharded import ShardedWarehouse
from repro.serve.telemetry import (
    MetricsHTTPServer,
    RequestContext,
    Sampler,
    SlowQueryLog,
    clear_context,
    clip_tql,
    set_context,
)
from repro.tql import executor as tql_executor
from repro.tql.parser import (
    DeleteStatement,
    HistoryStatement,
    InsertStatement,
    LoadStatement,
    SelectStatement,
    SnapshotStatement,
    parse,
)


@dataclass
class ServerConfig:
    """Everything a deployment tunes, with test-friendly defaults."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0: ephemeral, see TQLServer.address
    shards: int = 4
    key_space: Tuple[int, int] = (1, MAX_KEY + 1)
    page_capacity: int = 32
    buffer_pages: int = 64
    readers: int = 4                   # thread-pool workers for statements
    max_inflight: int = 16             # executing requests, server-wide
    max_queue: int = 32                # waiting requests before SERVER_BUSY
    request_timeout: float = 30.0      # seconds per request
    drain_timeout: float = 10.0        # seconds to drain on shutdown
    durable_dir: Optional[str] = None  # None: in-memory, no WAL
    fsync: bool = False
    checkpoint_every: int = 0          # checkpoint after N writes (0: off)
    cache: bool = True                 # version-pinned read-path caches
    cache_result_entries: int = 4096   # per-shard result-cache capacity
    cache_memo_entries: int = 8192     # per-shard MVSBT path-memo capacity
    buffer_policy: str = "2q"          # scan-resistant pools (fresh shards)
    executor: str = "thread"           # "thread" (default) or "process"
    scan_batch: int = 8                # procpool shared-scan batch ceiling
    ingest: str = "direct"             # default LOAD mode ("buffered" opts
                                       # into the buffer-tree ingest path)
    trace_sample_rate: float = 0.0     # fraction of requests traced (0: only
                                       # per-request "trace": true overrides)
    trace_path: Optional[str] = None   # JSONL sink for sampled traces
    trace_max_bytes: int = 64 * 1024 * 1024  # sink rotation threshold
    metrics_port: Optional[int] = None  # /metrics HTTP port (0: ephemeral)
    slow_ms: Optional[float] = None    # slow-query threshold (None: off)
    slowlog_entries: int = 128         # slow-query ring capacity
    slowlog_explain: bool = True       # capture EXPLAIN for slow SELECTs
    replicas: int = 0                  # WAL-shipped read replicas per shard
                                       # group (>0 selects the cluster
                                       # backend; needs process + durable)
    autosplit: bool = False            # planner thread splits hot ranges
    split_qps: float = 64.0            # autosplit trigger rate per group
    planner_interval: float = 0.5      # cluster planner tick seconds
    merge_qps: Optional[float] = None  # automerge trigger: adjacent groups
                                       # both under this rate merge back
                                       # (cluster backend; None: off)
    writers: int = 1                   # >1 admits concurrent DML through
                                       # per-shard commit groups (group-
                                       # commit WAL batching)
    mvcc: bool = True                  # epoch-validated lock-free reads
                                       # on the thread backend


@dataclass
class _Session:
    """Per-connection state: the pinned snapshot time."""

    snapshot: int
    peer: str = ""


class TQLServer:
    """One serving process: warehouse, protocol, admission control."""

    def __init__(self, config: Optional[ServerConfig] = None,
                 warehouse: Optional[ShardedWarehouse] = None) -> None:
        self.config = config or ServerConfig()
        if warehouse is None:
            warehouse = self._build_warehouse(self.config)
        self.warehouse = warehouse
        self.registry = MetricsRegistry()
        self.metrics = ServerMetrics(self.registry)
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(self.config.readers, 1),
            thread_name_prefix="repro-serve")
        # Keyed by shard id because the cluster backend's ids are stable
        # gids, not positions: splits mint new ids and merges retire
        # them, so locks are created on first use per id.
        self._writer_locks: Dict[int, asyncio.Lock] = {
            shard: asyncio.Lock() for shard in self._all_shard_ids()}
        # Per-shard commit groups (writers > 1): queued ``(statement,
        # future)`` pairs plus the inline-leader flag.  Touched only from
        # the event loop, so plain dicts suffice.
        self._commit_queues: Dict[int, list] = {}
        self._commit_leader_active: Dict[int, bool] = {}
        self._commit_groups = 0
        self._commit_records = 0
        self._commit_max_group = 0
        # The shared-scan queue (scan_batch > 1): queued ``(statement,
        # as_of, future)`` triples of plain SELECT aggregates plus the
        # inline-leader flag — the read-side mirror of the commit
        # groups.  Each drained group is answered by one vectorized
        # ``aggregate_batch`` sweep instead of a serial loop.
        self._scan_queue: list = []
        self._scan_leader_active = False
        self._scan_groups = 0
        self._scan_group_queries = 0
        self._scan_max_group = 0
        self._admission = asyncio.Condition()
        self._inflight = 0
        self._queued = 0
        self._writes_since_checkpoint = 0
        self._draining = False
        self._stopped = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown_task: Optional[asyncio.Task] = None
        self._connections: set = set()
        # -- telemetry plane -----------------------------------------------------------
        self._request_ids = itertools.count(1)
        self._sampler = Sampler(self.config.trace_sample_rate)
        # Async writes: the event loop only enqueues; JSON encoding and
        # the disk append happen on the sink's own thread.  Records come
        # from span_to_record, so they conform by construction and the
        # per-record schema check is skipped (readers still validate).
        self._trace_sink: Optional[TraceSink] = (
            TraceSink(self.config.trace_path, self.config.trace_max_bytes,
                      async_writes=True, validate=False)
            if self.config.trace_path else None)
        self.slowlog = SlowQueryLog(self.config.slowlog_entries)
        self._metrics_http: Optional[MetricsHTTPServer] = None
        self._bg_tasks: set = set()
        # Thread-backend shard locks publish their contention into the
        # exported registry (the process backend has no parent-side locks).
        for index, lock in enumerate(getattr(warehouse, "locks", []) or []):
            lock.attach_metrics(self.registry, {"shard": str(index)})

    def _all_shard_ids(self) -> list:
        """Current shard ids, in routing order.

        Positional ``range(shard_count)`` for the static backends;
        resolved through the routing table for the cluster backend,
        whose ids are gids that change across splits and merges.
        """
        from repro.core.model import KeyRange

        warehouse = self.warehouse
        if getattr(warehouse, "topology_info", None) is None:
            return list(range(warehouse.shard_count))
        return [shard for shard, _ in
                warehouse.parts_for(KeyRange(*warehouse.key_space))]

    def _writer_lock(self, shard: int) -> asyncio.Lock:
        return self._writer_locks.setdefault(shard, asyncio.Lock())

    @staticmethod
    def _build_warehouse(config: ServerConfig):
        """The configured execution backend, caches attached.

        ``executor="thread"`` (default) shares one interpreter across the
        reader pool; ``"process"`` runs one worker process per shard
        (:class:`~repro.serve.procpool.ProcessShardedWarehouse`), with the
        read-path caches living inside the workers.
        """
        cache_config = None
        if config.cache:
            cache_config = CacheConfig(
                result_entries=config.cache_result_entries,
                memo_entries=config.cache_memo_entries)
        if (config.replicas > 0 or config.autosplit
                or config.merge_qps is not None):
            if config.executor != "process":
                raise ValueError(
                    "replicas/autosplit/automerge require the process "
                    "executor (replication ships per-worker WALs)")
            if config.durable_dir is None:
                raise ValueError(
                    "replicas/autosplit/automerge require --durable-dir: "
                    "WAL shipping and checkpoint cloning are disk-based")
            from repro.serve.cluster import ClusterWarehouse

            return ClusterWarehouse(
                shards=config.shards, key_space=config.key_space,
                page_capacity=config.page_capacity,
                buffer_pages=config.buffer_pages,
                buffer_policy=config.buffer_policy,
                durable_dir=config.durable_dir, fsync=config.fsync,
                cache_config=cache_config,
                scan_batch=config.scan_batch,
                replicas=config.replicas,
                autosplit=config.autosplit,
                split_qps=config.split_qps,
                planner_interval=config.planner_interval,
                merge_qps=config.merge_qps)
        if config.executor == "process":
            from repro.serve.procpool import ProcessShardedWarehouse

            return ProcessShardedWarehouse(
                shards=config.shards, key_space=config.key_space,
                page_capacity=config.page_capacity,
                buffer_pages=config.buffer_pages,
                buffer_policy=config.buffer_policy,
                durable_dir=config.durable_dir, fsync=config.fsync,
                cache_config=cache_config,
                scan_batch=config.scan_batch)
        if config.executor != "thread":
            raise ValueError(
                f"unknown executor {config.executor!r}; "
                "expected 'thread' or 'process'")
        if config.durable_dir is not None:
            warehouse = ShardedWarehouse.open_durable(
                config.durable_dir, shards=config.shards,
                key_space=config.key_space,
                page_capacity=config.page_capacity,
                buffer_pages=config.buffer_pages,
                thread_safe=True, fsync=config.fsync,
                buffer_policy=config.buffer_policy,
                mvcc=config.mvcc)
        else:
            warehouse = ShardedWarehouse(
                shards=config.shards, key_space=config.key_space,
                page_capacity=config.page_capacity,
                buffer_pages=config.buffer_pages, thread_safe=True,
                buffer_policy=config.buffer_policy,
                mvcc=config.mvcc)
        if cache_config is not None:
            warehouse.enable_cache(cache_config)
        return warehouse

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port).

        When ``metrics_port`` is configured the ``/metrics`` exposition
        endpoint comes up alongside the protocol socket (its resolved
        port is :attr:`metrics_address`).
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        if self.config.metrics_port is not None:
            self._metrics_http = MetricsHTTPServer(
                self.config.host, self.config.metrics_port,
                self._render_metrics_text)
            self._metrics_http.start()
        return self.address

    @property
    def metrics_address(self) -> Optional[Tuple[str, int]]:
        """The bound ``/metrics`` (host, port), or ``None`` when off."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.host, self._metrics_http.port

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); resolves ephemeral port 0."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def wait_stopped(self) -> None:
        """Block until a graceful shutdown completes."""
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Drain in-flight work, checkpoint every shard, stop.

        Safe to call repeatedly; later calls await the first.
        """
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self._shutdown())
        await asyncio.shield(self._shutdown_task)

    async def _shutdown(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            async with self._admission:
                await asyncio.wait_for(
                    self._admission.wait_for(
                        lambda: self._inflight == 0 and self._queued == 0),
                    self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass  # drain on best effort; WAL covers the stragglers
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._bg_tasks:
            # Slow-query EXPLAIN captures touch the warehouse; let them
            # finish (or fail) before it closes underneath them.
            await asyncio.gather(*list(self._bg_tasks),
                                 return_exceptions=True)
        loop = asyncio.get_running_loop()
        if self.config.durable_dir is not None:
            await loop.run_in_executor(self._pool,
                                       self.warehouse.checkpoint)
        self.warehouse.close()
        self._pool.shutdown(wait=False)
        if self._metrics_http is not None:
            self._metrics_http.stop()
        if self._trace_sink is not None:
            self._trace_sink.close()
        self._stopped.set()

    # -- connection handling -----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        peername = writer.get_extra_info("peername")
        session = _Session(snapshot=self.warehouse.now,
                           peer=str(peername))
        writer.write(protocol.encode({
            "server": "repro.serve",
            "version": protocol.PROTOCOL_VERSION,
            "shards": self.warehouse.shard_count,
            "snapshot": session.snapshot,
        }))
        try:
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._respond(line, session)
                writer.write(protocol.encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # shutdown closing a connection blocked in readline
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _respond(self, line: bytes,
                       session: _Session) -> Dict[str, Any]:
        request_id = None
        ctx: Optional[RequestContext] = None
        started = time.perf_counter()
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            if request_id is None:
                # Server-assigned fallback: every request is correlatable
                # in traces, the slowlog, and error responses even when
                # the client did not number it.
                request_id = f"srv-{next(self._request_ids)}"
            ctx = RequestContext(str(request_id), message["op"])
            forced = message.get("trace") is True
            if forced or self._sampler.sample():
                # Only the explicit override pays for deep page-level
                # worker spans; probabilistic samples stay light.
                ctx.begin_sampling(detail=forced)
            result, snapshot = await self._dispatch(message, session, ctx)
            elapsed = time.perf_counter() - started
            self._finish_request(ctx, elapsed, "ok")
            response = protocol.ok_response(request_id, result,
                                            snapshot=snapshot,
                                            elapsed_ms=elapsed * 1000.0)
            if ctx.trace_id is not None:
                response["trace_id"] = ctx.trace_id
            return response
        except Exception as exc:  # noqa: BLE001 — boundary: all -> payload
            elapsed = time.perf_counter() - started
            if ctx is not None:
                self._finish_request(ctx, elapsed, "error")
            else:
                self.metrics.latency.observe(elapsed)
            if request_id is None:
                # protocol.decode failed before the id was extracted; the
                # unknown-op path stashes it on the exception.
                request_id = getattr(exc, "request_id", None)
            return protocol.error_response(request_id, error_payload(exc))

    def _finish_request(self, ctx: RequestContext, elapsed: float,
                        status: str) -> None:
        """Post-request accounting: histograms, trace sink, slowlog."""
        self.metrics.latency.observe(elapsed)
        self.metrics.op_latency(ctx.op).observe(elapsed)
        self.metrics.op_phase(ctx.op, "queue").observe(ctx.queue_s)
        self.metrics.op_phase(ctx.op, "exec").observe(ctx.exec_s)
        for shard, seconds in ctx.shard_seconds.items():
            self.metrics.shard_seconds(shard).observe(seconds)
        if ctx.sampled:
            self.metrics.traces_sampled.inc()
            if self._trace_sink is not None:
                try:
                    self._trace_sink.write(self._request_record(
                        ctx, elapsed, status))
                except ValueError:
                    pass  # sink closed mid-drain; the trace is lost, not the response
        slow_ms = self.config.slow_ms
        if slow_ms is not None and elapsed * 1000.0 >= slow_ms:
            self._record_slow(ctx, elapsed, status)

    @staticmethod
    def _request_record(ctx: RequestContext, elapsed: float,
                        status: str) -> Dict[str, Any]:
        """The root span record of one sampled request (JSONL shape).

        I/O and CPU totals aggregate the child records (worker spans
        carry real page-level attribution; thread-backend shard records
        carry CPU only); wall-clock figures live in ``attrs`` because
        the record schema's ``cpu_s`` means CPU, not latency.
        """
        attrs: Dict[str, Any] = {
            "op": ctx.op, "request_id": ctx.request_id,
            "trace_id": ctx.trace_id, "span_id": ctx.span_id,
            "status": status,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "queue_ms": round(ctx.queue_s * 1000.0, 3),
            "exec_ms": round(ctx.exec_s * 1000.0, 3),
        }
        if ctx.tql is not None:
            attrs["tql"] = clip_tql(ctx.tql)
        children = ctx.records
        return {
            "name": "request",
            "attrs": attrs,
            "reads": sum(c.get("reads", 0) for c in children),
            "writes": sum(c.get("writes", 0) for c in children),
            "logical_reads": sum(c.get("logical_reads", 0)
                                 for c in children),
            "cpu_s": sum(c.get("cpu_s", 0.0) for c in children),
            **({"children": children} if children else {}),
        }

    def _record_slow(self, ctx: RequestContext, elapsed: float,
                     status: str) -> None:
        """Capture one slow request into the ring, then (for SELECT
        aggregates) schedule the post-hoc EXPLAIN capture."""
        self.metrics.slow_requests.inc()
        entry: Dict[str, Any] = {
            "request_id": ctx.request_id, "op": ctx.op, "status": status,
            "elapsed_ms": round(elapsed * 1000.0, 3),
            "queue_ms": round(ctx.queue_s * 1000.0, 3),
            "exec_ms": round(ctx.exec_s * 1000.0, 3),
            "shard_seconds": {str(shard): round(seconds, 6)
                              for shard, seconds
                              in ctx.shard_seconds.items()},
            "trace_id": ctx.trace_id,
            "tql": clip_tql(ctx.tql),
            "mvcc_retries": ctx.mvcc_retries,
            "mvcc_fallbacks": ctx.mvcc_fallbacks,
            "explain": None,
        }
        self.slowlog.add(entry)
        if (ctx.explain_args is not None and self.config.slowlog_explain
                and not self._draining):
            task = asyncio.ensure_future(
                self._capture_slow_explain(entry, ctx.explain_args))
            self._bg_tasks.add(task)
            task.add_done_callback(self._bg_tasks.discard)

    async def _capture_slow_explain(self, entry: Dict[str, Any],
                                    explain_args: tuple) -> None:
        """Fill a slowlog entry's EXPLAIN span tree + cache outcome.

        Runs after the response went out (the client never waits on it)
        on the reader pool.  Both backends expose the same
        ``explain_trace`` row shape; the thread backend traces each shard
        under its write lock, so this is deliberately off the hot path —
        as is the rectangle resolution itself (``explain_args`` holds the
        raw parsed statement).
        """
        statement, as_of = explain_args
        loop = asyncio.get_running_loop()

        def capture() -> Any:
            key_range, interval = tql_executor._resolve_rectangle(
                self.warehouse, statement, as_of)
            aggregate = tql_executor._aggregate_named(statement.agg.name)
            return self.warehouse.explain_trace(key_range, interval,
                                                aggregate)

        try:
            rows = await loop.run_in_executor(self._pool, capture)
        except Exception as exc:  # noqa: BLE001 — diagnostics must not raise
            entry["explain"] = {"error": error_payload(exc)}
            return
        entry["explain"] = [
            {"shard": row["shard"],
             "key_range": [row["key_range"].low, row["key_range"].high],
             "plan": str(row["plan"].plan
                         if hasattr(row["plan"], "plan") else row["plan"]),
             "record": row["record"],
             "cache": row.get("cache")}
            for row in rows
        ]

    def _render_metrics_text(self) -> str:
        """The full Prometheus exposition: registry + derived gauges.

        Called per scrape from the ``/metrics`` HTTP thread and by the
        ``metrics_text`` op; every publisher it touches (cache snapshot
        RPCs, worker stats, worker registries, the registry itself) is
        thread-safe.
        """
        self._publish_cache_gauges()
        self._publish_procpool_gauges()
        self._publish_cluster_gauges()
        self._publish_mvcc_gauges()
        self._publish_batchscan_gauges()
        self._publish_worker_registries()
        return self.registry.render_prometheus()

    # -- dispatch ----------------------------------------------------------------------

    async def _dispatch(self, message: Dict[str, Any], session: _Session,
                        ctx: RequestContext) -> Tuple[Any, Optional[int]]:
        op = message["op"]
        self.metrics.request(op).inc()
        if op == "ping":
            return "pong", session.snapshot
        if op == "metrics":
            self._publish_cache_gauges()
            self._publish_procpool_gauges()
            self._publish_cluster_gauges()
            self._publish_mvcc_gauges()
            self._publish_batchscan_gauges()
            return self.registry.to_json(), None
        if op == "metrics_text":
            return self._render_metrics_text(), None
        if op == "slowlog":
            limit = message.get("limit")
            if limit is not None and (not isinstance(limit, int)
                                      or limit < 0):
                raise ProtocolError('"limit" must be a non-negative '
                                    'integer')
            return {"entries": self.slowlog.entries(limit),
                    "total": self.slowlog.total}, None
        if op == "load":
            return await self._load(message, ctx), None
        if op == "respawn":
            return self._respawn(message), None
        if op == "topology":
            info = getattr(self.warehouse, "topology_info", None)
            if info is None:
                raise ProtocolError(
                    'op "topology" requires the cluster backend '
                    '(--replicas or --autosplit)')
            return info(), None
        if op in ("split", "merge", "promote"):
            return await self._cluster_op(op, message, ctx), None
        if op == "snapshot":
            session.snapshot = self.warehouse.now
            return session.snapshot, session.snapshot
        if op == "shutdown":
            asyncio.ensure_future(self.shutdown())
            return "draining", None
        if op == "sleep":
            seconds = float(message.get("seconds", 0.0))
            await self._admitted(lambda: time.sleep(seconds), ctx)
            return f"slept {seconds}s", None
        # op == "query"
        return await self._query(message, session, ctx)

    async def _query(self, message: Dict[str, Any], session: _Session,
                     ctx: RequestContext) -> Tuple[Any, Optional[int]]:
        tql = message.get("tql")
        if not isinstance(tql, str):
            raise ProtocolError('op "query" needs a "tql" string field')
        ctx.tql = tql
        statement = parse(tql)
        if isinstance(statement, LoadStatement):
            # A LOAD statement is an all-shards write: hold every writer
            # lock (index order) exactly like the "load" op, so it cannot
            # interleave with single-statement DML.  A plain LOAD follows
            # the server's --ingest default; LOAD BUFFERED is explicit.
            from contextlib import AsyncExitStack
            from dataclasses import replace as _replace

            if not statement.buffered and self.config.ingest == "buffered":
                statement = _replace(statement, buffered=True)

            shards = self._all_shard_ids()
            async with AsyncExitStack() as stack:
                for shard in shards:
                    await stack.enter_async_context(
                        self._writer_lock(shard))
                result = await self._admitted(
                    lambda: tql_executor.execute(self.warehouse, statement),
                    ctx)
                await self._maybe_checkpoint()
            for shard in shards:
                self.metrics.shard_writes(shard).inc()
            return result, None
        if isinstance(statement, (InsertStatement, DeleteStatement)):
            shard = self.warehouse.shard_index(statement.key)
            if self.config.writers > 1:
                return await self._group_commit(shard, statement, ctx), None
            writer_lock = self._writer_lock(shard)

            async def serialized() -> Any:
                async with writer_lock:
                    result = await self._admitted(
                        lambda: tql_executor.execute(self.warehouse,
                                                     statement), ctx)
                self.metrics.shard_writes(shard).inc()
                await self._maybe_checkpoint()
                return result

            return await serialized(), None
        as_of = message.get("as_of", session.snapshot)
        if not isinstance(as_of, int) or as_of < 0:
            raise ProtocolError('"as_of" must be a non-negative integer')
        self._note_explainable(statement, as_of, ctx)
        if (isinstance(statement, SelectStatement)
                and statement.agg.timeline_buckets is None
                and self.config.scan_batch > 1
                and hasattr(self.warehouse, "aggregate_batch")):
            result = await self._group_scan(statement, as_of, ctx)
        else:
            result = await self._admitted(
                lambda: tql_executor.execute(self.warehouse, statement,
                                             as_of=as_of), ctx)
        for shard in self._touched_shards(statement):
            self.metrics.shard_queries(shard).inc()
        return result, as_of

    def _note_explainable(self, statement: Any, as_of: int,
                          ctx: RequestContext) -> None:
        """Stash a plain SELECT aggregate so a slow request can be re-run
        under EXPLAIN after the fact.

        Only the parsed statement is stashed — rectangle resolution is
        deferred to :meth:`_capture_slow_explain`, because this runs on
        every read request's hot path and almost none of them end up
        slow."""
        if self.config.slow_ms is None or not self.config.slowlog_explain:
            return
        if not isinstance(statement, SelectStatement) \
                or statement.agg.timeline_buckets is not None:
            return
        ctx.explain_args = (statement, as_of)

    # -- commit groups (writers > 1) -----------------------------------------------------

    @staticmethod
    def _batch_op(statement: Any) -> tuple:
        """A parsed DML statement as a warehouse ``apply_batch`` op."""
        if isinstance(statement, InsertStatement):
            return ("insert", statement.key, statement.value, statement.at)
        return ("delete", statement.key, statement.at)

    @staticmethod
    def _batch_result(statement: Any, value: Any) -> str:
        """The response string for one batched op — byte-identical to
        what :func:`repro.tql.executor.execute` returns serially."""
        if isinstance(statement, InsertStatement):
            return f"inserted key {statement.key} at t={statement.at}"
        return (f"deleted key {statement.key} at t={statement.at} "
                f"(value was {value})")

    async def _group_commit(self, shard: int, statement: Any,
                            ctx: RequestContext) -> Any:
        """Admit one DML statement through the shard's commit group.

        Enqueue ``(statement, future)``; if no leader is flushing this
        shard, become the **inline leader** and drain groups until the
        queue is empty.  Each group commits with *one* writer-lock
        acquisition, one executor hop and — via
        :meth:`~repro.core.warehouse.TemporalWarehouse.apply_batch` — one
        WAL flush and one epoch bump, regardless of how many statements
        piled up while the previous group was applying.  Per-shard
        arrival order is preserved (the queue is FIFO and ops stay in
        enqueue order inside the batch), so answers are byte-identical
        to serial execution.  Followers just await their future.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._commit_queues.setdefault(shard, []).append(
            (statement, future))
        if not self._commit_leader_active.get(shard):
            self._commit_leader_active[shard] = True
            try:
                while self._commit_queues.get(shard):
                    group = self._commit_queues[shard]
                    self._commit_queues[shard] = []
                    await self._flush_commit_group(shard, group, ctx)
            finally:
                self._commit_leader_active[shard] = False
        return await future

    async def _flush_commit_group(self, shard: int, group: list,
                                  ctx: RequestContext) -> None:
        """Apply one drained group and publish each member's outcome.

        A failed *admission* (busy/timeout/shutdown) fails the whole
        group — none of its ops were applied.  A failed *op* inside an
        admitted batch fails only its own future
        (:meth:`~repro.core.warehouse.TemporalWarehouse.apply_batch`
        isolates per-op errors exactly like serial execution would).
        """
        from repro.errors import error_from_payload

        ops = [self._batch_op(stmt) for stmt, _ in group]
        try:
            async with self._writer_lock(shard):
                results = await self._admitted(
                    lambda: self.warehouse.apply_shard_batch(shard, ops),
                    ctx)
        except Exception as exc:  # noqa: BLE001 — fanned out per member
            for _, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        self._commit_groups += 1
        self._commit_records += len(group)
        self._commit_max_group = max(self._commit_max_group, len(group))
        self.metrics.shard_writes(shard).inc(len(group))
        for (stmt, future), (status, payload) in zip(group, results):
            if future.done():
                continue
            if status == "ok":
                future.set_result(self._batch_result(stmt, payload))
            else:
                future.set_exception(error_from_payload(payload))
        await self._maybe_checkpoint()

    # -- shared-scan groups (scan_batch > 1) ---------------------------------------------

    async def _group_scan(self, statement: Any, as_of: int,
                          ctx: RequestContext) -> Any:
        """Admit one plain SELECT aggregate through the shared-scan queue.

        The read-side mirror of :meth:`_group_commit`: enqueue
        ``(statement, as_of, future)``; if no leader is draining, become
        the inline leader and flush groups of up to ``scan_batch``
        queries until the queue is empty.  Each group is answered with
        *one* executor hop and one
        :meth:`~repro.core.warehouse.TemporalWarehouse.aggregate_batch`
        sweep — every MVSBT page the group touches is fetched and
        decoded once, and (MVCC) the shard epoch is validated once for
        the whole group.  Queries that pile up while a flush is in
        flight form the next group; answers are byte-identical to serial
        execution and a failing query fails only its own future.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._scan_queue.append((statement, as_of, future))
        if not self._scan_leader_active:
            self._scan_leader_active = True
            try:
                while self._scan_queue:
                    batch = self.config.scan_batch
                    group = self._scan_queue[:batch]
                    del self._scan_queue[:batch]
                    await self._flush_scan_group(group, ctx)
            finally:
                self._scan_leader_active = False
        return await future

    async def _flush_scan_group(self, group: list,
                                ctx: RequestContext) -> None:
        """Answer one drained scan group and publish each member's result.

        A single query skips the batch machinery entirely (the serial
        path is the batch path for N=1, minus overhead).  A failed
        *admission* fails the whole group; inside an admitted batch the
        executor returns per-query exceptions in-band, so one bad
        rectangle fails only its own future.
        """
        if len(group) == 1:
            statement, as_of, future = group[0]
            try:
                result = await self._admitted(
                    lambda: tql_executor.execute(self.warehouse, statement,
                                                 as_of=as_of), ctx)
            except Exception as exc:  # noqa: BLE001 — fanned to the future
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(result)
            return
        requests = [(stmt, as_of) for stmt, as_of, _ in group]
        try:
            results = await self._admitted(
                lambda: tql_executor.execute_select_batch(self.warehouse,
                                                          requests), ctx)
        except Exception as exc:  # noqa: BLE001 — fanned out per member
            for _, _, future in group:
                if not future.done():
                    future.set_exception(exc)
            return
        self._scan_groups += 1
        self._scan_group_queries += len(group)
        self._scan_max_group = max(self._scan_max_group, len(group))
        for (_, _, future), result in zip(group, results):
            if future.done():
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)

    async def _load(self, message: Dict[str, Any],
                    ctx: RequestContext) -> Any:
        """The bulk-ingest op: fan a sorted event batch out to the shards.

        Holds *every* shard's writer lock (in index order) so the load
        cannot interleave with single-statement DML; under the process
        backend the per-shard partitions then stream through their
        workers' :class:`~repro.core.ingest.BatchLoader` concurrently —
        the parallel bulk-load path.  Events are ``[op, key, value, time]``
        rows, chronologically sorted across the whole batch.
        """
        events = message.get("events")
        if not isinstance(events, list):
            raise ProtocolError('op "load" needs an "events" array')
        batch_size = message.get("batch_size", 1024)
        if not isinstance(batch_size, int) or batch_size < 1:
            raise ProtocolError('"batch_size" must be a positive integer')
        mode = message.get("mode", self.config.ingest)
        if mode not in ("direct", "buffered"):
            raise ProtocolError('"mode" must be "direct" or "buffered"')

        from contextlib import AsyncExitStack

        shards = self._all_shard_ids()
        async with AsyncExitStack() as stack:
            for shard in shards:
                await stack.enter_async_context(self._writer_lock(shard))
            report = await self._admitted(
                lambda: self.warehouse.load_events(events, batch_size,
                                                   mode), ctx)
            await self._maybe_checkpoint()
        for shard in shards:
            self.metrics.shard_writes(shard).inc()
        return {
            "events": report.events, "inserts": report.inserts,
            "deletes": report.deletes, "batches": report.batches,
            "flushed_pages": report.flushed_pages,
            "buffered_events": report.buffered_events,
        }

    def _respawn(self, message: Dict[str, Any]) -> Any:
        """Replace a dead shard worker (process backend only).

        Durable shards recover via checkpoint + WAL replay inside the
        fresh worker; returns the new worker's pid.
        """
        respawn = getattr(self.warehouse, "respawn", None)
        if respawn is None:
            raise ProtocolError(
                'op "respawn" requires the process executor')
        shard = message.get("shard")
        if not isinstance(shard, int) or shard < 0:
            raise ProtocolError('"shard" must be a non-negative integer')
        if shard not in self._all_shard_ids():
            raise ProtocolError(
                f'"shard" must be one of {self._all_shard_ids()}')
        return {"shard": shard, "pid": respawn(shard)}

    async def _cluster_op(self, op: str, message: Dict[str, Any],
                          ctx: RequestContext) -> Any:
        """Dispatch a topology-changing verb to the cluster backend.

        Runs on the reader pool under admission control (splits move a
        checkpoint's worth of bytes); the backend's own admin/topology
        locks serialize it against writes and other admin verbs, so no
        server-side writer locks are taken here.
        """
        warehouse = self.warehouse
        if getattr(warehouse, "topology_info", None) is None:
            raise ProtocolError(
                f'op "{op}" requires the cluster backend '
                '(--replicas or --autosplit)')
        if op == "merge":
            gids = message.get("gids")
            if (not isinstance(gids, list) or len(gids) != 2
                    or not all(isinstance(g, int) for g in gids)):
                raise ProtocolError(
                    'op "merge" needs a two-element integer "gids" array')
            return await self._admitted(
                lambda: warehouse.merge(gids[0], gids[1]), ctx)
        gid = message.get("gid")
        if not isinstance(gid, int) or gid < 0:
            raise ProtocolError(f'op "{op}" needs a non-negative integer '
                                '"gid" field')
        if op == "split":
            at = message.get("at")
            if at is not None and not isinstance(at, int):
                raise ProtocolError('"at" must be an integer split key')
            return await self._admitted(lambda: warehouse.split(gid, at),
                                        ctx)
        replica = message.get("replica")
        if replica is not None and not isinstance(replica, int):
            raise ProtocolError('"replica" must be an integer id')
        return await self._admitted(
            lambda: warehouse.promote(gid, replica), ctx)

    def _publish_procpool_gauges(self) -> None:
        """Aggregate worker-process counters into the parent registry.

        Process backend only (no-op otherwise): each worker's request
        counters, shared-scan batching stats, and liveness surface as
        ``repro_procpool_<counter>{shard=N}`` gauges, so one ``metrics``
        op shows the whole pool without touching worker internals.
        """
        worker_stats = getattr(self.warehouse, "worker_stats", None)
        if worker_stats is None:
            return
        for row in worker_stats():
            labels = {"shard": str(row.get("shard", ""))}
            if row.get("role") == "replica":
                # Cluster replica rows share the primary's shard id; the
                # replica label keeps the series distinct.
                labels["replica"] = str(row.get("replica", ""))
            for counter in ("requests", "reads", "writes", "errors",
                            "shared_batches", "batched_reads",
                            "batch_sweeps", "batch_queries",
                            "load_bytes"):
                if counter in row:
                    self.registry.gauge(
                        f"repro_procpool_{counter}",
                        f"shard worker counter {counter}",
                        labels).set(row[counter])
            if "qps" in row:
                self.registry.gauge(
                    "repro_procpool_shard_qps",
                    "worker request rate since the last scrape (req/s)",
                    labels).set(row["qps"])
            if "queue_depth" in row:
                self.registry.gauge(
                    "repro_procpool_shard_queue_depth",
                    "requests in flight on the worker pipe",
                    labels).set(row["queue_depth"])
            if "lag" in row:
                self.registry.gauge(
                    "repro_cluster_replica_lag",
                    "primary WAL records not yet applied by the replica",
                    labels).set(row["lag"])
            self.registry.gauge(
                "repro_procpool_alive", "shard worker liveness",
                labels).set(1 if row.get("alive") else 0)

    def _publish_cluster_gauges(self) -> None:
        """Topology-plane gauges (cluster backend only, no-op otherwise):
        split/merge/failover/promotion counters, the topology version,
        and the current group count."""
        info = getattr(self.warehouse, "topology_info", None)
        if info is None:
            return
        payload = info()
        for name, value in payload["counters"].items():
            self.registry.gauge(
                f"repro_cluster_{name}",
                f"cluster lifetime {name}", {}).set(value)
        self.registry.gauge(
            "repro_cluster_topology_version",
            "monotonic topology version (bumped per split/merge)",
            {}).set(payload["version"])
        self.registry.gauge(
            "repro_cluster_groups", "current shard group count",
            {}).set(len(payload["groups"]))

    def _publish_worker_registries(self) -> None:
        """Aggregate per-worker metrics *registries* into the parent's.

        Process backend only (no-op otherwise).  Each worker snapshots
        its warehouse into a fresh registry — pool IOStats, tree
        counters, cache counters — and ships it as JSON; every series is
        republished here with a ``shard`` label, so one ``/metrics``
        scrape carries e.g. ``repro_pool_reads{pool="tuples",shard="2"}``
        for every worker process.
        """
        registries = getattr(self.warehouse, "worker_registries", None)
        if registries is None:
            return
        for shard, payload in registries():
            for name, metric in payload.items():
                for entry in metric.get("series", ()):
                    if "value" not in entry:
                        continue  # worker snapshots only ship gauges
                    labels = dict(entry.get("labels", {}))
                    labels["shard"] = str(shard)
                    self.registry.gauge(name, metric.get("help", ""),
                                        labels).set(entry["value"])

    def _publish_mvcc_gauges(self) -> None:
        """Concurrency-plane gauges: per-shard write epochs, the
        optimistic-read counters, and commit-group totals.

        ``repro_shard_write_epoch{shard=N}`` is the cache-validation
        epoch every update bumps — the baseline the MVCC counters diff
        against.  Epochs and MVCC stats are thread-backend series (the
        process backend's epochs live inside its workers); the
        commit-group gauges are backend-independent.
        """
        shards = getattr(self.warehouse, "shards", None)
        if shards is not None:
            for index, shard in enumerate(shards):
                self.registry.gauge(
                    "repro_shard_write_epoch",
                    "per-shard write epoch (bumped once per update or "
                    "commit group)",
                    {"shard": str(index)}).set(shard.write_epoch)
        stats = getattr(self.warehouse, "mvcc_stats", None)
        if stats is not None:
            for name, value in stats.as_dict().items():
                self.registry.gauge(
                    f"repro_mvcc_reads_{name}",
                    f"MVCC reader counter: {name}", {}).set(value)
        self.registry.gauge(
            "repro_commit_groups",
            "commit groups flushed (writers > 1)", {}).set(
                self._commit_groups)
        self.registry.gauge(
            "repro_commit_group_records",
            "DML statements committed through groups", {}).set(
                self._commit_records)
        self.registry.gauge(
            "repro_commit_group_max_size",
            "largest commit group flushed", {}).set(
                self._commit_max_group)

    def _publish_batchscan_gauges(self) -> None:
        """Vectorized batch-read counters as ``repro_batchscan_<name>``.

        The snapshot merges every shard's :class:`BatchScanStats` (over
        RPC for the process backend), so one scrape shows batch sizes,
        probe/page dedup savings, and the once-per-batch MVCC epoch
        accounting for the whole warehouse.  No-op until the first batch
        sweep runs (the merged snapshot is empty).
        """
        snapshot_fn = getattr(self.warehouse, "batch_snapshot", None)
        if snapshot_fn is None:
            return
        try:
            snapshot = snapshot_fn()
        except ShardDownError:
            # A worker died mid-scrape; keep the last published values
            # (same serviceability contract as the cache gauges).
            return
        for name, value in snapshot.items():
            self.registry.gauge(
                f"repro_batchscan_{name}",
                f"batch read-path counter {name}", {}).set(value)
        self.registry.gauge(
            "repro_batchscan_server_groups",
            "shared-scan groups flushed by the server (queries > 1)",
            {}).set(self._scan_groups)
        self.registry.gauge(
            "repro_batchscan_server_group_queries",
            "SELECT aggregates answered through shared-scan groups",
            {}).set(self._scan_group_queries)
        self.registry.gauge(
            "repro_batchscan_server_max_group",
            "largest shared-scan group flushed", {}).set(
                self._scan_max_group)

    def _publish_cache_gauges(self) -> None:
        """Mirror merged cache counters into the exported registry.

        Same naming as :func:`repro.obs.metrics.snapshot_into`:
        ``repro_cache_<counter>{cache=result|memo|decoded}``.  No-op rows
        never appear when caching is disabled (the merged snapshot is
        empty), so the export stays byte-stable for cache-off runs.
        """
        try:
            snapshot = self.warehouse.cache_snapshot()
        except ShardDownError:
            # A worker died mid-scrape; keep the last published values —
            # the export must stay serviceable during an outage (liveness
            # is reported by the procpool/cluster gauges, not this one).
            return
        for layer, stats in snapshot.as_dict().items():
            for counter, value in stats.items():
                self.registry.gauge(
                    f"repro_cache_{counter}",
                    f"read-path cache counter {counter}",
                    {"cache": layer}).set(value)

    def _touched_shards(self, statement: Any) -> list:
        """Shard indexes a read statement fans out to (for metrics)."""
        from repro.core.model import KeyRange

        warehouse = self.warehouse
        lo, hi = warehouse.key_space
        if isinstance(statement, HistoryStatement):
            try:
                return [warehouse.shard_index(statement.key)]
            except ReproError:
                return []
        key_range = None
        if isinstance(statement, (SelectStatement, SnapshotStatement)):
            key_range = KeyRange(*(statement.key_range or (lo, hi)))
        elif hasattr(statement, "select"):  # EXPLAIN
            select = statement.select
            key_range = KeyRange(*(select.key_range or (lo, hi)))
        if key_range is None:
            return []
        return [index for index, _ in warehouse.parts_for(key_range)]

    async def _maybe_checkpoint(self) -> None:
        if (self.config.checkpoint_every <= 0
                or self.config.durable_dir is None):
            return
        self._writes_since_checkpoint += 1
        if self._writes_since_checkpoint >= self.config.checkpoint_every:
            self._writes_since_checkpoint = 0
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._pool,
                                       self.warehouse.checkpoint)

    # -- admission control -------------------------------------------------------------

    async def _admitted(self, fn, ctx: Optional[RequestContext] = None
                        ) -> Any:
        """Run ``fn`` in the thread pool under a slot, queue, and timeout.

        The slot is released when the worker *finishes*, not when the
        response goes out — a timed-out request keeps occupying capacity
        until its thread returns, so admission control reflects true load.

        With a :class:`RequestContext`, the time from here to slot grant
        is the request's *queue* phase and the time inside ``fn`` its
        *exec* phase; the context is installed in the executing thread's
        telemetry slot so the shard backends can attribute time (and,
        when sampled, trace context) to their shard calls.
        """
        if self._draining:
            raise ServerShuttingDownError("server is draining for shutdown")
        admission_started = time.perf_counter()
        async with self._admission:
            if self._inflight >= self.config.max_inflight:
                if self._queued >= self.config.max_queue:
                    self.metrics.rejected("busy").inc()
                    raise ServerBusyError(
                        f"{self._inflight} in flight and {self._queued} "
                        "queued; retry with backoff")
                self._queued += 1
                self.metrics.queue_depth.set(self._queued)
                try:
                    await self._admission.wait_for(
                        lambda: self._inflight < self.config.max_inflight)
                finally:
                    self._queued -= 1
                    self.metrics.queue_depth.set(self._queued)
                    self._admission.notify_all()  # wakes the drain waiter
                if self._draining:
                    raise ServerShuttingDownError(
                        "server is draining for shutdown")
            self._inflight += 1
            self.metrics.inflight.set(self._inflight)
        if ctx is not None:
            ctx.queue_s += time.perf_counter() - admission_started
            fn = self._contextualized(fn, ctx)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, fn)
        future.add_done_callback(self._release_slot)
        try:
            return await asyncio.wait_for(asyncio.shield(future),
                                          self.config.request_timeout)
        except asyncio.TimeoutError:
            self.metrics.rejected("timeout").inc()
            raise RequestTimeoutError(
                f"request exceeded {self.config.request_timeout}s; "
                "still completing in the background") from None

    @staticmethod
    def _contextualized(fn, ctx: RequestContext):
        """Wrap a pooled callable with telemetry bookkeeping.

        ``loop.run_in_executor`` does not propagate contextvars, so the
        request context rides a plain thread-local set here — inside the
        pool thread — and cleared before the thread returns to the pool.
        The wall time inside ``fn`` is the request's exec phase.
        """
        def run() -> Any:
            set_context(ctx)
            started = time.perf_counter()
            try:
                return fn()
            finally:
                ctx.exec_s += time.perf_counter() - started
                clear_context()
        return run

    def _release_slot(self, future: "asyncio.Future") -> None:
        if future.cancelled():
            pass
        elif future.exception() is not None:
            pass  # retrieved so abandoned (timed-out) futures don't warn
        asyncio.ensure_future(self._release_slot_async())

    async def _release_slot_async(self) -> None:
        async with self._admission:
            self._inflight -= 1
            self.metrics.inflight.set(self._inflight)
            self._admission.notify_all()


# -- thread-hosted server (tests, loadgen --spawn-server) ----------------------------


class ServerHandle:
    """A server running its own event loop in a daemon thread."""

    def __init__(self, host: str, port: int, loop: asyncio.AbstractEventLoop,
                 server: TQLServer, thread: threading.Thread) -> None:
        self.host = host
        self.port = port
        self._loop = loop
        self.server = server
        self._thread = thread

    def stop(self, timeout: float = 30.0) -> None:
        """Request graceful shutdown and join the serving thread."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop).result(timeout)
        self._thread.join(timeout)


def serve_in_thread(config: Optional[ServerConfig] = None,
                    warehouse: Optional[ShardedWarehouse] = None,
                    start_timeout: float = 30.0) -> ServerHandle:
    """Start a :class:`TQLServer` on a background thread; returns when it
    is accepting connections."""
    started: "concurrent.futures.Future" = concurrent.futures.Future()
    holder: Dict[str, Any] = {}

    def run() -> None:
        async def main() -> None:
            server = TQLServer(config, warehouse)
            try:
                host, port = await server.start()
            except Exception as exc:  # noqa: BLE001 — surfaced to caller
                started.set_exception(exc)
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set_result((host, port))
            await server.wait_stopped()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="repro-serve-loop",
                              daemon=True)
    thread.start()
    host, port = started.result(start_timeout)
    return ServerHandle(host, port, holder["loop"], holder["server"],
                        thread)
