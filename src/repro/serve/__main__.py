"""``python -m repro.serve`` — run the TQL query server.

Prints ``LISTENING <host> <port>`` once accepting (port 0 requests an
ephemeral port, resolved in that line — harness scripts parse it), then
serves until SIGINT/SIGTERM or a client ``shutdown`` op triggers the
graceful drain-checkpoint-exit sequence.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
from typing import List, Optional

from repro.serve.server import ServerConfig, TQLServer


def build_parser() -> argparse.ArgumentParser:
    """The server CLI's argument parser (one flag per ServerConfig knob)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent TQL query server over a sharded "
                    "temporal warehouse.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default 0: ephemeral)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--key-lo", type=int, default=1)
    parser.add_argument("--key-hi", type=int, default=10**9 + 1,
                        help="exclusive upper bound of the key space")
    parser.add_argument("--page-capacity", type=int, default=32)
    parser.add_argument("--buffer-pages", type=int, default=64)
    parser.add_argument("--readers", type=int, default=4,
                        help="statement thread-pool size")
    parser.add_argument("--max-inflight", type=int, default=16)
    parser.add_argument("--max-queue", type=int, default=32)
    parser.add_argument("--request-timeout", type=float, default=30.0)
    parser.add_argument("--drain-timeout", type=float, default=10.0)
    parser.add_argument("--durable-dir", default=None,
                        help="enable WAL + checkpoint recovery under "
                             "this directory")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every WAL record (durable, slower)")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        help="checkpoint after every N writes (0: only "
                             "on shutdown)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="disable the version-pinned read-path caches "
                             "(result cache + MVSBT point memo)")
    parser.add_argument("--cache-result-entries", type=int, default=4096,
                        help="per-shard result-cache capacity")
    parser.add_argument("--cache-memo-entries", type=int, default=8192,
                        help="per-shard MVSBT point-memo capacity")
    parser.add_argument("--buffer-policy", choices=("lru", "2q"),
                        default="2q",
                        help="buffer-pool eviction policy for fresh shards "
                             "(2q resists one-off scans)")
    parser.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="execution backend: shared thread pool "
                             "(default) or one worker process per shard "
                             "(escapes the GIL; see docs/SERVING.md)")
    parser.add_argument("--scan-batch", type=int, default=8,
                        help="process executor: max consecutive reads a "
                             "shard worker answers in one shared-scan "
                             "pass (1 disables batching)")
    parser.add_argument("--ingest", choices=("direct", "buffered"),
                        default="direct",
                        help="default LOAD mode: direct batch kernels, or "
                             "the buffer-tree ingest path (amortized bulk "
                             "inserts; per-request \"mode\" overrides)")
    parser.add_argument("--trace-sample-rate", type=float, default=0.0,
                        help="fraction of requests recorded by the "
                             "distributed tracer (0.0 disables sampling; "
                             "per-request \"trace\": true always records)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="rotating JSONL sink for sampled traces "
                             "(schema: docs/trace_schema.json)")
    parser.add_argument("--trace-max-bytes", type=int,
                        default=64 * 1024 * 1024,
                        help="rotate the trace sink beyond this size")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="serve Prometheus text exposition on "
                             "http://HOST:PORT/metrics (0: ephemeral, "
                             "resolved in the METRICS line)")
    parser.add_argument("--slow-ms", type=float, default=None,
                        help="log requests slower than this many ms to "
                             "the slow-query ring (slowlog op; captures "
                             "EXPLAIN span trees for SELECTs)")
    parser.add_argument("--slowlog-entries", type=int, default=128,
                        help="slow-query ring capacity")
    parser.add_argument("--replicas", type=int, default=0,
                        help="WAL-shipped read replicas per shard group "
                             "(>0 selects the elastic cluster backend; "
                             "needs --executor process and --durable-dir)")
    parser.add_argument("--autosplit", action="store_true",
                        help="cluster planner: split a shard group's key "
                             "range online when it runs hot (needs "
                             "--executor process and --durable-dir)")
    parser.add_argument("--split-qps", type=float, default=64.0,
                        help="autosplit trigger: per-group request rate "
                             "(req/s) above which the hottest group is "
                             "split (default 64)")
    parser.add_argument("--merge-qps", type=float, default=None,
                        help="cluster planner: automerge adjacent shard "
                             "groups whose request rates both sit at or "
                             "below this (req/s); unset disables "
                             "automerge (needs --executor process and "
                             "--durable-dir)")
    parser.add_argument("--planner-interval", type=float, default=0.5,
                        help="cluster planner tick seconds (stats scrape, "
                             "replica respawn, autosplit checks)")
    parser.add_argument("--writers", type=int, default=1,
                        help="concurrent-writer admission width: >1 "
                             "batches same-shard DML into commit groups "
                             "flushed with one WAL write per group "
                             "(answers stay byte-identical to --writers 1)")
    parser.add_argument("--no-mvcc", dest="mvcc", action="store_false",
                        help="disable epoch-validated lock-free snapshot "
                             "reads (thread executor); reads then take "
                             "the per-shard read lock as before")
    return parser


async def amain(config: ServerConfig) -> int:
    """Run the server until a graceful shutdown completes."""
    server = TQLServer(config)
    host, port = await server.start()
    print(f"LISTENING {host} {port}", flush=True)
    if server.metrics_address is not None:
        metrics_host, metrics_port = server.metrics_address
        print(f"METRICS {metrics_host} {metrics_port}", flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(
            signum, lambda: asyncio.ensure_future(server.shutdown()))
    await server.wait_stopped()
    print("server stopped", flush=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: parse flags, build the config, serve."""
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host, port=args.port, shards=args.shards,
        key_space=(args.key_lo, args.key_hi),
        page_capacity=args.page_capacity, buffer_pages=args.buffer_pages,
        readers=args.readers, max_inflight=args.max_inflight,
        max_queue=args.max_queue, request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout, durable_dir=args.durable_dir,
        fsync=args.fsync, checkpoint_every=args.checkpoint_every,
        cache=args.cache,
        cache_result_entries=args.cache_result_entries,
        cache_memo_entries=args.cache_memo_entries,
        buffer_policy=args.buffer_policy,
        executor=args.executor, scan_batch=args.scan_batch,
        ingest=args.ingest,
        trace_sample_rate=args.trace_sample_rate,
        trace_path=args.trace_out, trace_max_bytes=args.trace_max_bytes,
        metrics_port=args.metrics_port, slow_ms=args.slow_ms,
        slowlog_entries=args.slowlog_entries,
        replicas=args.replicas, autosplit=args.autosplit,
        split_qps=args.split_qps,
        planner_interval=args.planner_interval,
        merge_qps=args.merge_qps, writers=args.writers, mvcc=args.mvcc,
    )
    return asyncio.run(amain(config))


if __name__ == "__main__":
    raise SystemExit(main())
