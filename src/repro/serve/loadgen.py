"""Load generator for the TQL server: closed-loop and open-loop modes.

``python -m repro.serve.loadgen`` drives N worker threads, each with its
own blocking :class:`~repro.serve.client.Client`, against a live server —
or against one it spawns itself with ``--spawn-server``.  A seed phase
inserts a key population first; an optional ``--warmup`` phase then
drives identical (unrecorded) load; the measured phase issues randomized
``SELECT SUM/COUNT/AVG`` rectangles pinned to each worker's session
snapshot.  ``--mix read-hot`` draws 90% of statements from a small shared
working set of repeated rectangles — the pattern the server's read-path
caches are built for; ``--no-cache`` spawns the server with those caches
disabled for baseline runs.

Two arrival disciplines:

* **closed loop** (default): send, wait, send again.  Latency is
  response time under a fixed concurrency — but a slow server slows the
  *offered* load too, hiding queueing delay (coordinated omission).
* **open loop** (``--arrivals poisson --rate R``): requests arrive on a
  Poisson schedule at ``R``/s regardless of how the server is doing, and
  each latency is measured **from the scheduled arrival instant**, so
  time spent queueing behind a slow server counts.  Arrivals the loop
  cannot issue within ``--drop-after`` seconds of their schedule are
  *dropped* and reported — the honest signal of an overloaded server.

The run reports throughput (QPS), latency percentiles (p50/p95/p99), and
(open loop) drop counts to stdout, and writes the raw numbers plus the
server's final metrics snapshot to ``BENCH_serve.json`` in the
consolidated bench-report envelope (see :mod:`repro.bench.report`).

``--slo-ms T --slo-target F`` adds SLO accounting: the run computes the
fraction of offered requests answered within ``T`` milliseconds
(``slo_attained`` — errors and dropped arrivals count as misses), the
error-budget **burn fraction** ``(1 - attained) / (1 - target)`` (1.0
means the run consumed exactly its budget; above 1.0 the SLO is blown),
and a pass/fail ``slo_met``.  ``python -m repro.analyze bench`` ranks
runs by these numbers.
"""

from __future__ import annotations

import argparse
import math
import random
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.client import Client, ServerReplyError

DEFAULT_OUT = Path("benchmarks") / "results" / "BENCH_serve.json"


def percentile(sorted_values: List[float], q: float) -> float:
    """The ``q``-quantile (0..1) of pre-sorted values, nearest-rank."""
    if not sorted_values:
        return float("nan")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def seed_population(host: str, port: int, keys: int, seed: int) -> int:
    """Insert ``keys`` tuples (deterministic values); returns last time."""
    rng = random.Random(seed)
    t = 1
    with Client(host, port) as client:
        for key in range(1, keys + 1):
            value = float(rng.randint(1, 100))
            client.execute(f"INSERT KEY {key} VALUE {value} AT {t}")
            if rng.random() < 0.3:
                t += 1
    return t


def hot_rectangles(key_space: int, count: int, seed: int
                   ) -> List[Tuple[str, int, int]]:
    """The deterministic ``(agg, lo, hi)`` working set of the read-hot mix.

    Every worker derives the same set from the run seed, so repeated
    rectangles repeat *across* workers too — the access pattern a result
    cache is built for.
    """
    rng = random.Random(seed)
    rectangles = []
    for _ in range(count):
        agg = rng.choice(("SUM(value)", "COUNT(*)", "AVG(value)"))
        lo = rng.randint(1, max(key_space - 1, 1))
        hi = rng.randint(lo + 1, key_space + 1)
        rectangles.append((agg, lo, hi))
    return rectangles


class _Worker(threading.Thread):
    """One load-driving client: latencies in ms, errors by code.

    Samples issued before ``measure_start`` are the warm-up phase: they
    drive the server exactly like measured load but are not recorded.

    ``arrivals`` selects the discipline.  ``closed`` sends the next
    statement the moment the previous reply lands.  ``poisson`` draws
    exponential inter-arrival gaps at ``rate``/s and measures each
    latency from the *scheduled* arrival instant — queueing delay behind
    a slow server is charged to the server, not silently absorbed into a
    slower send rate (no coordinated omission).  An arrival the loop is
    already more than ``drop_after`` seconds late for is counted in
    :attr:`dropped` instead of being sent.

    ``burst`` batches the Poisson schedule: each arrival *event* carries
    ``burst`` co-arriving statements (all scheduled, measured, and — when
    late — dropped at the event instant), while the event rate shrinks to
    ``rate / burst`` so the total offered request rate stays ``rate``.
    Bursty schedules are what make the server's shared-scan drain see
    multi-query batches instead of a smooth trickle.
    """

    def __init__(self, host: str, port: int, key_space: int,
                 deadline: float, seed: int, measure_start: float = 0.0,
                 mix: str = "uniform", run_seed: int = 0,
                 hot_count: int = 16, hot_fraction: float = 0.9,
                 arrivals: str = "closed", rate: float = 0.0,
                 drop_after: float = 1.0, burst: int = 1) -> None:
        super().__init__(daemon=True)
        self._host = host
        self._port = port
        self._keys = key_space
        self._deadline = deadline
        self._measure_start = measure_start
        self._rng = random.Random(seed)
        self._hot = (hot_rectangles(key_space, hot_count, run_seed)
                     if mix == "read-hot" else None)
        self._hot_fraction = hot_fraction
        self._arrivals = arrivals
        self._rate = rate
        self._drop_after = drop_after
        self._burst = max(1, burst)
        self.latencies_ms: List[float] = []
        #: Measured-window arrival events issued with all ``burst``
        #: statements sent (open loop; equals sent arrivals when burst=1).
        self.bursts = 0
        self.errors: Dict[str, int] = {}
        #: Measured-window arrivals the schedule generated (open loop) or
        #: statements attempted (closed loop).
        self.offered = 0
        #: Open-loop arrivals abandoned because the loop fell more than
        #: ``drop_after`` seconds behind schedule.
        self.dropped = 0
        #: Transparent client retries sent (SHARD_DOWN/SHARD_REDIRECT —
        #: cluster failover and topology changes absorbed by the client).
        self.retries = 0
        #: Retries that recovered: the statement succeeded on re-send,
        #: so the failover/split stayed invisible to this worker.
        self.retried_ok = 0

    def _statement(self) -> str:
        if self._hot is not None and self._rng.random() < self._hot_fraction:
            agg, lo, hi = self._rng.choice(self._hot)
        else:
            agg = self._rng.choice(("SUM(value)", "COUNT(*)", "AVG(value)"))
            lo = self._rng.randint(1, max(self._keys - 1, 1))
            hi = self._rng.randint(lo + 1, self._keys + 1)
        return f"SELECT {agg} WHERE key IN [{lo}, {hi})"

    def run(self) -> None:
        with Client(self._host, self._port) as client:
            client.repin()
            if self._arrivals == "poisson":
                self._run_open(client)
            else:
                self._run_closed(client)
            self.retries = client.retries_sent
            self.retried_ok = client.retries_recovered

    def _run_closed(self, client: Client) -> None:
        while True:
            now = time.perf_counter()
            if now >= self._deadline:
                break
            statement = self._statement()
            started = time.perf_counter()
            measured = started >= self._measure_start
            if measured:
                self.offered += 1
            try:
                client.execute(statement)
            except ServerReplyError as exc:
                if measured:
                    self.errors[exc.code] = \
                        self.errors.get(exc.code, 0) + 1
                continue
            if measured:
                self.latencies_ms.append(
                    (time.perf_counter() - started) * 1000.0)

    def _run_open(self, client: Client) -> None:
        # The schedule is anchored at this worker's start and never
        # consults the server: arrival k happens at start + sum of k
        # exponential gaps whether or not reply k-1 has landed.  With
        # burst > 1, events arrive at rate/burst and each carries burst
        # co-scheduled statements, so the offered request rate is still
        # self._rate.
        event_rate = self._rate / self._burst
        next_at = time.perf_counter()
        while True:
            next_at += self._rng.expovariate(event_rate)
            if next_at >= self._deadline:
                break
            measured = next_at >= self._measure_start
            if measured:
                self.offered += self._burst
            now = time.perf_counter()
            if now < next_at:
                time.sleep(next_at - now)
            elif now - next_at > self._drop_after:
                # The whole event is late: every statement it carries
                # shares the scheduled instant, so all of them drop.
                if measured:
                    self.dropped += self._burst
                continue
            if measured:
                self.bursts += 1
            for _ in range(self._burst):
                try:
                    client.execute(self._statement())
                except ServerReplyError as exc:
                    if measured:
                        self.errors[exc.code] = \
                            self.errors.get(exc.code, 0) + 1
                    continue
                if measured:
                    # From the *scheduled* arrival, not the send: waiting
                    # in this loop's virtual queue is part of the latency.
                    self.latencies_ms.append(
                        (time.perf_counter() - next_at) * 1000.0)


def slo_summary(latencies_ms: List[float], offered: int,
                slo_ms: float, target: float) -> Dict[str, Any]:
    """SLO attainment, burn fraction, and verdict for one run.

    ``attained`` is the fraction of *offered* requests answered within
    ``slo_ms`` — errors and dropped arrivals are misses, not exclusions.
    ``burn`` is the consumed share of the error budget:
    ``(1 - attained) / (1 - target)``; 1.0 means the budget is exactly
    spent, above 1.0 the SLO is blown.  A 100% target leaves no budget,
    so any miss burns infinitely.
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"SLO target must be in (0, 1], got {target}")
    within = sum(1 for value in latencies_ms if value <= slo_ms)
    attained = (within / offered) if offered else 1.0
    budget = 1.0 - target
    if budget > 0.0:
        burn = (1.0 - attained) / budget
    else:
        burn = 0.0 if attained >= 1.0 else float("inf")
    return {
        "slo_ms": slo_ms,
        "target": target,
        "attained": attained,
        "burn": burn,
        "met": attained >= target,
    }


def run_load(host: str, port: int, workers: int, duration: float,
             seed_keys: int, seed: int, warmup: float = 0.0,
             mix: str = "uniform", skip_seed: bool = False,
             arrivals: str = "closed", rate: float = 0.0,
             drop_after: float = 1.0, burst: int = 1,
             slo_ms: Optional[float] = None,
             slo_target: float = 0.99) -> Dict[str, Any]:
    """Seed, drive the load, and gather the report payload.

    ``warmup`` seconds of identical load run first and are excluded from
    every reported number (request counts, QPS, percentiles) — cold-start
    effects warm the server without polluting the benchmark.  ``mix``
    selects the rectangle distribution: ``uniform`` (fresh random
    rectangles) or ``read-hot`` (90% of statements drawn from a small
    shared working set of repeated rectangles).  ``skip_seed`` reuses an
    already-seeded population (cold-vs-warm comparisons on one server).

    ``arrivals="poisson"`` switches every worker from the closed loop to
    an open-loop Poisson schedule totalling ``rate`` requests/s across
    the pool (each worker draws at ``rate / workers``); latencies are
    then measured from scheduled arrival and arrivals missed by more
    than ``drop_after`` seconds are counted in ``totals["dropped"]``
    rather than sent.

    ``burst`` batches the Poisson schedule into arrival events of that
    many co-scheduled statements (event rate ``rate / burst``, offered
    request rate unchanged); ``totals["bursts"]`` counts the events
    actually sent.

    ``slo_ms`` (with ``slo_target``) adds an ``"slo"`` section to the
    report — see :func:`slo_summary`.
    """
    if arrivals not in ("closed", "poisson"):
        raise ValueError(f"unknown arrival discipline {arrivals!r}")
    if arrivals == "poisson" and rate <= 0:
        raise ValueError("open-loop arrivals need a positive --rate")
    if burst < 1:
        raise ValueError(f"--burst must be >= 1, got {burst}")
    if burst > 1 and arrivals != "poisson":
        raise ValueError("--burst needs --arrivals poisson")
    if not skip_seed:
        seed_population(host, port, seed_keys, seed)
    start = time.perf_counter()
    measure_start = start + warmup
    deadline = measure_start + duration
    pool = [
        _Worker(host, port, seed_keys, deadline, seed + 1000 + i,
                measure_start=measure_start, mix=mix, run_seed=seed,
                arrivals=arrivals, rate=rate / workers,
                drop_after=drop_after, burst=burst)
        for i in range(workers)
    ]
    for worker in pool:
        worker.start()
    for worker in pool:
        worker.join()
    elapsed = time.perf_counter() - measure_start

    latencies = sorted(
        value for worker in pool for value in worker.latencies_ms)
    errors: Dict[str, int] = {}
    for worker in pool:
        for code, count in worker.errors.items():
            errors[code] = errors.get(code, 0) + count
    with Client(host, port) as client:
        metrics = client.metrics()

    requests = len(latencies)
    offered = sum(worker.offered for worker in pool)
    dropped = sum(worker.dropped for worker in pool)
    report: Dict[str, Any] = {
        "config": {"host": host, "port": port, "workers": workers,
                   "duration_s": duration, "seed_keys": seed_keys,
                   "seed": seed, "warmup_s": warmup, "mix": mix,
                   "arrivals": arrivals, "rate": rate,
                   "drop_after_s": drop_after, "burst": burst},
        "totals": {
            "requests": requests,
            "offered": offered,
            "dropped": dropped,
            "bursts": sum(worker.bursts for worker in pool),
            "errors": errors,
            "retries": sum(worker.retries for worker in pool),
            "retried_ok": sum(worker.retried_ok for worker in pool),
            "elapsed_s": elapsed,
            "qps": requests / elapsed if elapsed > 0 else 0.0,
        },
        "latency_ms": {
            "p50": percentile(latencies, 0.50),
            "p95": percentile(latencies, 0.95),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / requests) if requests else
                    float("nan"),
            "max": latencies[-1] if latencies else float("nan"),
        },
        "server_metrics": metrics,
    }
    if slo_ms is not None:
        report["config"]["slo_ms"] = slo_ms
        report["config"]["slo_target"] = slo_target
        report["slo"] = slo_summary(latencies, offered, slo_ms,
                                    slo_target)
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: run the load, print and persist the report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Closed- and open-loop load generator for the TQL "
                    "server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7654)
    parser.add_argument("--workers", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="measured seconds of load (default 5)")
    parser.add_argument("--arrivals", choices=("closed", "poisson"),
                        default="closed",
                        help="closed: send-wait-send (default); poisson: "
                             "open-loop arrivals at --rate/s with latency "
                             "measured from the scheduled arrival")
    parser.add_argument("--rate", type=float, default=0.0,
                        help="total offered requests/s across all workers "
                             "(--arrivals poisson only)")
    parser.add_argument("--drop-after", type=float, default=1.0,
                        help="open loop: drop an arrival the loop is this "
                             "many seconds late for instead of sending it "
                             "(default 1.0)")
    parser.add_argument("--burst", type=int, default=1,
                        help="open loop: statements co-arriving per "
                             "Poisson event (events at --rate/B, offered "
                             "request rate unchanged; default 1)")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="seconds of identical load excluded from QPS "
                             "and latency percentiles (default 0)")
    parser.add_argument("--mix", choices=("uniform", "read-hot"),
                        default="uniform",
                        help="rectangle distribution: fresh random "
                             "(uniform) or 90%% repeated working set "
                             "(read-hot)")
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="latency SLO threshold in ms; enables SLO "
                             "accounting (attainment, burn fraction)")
    parser.add_argument("--slo-target", type=float, default=0.99,
                        help="fraction of offered requests that must "
                             "meet --slo-ms (default 0.99)")
    parser.add_argument("--seed-keys", type=int, default=200,
                        help="keys inserted before measuring (default 200)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    parser.add_argument("--spawn-server", action="store_true",
                        help="start an in-process server instead of "
                             "connecting to a running one")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count for --spawn-server (default 4)")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="disable the read-path caches on the spawned "
                             "server (--spawn-server only)")
    args = parser.parse_args(argv)

    handle = None
    host, port = args.host, args.port
    if args.spawn_server:
        from repro.serve.server import ServerConfig, serve_in_thread

        handle = serve_in_thread(ServerConfig(
            shards=args.shards, key_space=(1, args.seed_keys + 1),
            cache=args.cache))
        host, port = handle.host, handle.port
        print(f"spawned server on {host}:{port} "
              f"({args.shards} shards, cache "
              f"{'on' if args.cache else 'off'})")
    try:
        report = run_load(host, port, args.workers, args.duration,
                          args.seed_keys, args.seed, warmup=args.warmup,
                          mix=args.mix, arrivals=args.arrivals,
                          rate=args.rate, drop_after=args.drop_after,
                          burst=args.burst, slo_ms=args.slo_ms,
                          slo_target=args.slo_target)
    finally:
        if handle is not None:
            handle.stop()
    if args.spawn_server:
        report["config"]["shards"] = args.shards
        report["config"]["spawned"] = True
        report["config"]["cache"] = args.cache

    from repro.bench.envelope import _loadgen_metrics, write_report

    write_report(args.out, "serve", report["config"],
                 _loadgen_metrics(report), report)

    totals = report["totals"]
    latency = report["latency_ms"]
    loop_desc = ("closed loop" if args.arrivals == "closed"
                 else f"open loop, {args.rate:.0f}/s offered"
                 + (f" in bursts of {args.burst}" if args.burst > 1
                    else ""))
    print(f"{totals['requests']} requests in {totals['elapsed_s']:.2f}s "
          f"-> {totals['qps']:.0f} QPS "
          f"({args.workers} workers, {loop_desc})")
    print(f"latency ms: p50={latency['p50']:.2f} p95={latency['p95']:.2f} "
          f"p99={latency['p99']:.2f} max={latency['max']:.2f}")
    if args.arrivals == "poisson":
        offered = totals["offered"]
        dropped = totals["dropped"]
        share = (dropped / offered * 100.0) if offered else 0.0
        print(f"offered {offered}, dropped {dropped} ({share:.1f}%) "
              f"after {args.drop_after:.2f}s behind schedule")
        if args.burst > 1:
            print(f"burst events sent: {totals['bursts']} "
                  f"x {args.burst} statements")
    if totals["errors"]:
        print(f"errors: {totals['errors']}")
    if totals["retries"]:
        print(f"transparent retries: {totals['retries']} sent, "
              f"{totals['retried_ok']} recovered")
    slo = report.get("slo")
    if slo is not None:
        print(f"SLO {slo['slo_ms']:.1f}ms@{slo['target']:.4g}: "
              f"attained {slo['attained'] * 100.0:.2f}%, "
              f"budget burn {slo['burn']:.2f}x -> "
              f"{'MET' if slo['met'] else 'MISSED'}")
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
