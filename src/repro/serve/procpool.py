"""Process-per-shard execution: N worker processes, one warehouse each.

The thread backend (:class:`~repro.serve.sharded.ShardedWarehouse`) shares
one interpreter, so the GIL caps aggregate throughput at roughly one core
no matter how many shards exist.  This module escapes that: each shard's
:class:`~repro.core.warehouse.TemporalWarehouse` — trees, buffer pools,
file-backed storage, caches, and write epoch — is owned *outright* by one
worker process, and the parent routes statements over a pickle-light
request/response pipe.

What crosses the boundary (and what never does)
-----------------------------------------------
Requests are ``(rid, method, args)`` tuples; responses are ``(rid, ok,
payload, now)``.  Arguments are plain model dataclasses
(:class:`~repro.core.model.KeyRange`, :class:`~repro.core.model.Interval`),
numbers, and :class:`LoadEvent` rows.  :class:`~repro.core.aggregates.Aggregate`
descriptors carry lambdas, which do not pickle — the parent substitutes an
:class:`_AggRef` name token and the worker resolves it against the library
registry, so both sides always execute the *same* descriptor object.
Results are aggregates (floats), :class:`~repro.core.rta.RTAResult`,
:class:`~repro.core.warehouse.QueryPlan`, tuples, ingest reports, cache
snapshots — all plain dataclasses.  Tree pages, buffer pools, and
warehouses never cross; :meth:`TemporalWarehouse.__reduce__` enforces
that at the pickle layer.

Workers start via the ``spawn`` method (never ``fork``: the parent runs
an asyncio loop plus reader threads, and forking a threaded process is
undefined behavior).  A spawned worker imports the library fresh, builds
its warehouse from the :class:`ShardSpec`, and sends a hello carrying its
pid and clock before serving.

Shared-scan query batching
--------------------------
A worker is single-threaded, so requests queue in its pipe while it
executes.  Instead of answering one read per wakeup, the worker drains up
to ``scan_batch`` *consecutive read-only* requests and answers them in
one pass with a :class:`~repro.core.cache.PointMemo` attached: the
Theorem 1 reduction probes tree boundaries that repeat across overlapping
rectangles, so descents computed for the first query answer the rest from
memory.  Batching never reorders: requests execute in arrival order and a
write ends the batch (it arrived after every read in it).  With read-path
caching enabled the shard's persistent memo serves the same role; the
temporary memo is only attached when caching is off.

Failure semantics
-----------------
A worker death (crash, kill -9) surfaces as EOF on the pipe: the parent's
reader thread fails every pending request with a typed
:class:`~repro.errors.ShardDownError` (code ``SHARD_DOWN``), and later
statements routed to that shard fail fast with the same code.  Other
shards keep serving.  For durable deployments every acknowledged update
is in the shard's WAL, so :meth:`ProcessShardedWarehouse.respawn` recovers
the shard by replaying the log in a fresh worker.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import multiprocessing
import os
import pickle
import struct
import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.aggregates import AVG, Aggregate, COUNT, MAX, MIN, SUM
from repro.core.cache import CacheConfig
from repro.core.model import Interval, KeyRange, MAX_KEY
from repro.errors import ShardDownError, error_from_payload, error_payload
from repro.serve.sharded import (
    ShardRouter,
    _ShardedAggregates,
    load_or_freeze_layout,
    shard_dir_name,
)
from repro.serve.telemetry import current_context

#: Aggregate descriptors resolvable by name on the worker side.
_AGGREGATES: Dict[str, Aggregate] = {
    a.name: a for a in (SUM, COUNT, AVG, MIN, MAX)
}

#: Warehouse methods that never mutate — eligible for shared-scan batching.
_READ_METHODS = frozenset({
    "aggregate", "aggregate_all", "sum", "count", "avg", "min", "max",
    "snapshot", "tuples_in", "history", "explain", "cache_snapshot",
    "page_count", "check_invariants", "wal_seq", "aggregate_batch",
    "batch_snapshot",
})

#: Worker-level control methods (handled by the loop, not the warehouse).
_SHUTDOWN = "__shutdown__"
_STATS = "__stats__"
_EXPLAIN_TRACE = "__explain_trace__"
_TRACED = "__traced__"
_REGISTRY = "__registry__"

#: Memo capacity for the temporary shared-scan memo (caching off).
_BATCH_MEMO_ENTRIES = 4096


@dataclass(frozen=True)
class _AggRef:
    """Wire token for an :class:`Aggregate` (its lambdas do not pickle)."""

    name: str


# -- struct-framed hot-path requests --------------------------------------------------
#
# BENCH_multicore exposed the per-request pickle cost (0.51x on 1 core):
# every insert/delete/aggregate paid a full pickle of ``(rid, method,
# args)`` with its dataclass machinery.  The five hottest ops now ship as
# fixed-layout frames through **cached** :class:`struct.Struct` packers —
# one ``pack`` call, no pickle.  Frames are distinguished from pickle
# frames by their first byte: every pickle protocol-2+ stream starts with
# ``0x80``, so ``0x01`` unambiguously marks a struct frame and anything
# unpackable (odd types, out-of-range ints) silently falls back to the
# pickle path.  Responses stay pickled — results are heterogeneous.

_STRUCT_MAGIC = 0x01

#: name -> wire code for aggregate descriptors inside struct frames.
_AGG_CODES = {"SUM": 0, "COUNT": 1, "AVG": 2, "MIN": 3, "MAX": 4}
_AGG_BY_CODE = {code: _AGGREGATES[name] for name, code in _AGG_CODES.items()}

#: method -> (opcode, cached Struct).  Layout: magic B, opcode B, rid Q,
#: then the op's fields (q = signed 64-bit, d = float64, B = code byte).
_OP_STRUCTS: Dict[str, Tuple[int, struct.Struct]] = {
    "insert": (0, struct.Struct("!BBQqdq")),          # key, value, t
    "delete": (1, struct.Struct("!BBQqq")),           # key, t
    "aggregate": (2, struct.Struct("!BBQqqqqB")),     # kr, iv, agg code
    "aggregate_all": (3, struct.Struct("!BBQqqqq")),  # kr, iv
    "snapshot": (4, struct.Struct("!BBQqqq")),        # kr, t
}
_OP_BY_CODE = {code: (name, op_struct)
               for name, (code, op_struct) in _OP_STRUCTS.items()}


def _pack_request(rid: int, method: str, args: Tuple[Any, ...]
                  ) -> Optional[bytes]:
    """``(rid, method, args)`` as a struct frame, or ``None`` when the
    request does not fit a cached packer (caller falls back to pickle)."""
    entry = _OP_STRUCTS.get(method)
    if entry is None:
        return None
    opcode, op_struct = entry
    try:
        if method == "insert":
            key, value, t = args
            if (type(key) is not int or type(t) is not int
                    or not isinstance(value, (int, float))
                    or isinstance(value, bool)):
                return None
            return op_struct.pack(_STRUCT_MAGIC, opcode, rid, key,
                                  float(value), t)
        if method == "delete":
            key, t = args
            if type(key) is not int or type(t) is not int:
                return None
            return op_struct.pack(_STRUCT_MAGIC, opcode, rid, key, t)
        if method == "aggregate":
            key_range, interval, agg = args
            name = getattr(agg, "name", None)
            code = _AGG_CODES.get(name)
            if (code is None or type(key_range) is not KeyRange
                    or type(interval) is not Interval):
                return None
            return op_struct.pack(_STRUCT_MAGIC, opcode, rid,
                                  key_range.low, key_range.high,
                                  interval.start, interval.end, code)
        if method == "aggregate_all":
            key_range, interval = args
            if (type(key_range) is not KeyRange
                    or type(interval) is not Interval):
                return None
            return op_struct.pack(_STRUCT_MAGIC, opcode, rid,
                                  key_range.low, key_range.high,
                                  interval.start, interval.end)
        # method == "snapshot"
        key_range, t = args
        if type(key_range) is not KeyRange or type(t) is not int:
            return None
        return op_struct.pack(_STRUCT_MAGIC, opcode, rid,
                              key_range.low, key_range.high, t)
    except (ValueError, TypeError, struct.error):
        return None  # out-of-range ints, odd shapes: pickle handles them


def _unpack_request(data: bytes) -> Tuple[int, str, Tuple[Any, ...]]:
    """Decode one struct frame back into ``(rid, method, args)``."""
    name, op_struct = _OP_BY_CODE[data[1]]
    fields = op_struct.unpack(data)
    rid = fields[2]
    if name == "insert":
        return rid, name, (fields[3], fields[4], fields[5])
    if name == "delete":
        return rid, name, (fields[3], fields[4])
    if name == "aggregate":
        return rid, name, (KeyRange(fields[3], fields[4]),
                           Interval(fields[5], fields[6]),
                           _AGG_BY_CODE[fields[7]])
    if name == "aggregate_all":
        return rid, name, (KeyRange(fields[3], fields[4]),
                           Interval(fields[5], fields[6]))
    # name == "snapshot"
    return rid, name, (KeyRange(fields[3], fields[4]), fields[5])


def _recv_request(conn) -> Tuple[int, str, Tuple[Any, ...]]:
    """Receive one request, struct- or pickle-framed.

    Reads raw bytes and dispatches on the first byte: ``0x01`` is a
    struct frame, anything else (pickle streams start ``0x80``) decodes
    exactly as :meth:`multiprocessing.connection.Connection.recv` would.
    Shared by the primary worker loop and the replica loop.
    """
    data = conn.recv_bytes()
    if data and data[0] == _STRUCT_MAGIC:
        return _unpack_request(data)
    return pickle.loads(data)


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to (re)build its shard's warehouse.

    Pickled into the spawn handshake; contains only plain values, so a
    spec also fully describes how to *respawn* a shard after a crash.
    """

    index: int
    key_space: Tuple[int, int]
    page_capacity: int = 32
    buffer_pages: int = 64
    strong_factor: float = 0.9
    start_time: int = 1
    buffer_policy: str = "lru"
    durable_dir: Optional[str] = None
    fsync: bool = False
    cache_config: Optional[CacheConfig] = None
    scan_batch: int = 8


def _build_warehouse(spec: ShardSpec):
    """Construct (or recover) the shard warehouse described by ``spec``."""
    from repro.core.warehouse import TemporalWarehouse

    if spec.durable_dir is not None:
        warehouse = TemporalWarehouse.open_durable(
            spec.durable_dir, buffer_pages=spec.buffer_pages,
            fsync=spec.fsync, key_space=spec.key_space,
            page_capacity=spec.page_capacity,
            strong_factor=spec.strong_factor,
            start_time=spec.start_time,
            buffer_policy=spec.buffer_policy)
    else:
        warehouse = TemporalWarehouse(
            key_space=spec.key_space, page_capacity=spec.page_capacity,
            buffer_pages=spec.buffer_pages,
            strong_factor=spec.strong_factor,
            start_time=spec.start_time,
            buffer_policy=spec.buffer_policy)
    if spec.cache_config is not None:
        # The worker is single-threaded: no lock overhead on cache paths.
        warehouse.enable_cache(spec.cache_config, thread_safe=False)
    return warehouse


def _resolve_args(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Swap :class:`_AggRef` tokens back for real descriptors."""
    return tuple(
        _AGGREGATES[a.name] if isinstance(a, _AggRef) else a for a in args
    )


def _resolve_method_args(method: str,
                         args: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """:func:`_resolve_args` plus the nested tokens of a batch request.

    ``aggregate_batch`` ships its queries as one list argument whose
    triples carry :class:`_AggRef` tokens (or ``None`` for
    ``aggregate_all`` slots) — those never surface to the top-level
    resolver, so they are swapped here.
    """
    args = _resolve_args(args)
    if method == "aggregate_batch" and args:
        queries = [
            (kr, iv, _AGGREGATES[a.name] if isinstance(a, _AggRef) else a)
            for kr, iv, a in args[0]
        ]
        args = (queries,) + args[1:]
    return args


def rate_since(state: Dict[Any, Tuple[float, int]], key: Any,
               counter: int, now: float) -> float:
    """Requests/second since the last observation of ``key``.

    ``state`` maps key -> (monotonic time, counter) of the previous call
    and is updated in place; the first observation (and a counter reset,
    e.g. after a respawn) reports ``0.0``.  Shared by the procpool stats
    scrape and the cluster split planner.
    """
    prev = state.get(key)
    state[key] = (now, counter)
    if prev is None:
        return 0.0
    elapsed = now - prev[0]
    delta = counter - prev[1]
    if elapsed <= 0.0 or delta < 0:
        return 0.0
    return round(delta / elapsed, 3)


def _worker_main(conn, spec: ShardSpec) -> None:
    """The worker process entry point (must be importable for spawn).

    Protocol: send one hello — ``("hello", pid, now)`` on success or
    ``("fail", payload)`` if the warehouse cannot be built — then serve
    ``(rid, method, args)`` requests until EOF or ``__shutdown__``.
    """
    try:
        warehouse = _build_warehouse(spec)
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        try:
            conn.send(("fail", error_payload(exc)))
        finally:
            conn.close()
        return
    conn.send(("hello", os.getpid(), warehouse.now))
    stats = {
        "requests": 0, "reads": 0, "writes": 0, "errors": 0,
        "shared_batches": 0, "batched_reads": 0, "load_bytes": 0,
        "batch_sweeps": 0, "batch_queries": 0,
    }
    memoized = spec.cache_config is not None and spec.cache_config.memo_entries > 0
    pending: deque = deque()
    running = True
    while running:
        if not pending:
            try:
                pending.append(_recv_request(conn))
            except (EOFError, OSError):
                break
        rid, method, args = pending.popleft()
        if method == _SHUTDOWN:
            warehouse.close()
            _respond(conn, rid, True, "closed", warehouse.now)
            running = False
            continue
        if _batchable_read(method, args) and spec.scan_batch > 1:
            batch = [(rid, method, args)]
            # Drain whatever reads are already queued behind this one;
            # stop at the first write (it must run after them) or when
            # the pipe is momentarily empty.
            while len(batch) < spec.scan_batch and not pending \
                    and conn.poll(0):
                try:
                    nxt = _recv_request(conn)
                except (EOFError, OSError):
                    running = False
                    break
                if _batchable_read(nxt[1], nxt[2]):
                    batch.append(nxt)
                else:
                    pending.append(nxt)
                    break
            _serve_read_batch(conn, warehouse, batch, stats, memoized,
                              spec.index)
            continue
        stats["requests"] += 1
        if method == _STATS:
            payload = dict(stats, pid=os.getpid(), now=warehouse.now,
                           shard=spec.index, wal_seq=warehouse.wal_seq())
            _respond(conn, rid, True, payload, warehouse.now)
            continue
        if method == _EXPLAIN_TRACE:
            _serve_explain_trace(conn, warehouse, rid, args, stats)
            continue
        if method == _TRACED:
            _serve_traced(conn, warehouse, rid, args, stats, spec.index)
            continue
        if method == _REGISTRY:
            _serve_registry(conn, warehouse, rid, stats)
            continue
        stats["writes"] += 1
        if method == "load_events_packed" and args:
            # Bytes-on-pipe for the packed LOAD fan-out (one columnar
            # blob per shard; surfaces as a repro_procpool_* gauge).
            stats["load_bytes"] += len(args[0])
        _serve_one(conn, warehouse, rid, method, args, stats)
        if method == "enable_cache":
            config = args[0] if args else None
            memoized = bool(config and config.memo_entries)
        elif method == "disable_cache":
            memoized = False
    conn.close()


def _batchable_read(method: str, args) -> bool:
    """Can this request join a shared-scan read batch?

    Plain reads always can.  A light-traced read (``_TRACED`` wrapping a
    read method, no ``detail``) can too: batch entries execute
    sequentially, so its watch-only I/O deltas stay exact.  Deep-traced
    reads attach pool tracers and run alone — a sampled request must
    not fragment everyone else's batches, but an explicit ``"trace":
    true`` asked for full instrumentation.
    """
    if method in _READ_METHODS:
        return True
    return (method == _TRACED and args[0] in _READ_METHODS
            and not args[2].get("detail"))


#: ``sum``/``count``/… wrapper methods answerable by the batch sweep.
_AGG_WRAPPERS = {name.lower(): agg for name, agg in _AGGREGATES.items()}


def _as_batch_query(method: str, args) -> Optional[Tuple]:
    """The ``(key_range, interval, aggregate)`` sweep query of one
    request, or ``None`` when it is not aggregate-shaped.

    ``aggregate_all`` maps to aggregate ``None`` — the
    :class:`~repro.core.rta.RTAResult` slot of the batch kernel.  Odd
    shapes (wrong arity, unknown descriptor) fall back to individual
    execution rather than failing classification.
    """
    if method == "aggregate" and len(args) == 3:
        key_range, interval, agg = args
        if isinstance(agg, _AggRef):
            agg = _AGGREGATES.get(agg.name)
        if isinstance(agg, Aggregate) and type(key_range) is KeyRange \
                and type(interval) is Interval:
            return key_range, interval, agg
        return None
    if method == "aggregate_all" and len(args) == 2:
        key_range, interval = args
        if type(key_range) is KeyRange and type(interval) is Interval:
            return key_range, interval, None
        return None
    agg = _AGG_WRAPPERS.get(method)
    if agg is not None and len(args) == 2:
        key_range, interval = args
        if type(key_range) is KeyRange and type(interval) is Interval:
            return key_range, interval, agg
    return None


def _serve_read_batch(conn, warehouse, batch, stats, memoized: bool,
                      shard: int) -> None:
    """Answer a run of read requests in one shared pass.

    Aggregate-shaped reads (``aggregate``, the ``sum``/…/``max``
    wrappers, ``aggregate_all``) are peeled off and answered by a single
    :meth:`~repro.core.warehouse.TemporalWarehouse.aggregate_batch`
    sweep — one frontier-ordered MVSBT traversal for the whole run, each
    page fetched and decoded once; a failing query fails only its own
    response.  Everything else (snapshots, histories, light-traced
    reads) executes individually, and every response still ships in
    arrival order.

    With no persistent memo attached (caching off), a temporary
    :class:`~repro.core.cache.PointMemo` is installed for the batch: the
    sweep prefills it with every boundary value it computed, so
    non-sweep stragglers reuse those descents; it is detached at the
    end, leaving the uncached single-request path byte-identical to
    before.
    """
    shared = len(batch) > 1
    temp_memo = shared and not memoized
    if temp_memo:
        warehouse.aggregates.enable_memo(_BATCH_MEMO_ENTRIES,
                                         thread_safe=False)
    try:
        answers: Dict[int, Any] = {}
        if shared:
            positions: List[int] = []
            queries: List[Tuple] = []
            for pos, (_rid, method, args) in enumerate(batch):
                query = _as_batch_query(method, args)
                if query is not None:
                    positions.append(pos)
                    queries.append(query)
            if len(queries) > 1:
                try:
                    results = warehouse.aggregate_batch(queries)
                except Exception:
                    answers = {}  # degrade to per-request execution
                else:
                    answers = dict(zip(positions, results))
                    stats["batch_sweeps"] += 1
                    stats["batch_queries"] += len(queries)
        for pos, (rid, method, args) in enumerate(batch):
            if method == _TRACED:
                # Light-traced read riding the batch: does its own
                # request/read accounting and span bookkeeping.
                _serve_traced(conn, warehouse, rid, args, stats, shard)
                continue
            stats["requests"] += 1
            stats["reads"] += 1
            if pos in answers:
                result = answers[pos]
                if isinstance(result, BaseException):
                    stats["errors"] += 1
                    _respond(conn, rid, False, error_payload(result),
                             warehouse.now)
                else:
                    _respond(conn, rid, True, result, warehouse.now)
                continue
            _serve_one(conn, warehouse, rid, method, args, stats)
    finally:
        if temp_memo:
            warehouse.aggregates.disable_memo()
    if shared:
        stats["shared_batches"] += 1
        stats["batched_reads"] += len(batch) - 1


def _serve_one(conn, warehouse, rid, method: str, args, stats) -> None:
    """Execute one warehouse method and ship the result (or the error)."""
    try:
        if method.startswith("_"):
            raise AttributeError(f"method {method!r} is not exposed")
        result = getattr(warehouse, method)(*_resolve_method_args(method,
                                                                  args))
    except BaseException as exc:  # noqa: BLE001 — boundary: all -> payload
        stats["errors"] += 1
        _respond(conn, rid, False, error_payload(exc), warehouse.now)
        return
    _respond(conn, rid, True, result, warehouse.now)


def _serve_explain_trace(conn, warehouse, rid, args, stats) -> None:
    """EXPLAIN with span shipping: trace the query in the worker and ship
    the span tree as plain JSONL-shape records (never Span objects)."""
    from repro.obs.explain import explain_query
    from repro.obs.tracefile import span_to_record

    try:
        key_range, interval, agg = _resolve_args(args)
        report = explain_query(warehouse, key_range, interval, agg)
        payload = {"plan": report.plan, "result": report.result,
                   "record": span_to_record(report.root),
                   "cache": report.cache}
    except BaseException as exc:  # noqa: BLE001 — boundary: all -> payload
        stats["errors"] += 1
        _respond(conn, rid, False, error_payload(exc), warehouse.now)
        return
    stats["reads"] += 1
    _respond(conn, rid, True, payload, warehouse.now)


#: Cached ``discover_pools`` result for this worker's warehouse — the
#: worker owns exactly one warehouse for its whole life, so the light
#: tracing path (every sampled request) need not re-walk it.
_POOL_CACHE: "Optional[list]" = None


def _worker_pools(warehouse) -> "list":
    global _POOL_CACHE
    if _POOL_CACHE is None:
        from repro.obs.attach import discover_pools

        _POOL_CACHE = discover_pools(warehouse)
    return _POOL_CACHE


def _serve_traced(conn, warehouse, rid, args, stats, shard: int) -> None:
    """Execute one warehouse method under a fresh tracer and ship both
    the result and the worker-side span tree.

    This is the distributed-tracing leg of a sampled request: the parent
    forwards ``(method, args, trace_ctx)`` where ``trace_ctx`` carries
    the router span's ``trace_id``/``parent_span_id``; the worker roots a
    ``worker.<method>`` span carrying that lineage plus its own fresh
    span ID.  Two depths:

    * **light** (the default — probabilistically sampled requests): raw
      ``IOStats`` counter deltas and CPU time read around the call — no
      tracer, no span objects — so the single worker record still
      carries exact physical/logical I/O and CPU, at the cost of two
      counter snapshots.  Sampling at production rates must not tax the
      requests it measures.
    * **deep** (``trace_ctx["detail"]`` — the per-request ``"trace":
      true`` override): the full :func:`~repro.obs.attach.traced`
      attachment; every tree descent, buffer probe, and disk read nests
      beneath the worker span.

    Attaching a tracer here is safe precisely because the worker is
    single-threaded — nothing else can race the span stack.  Responds
    ``(result, record)``.
    """
    import time

    from repro.serve.telemetry import new_span_id

    inner_method, inner_args, trace_ctx = args
    stats["requests"] += 1
    read = inner_method in _READ_METHODS
    stats["reads" if read else "writes"] += 1
    try:
        if inner_method.startswith("_"):
            raise AttributeError(f"method {inner_method!r} is not exposed")
        fn = getattr(warehouse, inner_method)
        lineage = dict(trace_id=trace_ctx.get("trace_id"),
                       parent_span_id=trace_ctx.get("parent_span_id"),
                       span_id=new_span_id(), shard=shard, pid=os.getpid())
        if trace_ctx.get("detail"):
            from repro.obs.attach import traced
            from repro.obs.tracefile import span_to_record

            with traced(warehouse) as tracer:
                with tracer.span(f"worker.{inner_method}", **lineage):
                    result = fn(*_resolve_method_args(inner_method,
                                                      inner_args))
            record = span_to_record(tracer.last_root)
        else:
            pools = _worker_pools(warehouse)
            before = [(p.stats.reads, p.stats.writes, p.stats.logical_reads)
                      for _, p in pools]
            cpu_started = time.process_time()
            result = fn(*_resolve_method_args(inner_method, inner_args))
            cpu_s = time.process_time() - cpu_started
            reads = writes = logical = 0
            for (r0, w0, l0), (_, pool) in zip(before, pools):
                stats_now = pool.stats
                reads += stats_now.reads - r0
                writes += stats_now.writes - w0
                logical += stats_now.logical_reads - l0
            record = {"name": f"worker.{inner_method}", "attrs": lineage,
                      "reads": reads, "writes": writes,
                      "logical_reads": logical, "cpu_s": cpu_s}
    except BaseException as exc:  # noqa: BLE001 — boundary: all -> payload
        stats["errors"] += 1
        _respond(conn, rid, False, error_payload(exc), warehouse.now)
        return
    _respond(conn, rid, True, (result, record), warehouse.now)


def _serve_registry(conn, warehouse, rid, stats) -> None:
    """Snapshot the worker's warehouse into a metrics registry and ship
    it as JSON — pool IOStats, tree counters, and cache counters — so the
    parent's ``/metrics`` exposition can aggregate per-worker registries
    without any shared memory."""
    from repro.obs.metrics import MetricsRegistry, snapshot_into

    stats["requests"] += 1
    try:
        registry = MetricsRegistry()
        snapshot_into(registry, warehouse)
        payload = registry.to_json()
    except BaseException as exc:  # noqa: BLE001 — boundary: all -> payload
        stats["errors"] += 1
        _respond(conn, rid, False, error_payload(exc), warehouse.now)
        return
    _respond(conn, rid, True, payload, warehouse.now)


def _respond(conn, rid, ok: bool, payload, now: int) -> None:
    try:
        conn.send((rid, ok, payload, now))
    except (OSError, BrokenPipeError):
        pass  # parent went away; the loop will see EOF next


class ShardClient:
    """The parent-side handle of one worker process.

    Owns the pipe, a reader thread matching responses to futures, and the
    liveness state.  Thread-safe: any number of parent threads may issue
    :meth:`call`/:meth:`call_async` concurrently (sends are serialized,
    responses are matched by request id).
    """

    def __init__(self, spec, ctx, main=None,
                 name: Optional[str] = None) -> None:
        # ``main`` selects the worker entry point: the default primary
        # loop, or e.g. the WAL-shipping replica loop from
        # :mod:`repro.serve.replica`.  Any spec with an ``index`` works.
        self.spec = spec
        self._conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=main or _worker_main, args=(child, spec),
            name=name or f"repro-shard-{spec.index:02d}", daemon=True)
        self.process.start()
        # Close the parent's copy of the child end: the worker's death
        # must deliver EOF to the reader thread, not a silent hang.
        child.close()
        self._send_lock = threading.Lock()
        self._pending: Dict[int, concurrent.futures.Future] = {}
        self._pending_lock = threading.Lock()
        self._rid = itertools.count(1)
        #: Requests shipped as struct frames instead of pickles (the
        #: packer hit rate — surfaced per shard in ``workers`` output).
        self.packed_requests = 0
        self._dead = False
        self.pid: Optional[int] = None
        self.last_now = 0
        self._reader: Optional[threading.Thread] = None

    def wait_ready(self, timeout: float = 60.0) -> None:
        """Block until the worker's hello arrives (warehouse built)."""
        try:
            if not self._conn.poll(timeout):
                raise TimeoutError(f"no hello within {timeout}s")
            hello = self._conn.recv()
        except (EOFError, OSError, TimeoutError) as exc:
            self._dead = True
            raise ShardDownError(
                f"shard {self.spec.index} worker failed to start: {exc}"
            ) from None
        if hello[0] != "hello":
            self._dead = True
            raise error_from_payload(hello[1])
        _tag, self.pid, self.last_now = hello
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"repro-shard-{self.spec.index:02d}-reader")
        self._reader.start()

    # -- response plumbing -------------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                rid, ok, payload, now = self._conn.recv()
            except (EOFError, OSError):
                break
            if now > self.last_now:
                self.last_now = now
            with self._pending_lock:
                future = self._pending.pop(rid, None)
            if future is None:
                continue
            if ok:
                future.set_result(payload)
            else:
                future.set_exception(error_from_payload(payload))
        self._mark_dead()

    def _down_error(self) -> ShardDownError:
        return ShardDownError(
            f"shard {self.spec.index} worker (pid {self.pid}) is down; "
            "respawn to recover via WAL replay")

    def _mark_dead(self) -> None:
        self._dead = True
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(self._down_error())

    @property
    def dead(self) -> bool:
        """True once the worker exited (detected via pipe EOF)."""
        return self._dead or not self.process.is_alive()

    @property
    def queue_depth(self) -> int:
        """Requests sent but not yet answered (the worker's backlog).

        The worker is single-threaded, so this is exactly the number of
        requests queued in its pipe plus the one executing — the split
        planner's hot-shard signal and the
        ``repro_procpool_shard_queue_depth`` gauge.
        """
        with self._pending_lock:
            return len(self._pending)

    # -- request API -------------------------------------------------------------------

    def call_async(self, method: str,
                   *args: Any) -> "concurrent.futures.Future":
        """Send one request; the future resolves to the worker's answer
        (or raises its typed error, or :class:`ShardDownError`)."""
        if self._dead:
            raise self._down_error()
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._send_lock:
            rid = next(self._rid)
            with self._pending_lock:
                self._pending[rid] = future
            try:
                frame = _pack_request(rid, method, args)
                if frame is not None:
                    self._conn.send_bytes(frame)
                    self.packed_requests += 1
                else:
                    self._conn.send((rid, method, args))
            except (OSError, BrokenPipeError, ValueError):
                with self._pending_lock:
                    self._pending.pop(rid, None)
                self._mark_dead()
                raise self._down_error() from None
        return future

    def call(self, method: str, *args: Any,
             timeout: Optional[float] = None) -> Any:
        """Send one request and wait for its answer."""
        return self.call_async(method, *args).result(timeout)

    # -- lifecycle ---------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the worker to close its warehouse and exit (best effort)."""
        try:
            self.call_async(_SHUTDOWN)
        except ShardDownError:
            pass

    def reap(self, timeout: float = 30.0) -> None:
        """Join the worker, escalating to terminate if it lingers."""
        self.process.join(timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(5.0)
        self._mark_dead()
        try:
            self._conn.close()
        except OSError:
            pass

    def shutdown(self, timeout: float = 30.0) -> None:
        """Graceful stop: request shutdown, then reap."""
        self.request_shutdown()
        self.reap(timeout)


class ProcessShardedWarehouse(ShardRouter):
    """The process-per-shard backend: same API, N cores.

    Routing, scatter-gather arithmetic, and bulk-load partitioning come
    from :class:`~repro.serve.sharded.ShardRouter` — identical code to the
    thread backend, which is what makes answers byte-identical between
    ``--executor thread`` and ``--executor process``.  Only the two hooks
    differ: both become RPCs to the owning worker.

    No parent-side shard locks exist (or are needed): each worker is
    single-threaded, its pipe is FIFO, and a client that awaits its write
    acknowledgements before reading observes its own writes.  ``AS OF``
    reads at or before a shard's clock touch only closed versions, so
    cross-client interleavings keep snapshot semantics.

    Parameters mirror :class:`~repro.serve.sharded.ShardedWarehouse`, plus
    ``durable_dir`` (per-shard WAL + checkpoints under
    ``<dir>/shard-NN``, layout frozen in the same ``layout.json`` — a
    directory created by one backend reopens under the other),
    ``cache_config`` (workers attach their own read-path caches; parent
    processes hold no cache state), and ``scan_batch`` (shared-scan batch
    ceiling per worker; 1 disables batching).
    """

    def __init__(self, shards: int = 4,
                 key_space: Tuple[int, int] = (1, MAX_KEY + 1),
                 page_capacity: int = 32, buffer_pages: int = 64,
                 strong_factor: float = 0.9, start_time: int = 1,
                 buffer_policy: str = "lru",
                 durable_dir: Optional[str] = None,
                 fsync: bool = False,
                 cache_config: Optional[CacheConfig] = None,
                 scan_batch: int = 8,
                 start_timeout: float = 60.0) -> None:
        if durable_dir is not None:
            key_space, boundaries = load_or_freeze_layout(
                durable_dir, shards, key_space)
        else:
            boundaries = self._split(key_space, shards)
        self.key_space = key_space
        self.boundaries = boundaries
        self.aggregates = _ShardedAggregates(self)
        self._specs = [
            ShardSpec(
                index=i, key_space=(lo, hi), page_capacity=page_capacity,
                buffer_pages=buffer_pages, strong_factor=strong_factor,
                start_time=start_time, buffer_policy=buffer_policy,
                durable_dir=(os.path.join(durable_dir, shard_dir_name(i))
                             if durable_dir else None),
                fsync=fsync, cache_config=cache_config,
                scan_batch=scan_batch)
            for i, (lo, hi) in enumerate(zip(boundaries, boundaries[1:]))
        ]
        self._ctx = multiprocessing.get_context("spawn")
        self._durable_dir = durable_dir
        self._closed = False
        # Per-shard (monotonic time, requests) of the previous stats
        # scrape, for the qps rate reported by :meth:`worker_stats`.
        self._rate_state: Dict[int, Tuple[float, int]] = {}
        # Start every worker first, then collect hellos: spawn imports
        # overlap across cores instead of serializing.
        self._clients = [ShardClient(spec, self._ctx)
                         for spec in self._specs]
        try:
            for client in self._clients:
                client.wait_ready(start_timeout)
        except Exception:
            self.close()
            raise

    # -- backend hooks -----------------------------------------------------------------

    @staticmethod
    def _wire(args: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            _AggRef(a.name) if isinstance(a, Aggregate) else a for a in args
        )

    def _shard_query(self, index: int, method: str, *args: Any) -> Any:
        return self._shard_call(index, method, args)

    def _shard_write(self, index: int, method: str, *args: Any) -> Any:
        # The worker is single-threaded and its pipe is FIFO — exclusive
        # access is structural, no parent-side lock required.
        return self._shard_call(index, method, args)

    def _shard_query_batch(self, index: int, requests: List[Tuple]
                           ) -> List[Any]:
        """One shard's sub-batch as a single ``aggregate_batch`` RPC.

        Descriptors are tokenized per triple (their lambdas never cross
        the pipe); ``None`` aggregates (the ``aggregate_all`` slots of an
        AVG gather) pass through as-is.  Per-query failures come back as
        exception instances in-band, exactly like the thread backend.
        """
        wired = [
            (key_range, interval,
             _AggRef(agg.name) if isinstance(agg, Aggregate) else agg)
            for key_range, interval, agg in requests
        ]
        return self._shard_call(index, "aggregate_batch", (wired,))

    def _shard_call(self, index: int, method: str,
                    args: Tuple[Any, ...]) -> Any:
        """One worker RPC, telemetry-aware.

        With no request context installed this is the plain pickle-light
        call.  Under an active context the RPC's wall time is attributed
        to the shard; when the request is *sampled* the call is upgraded
        to the ``__traced__`` verb — the worker executes the method under
        a tracer rooted in the request's trace ID and ships the span tree
        back alongside the result (see :func:`_serve_traced`).
        """
        ctx = current_context()
        if ctx is None:
            return self._clients[index].call(method, *self._wire(args))
        import time
        started = time.perf_counter()
        try:
            if ctx.sampled:
                result, record = self._clients[index].call(
                    _TRACED, method, self._wire(args), ctx.trace_context())
                ctx.add_record(record)
                return result
            return self._clients[index].call(method, *self._wire(args))
        finally:
            ctx.note_shard(index, time.perf_counter() - started)

    @property
    def now(self) -> int:
        """The most recent time any shard has seen (from response clocks:
        every worker reply carries its warehouse's ``now``)."""
        return max(client.last_now for client in self._clients)

    # -- parallel fan-out --------------------------------------------------------------

    def _load_shards(self, partitions, batch_size: int, mode: str):
        """Drive every shard's :class:`~repro.core.ingest.BatchLoader`
        concurrently — each partition loads in its own process.

        Each partition crosses the pipe as one
        :func:`~repro.storage.serialization.pack_events` columnar blob
        (four packed arrays) instead of a list of pickled per-event
        tuples; the worker counts the bytes-on-pipe in its ``load_bytes``
        stat and unpacks straight into its loader.
        """
        from repro.storage.serialization import pack_events

        futures = [
            self._clients[index].call_async("load_events_packed",
                                            pack_events(events),
                                            batch_size, mode)
            for index, events in partitions
        ]
        return [future.result() for future in futures]

    def checkpoint(self) -> None:
        """Checkpoint every live shard concurrently.

        Dead shards are skipped rather than failing the drain: their WALs
        already hold every acknowledged update, so respawn recovery covers
        them.
        """
        futures = []
        for client in self._clients:
            try:
                futures.append(client.call_async("checkpoint"))
            except ShardDownError:
                continue
        for future in futures:
            try:
                future.result()
            except ShardDownError:
                continue

    # -- read-path caching -------------------------------------------------------------

    def enable_cache(self, config: Optional[CacheConfig] = None) -> None:
        """Attach read-path caches inside every worker (single-threaded,
        so the lock-free cache variants)."""
        config = config or CacheConfig()
        for client in self._clients:
            client.call("enable_cache", config, False)

    def disable_cache(self) -> None:
        """Detach every worker's read-path caches."""
        for client in self._clients:
            client.call("disable_cache")

    # -- observability -----------------------------------------------------------------

    def worker_stats(self) -> List[Dict[str, Any]]:
        """One row per shard: worker counters, pid, clock, liveness.

        Live rows also carry ``queue_depth`` (requests in flight to that
        worker right now) and ``qps`` — the request rate since the
        previous :meth:`worker_stats` scrape (``0.0`` on the first one).
        Dead workers report ``{"shard": i, "alive": False}`` instead of
        raising, so metrics stay exportable mid-outage.
        """
        import time

        rows: List[Dict[str, Any]] = []
        futures: List[Tuple[int, Any]] = []
        for index, client in enumerate(self._clients):
            try:
                futures.append((index, client.call_async(_STATS)))
            except ShardDownError:
                futures.append((index, None))
        for index, future in futures:
            if future is None:
                rows.append({"shard": index, "alive": False})
                continue
            try:
                row = future.result(10.0)
            except (ShardDownError, concurrent.futures.TimeoutError):
                rows.append({"shard": index, "alive": False})
                continue
            scraped = time.monotonic()
            qps = rate_since(self._rate_state, index, row["requests"],
                             scraped)
            client = self._clients[index]
            rows.append(dict(row, alive=True, qps=qps,
                             queue_depth=client.queue_depth,
                             packed_requests=client.packed_requests))
        return rows

    def worker_registries(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Each live worker's metrics registry snapshot, as JSON.

        Workers run :func:`repro.obs.metrics.snapshot_into` over their
        own warehouse (pool IOStats, tree counters, cache counters) and
        ship the registry's ``to_json()`` form; rows are ``(shard,
        payload)``.  Dead or unresponsive workers are skipped — a scrape
        must survive a mid-outage shard.
        """
        futures: List[Tuple[int, Any]] = []
        for index, client in enumerate(self._clients):
            try:
                futures.append((index, client.call_async(_REGISTRY)))
            except ShardDownError:
                continue
        rows: List[Tuple[int, Dict[str, Any]]] = []
        for index, future in futures:
            try:
                rows.append((index, future.result(10.0)))
            except (ShardDownError, concurrent.futures.TimeoutError):
                continue
        return rows

    def explain_trace(self, key_range: KeyRange, interval: Interval,
                      aggregate: Aggregate = SUM) -> List[Dict[str, Any]]:
        """Per-shard EXPLAIN with shipped span trees.

        Each intersecting worker traces the query locally and ships the
        span tree as schema-valid JSONL records (see
        :func:`repro.obs.tracefile.span_to_record`); the parent never
        receives live :class:`~repro.obs.tracer.Span` objects.  Rows carry
        ``shard``, ``key_range``, ``plan``, ``result``, ``record``.
        """
        rows = []
        for index, part in self.parts_for(key_range):
            payload = self._clients[index].call(
                _EXPLAIN_TRACE, part, interval, _AggRef(aggregate.name))
            rows.append(dict(payload, shard=index, key_range=part))
        return rows

    # -- worker lifecycle --------------------------------------------------------------

    def shard_pid(self, index: int) -> Optional[int]:
        """The worker pid owning shard ``index`` (for ops and tests)."""
        return self._clients[index].pid

    def shard_alive(self, index: int) -> bool:
        """Whether shard ``index``'s worker is currently serving."""
        return not self._clients[index].dead

    def respawn(self, index: int, start_timeout: float = 60.0) -> int:
        """Replace shard ``index``'s worker with a fresh process.

        Durable shards recover their state via checkpoint + WAL replay in
        :meth:`TemporalWarehouse.open_durable` — every update acknowledged
        before the crash was logged first, so nothing acknowledged is
        lost.  In-memory shards come back empty (there is nothing to
        replay from).  Returns the new worker's pid.
        """
        old = self._clients[index]
        old.request_shutdown()
        old.reap(timeout=5.0)
        client = ShardClient(self._specs[index], self._ctx)
        client.wait_ready(start_timeout)
        self._clients[index] = client
        return client.pid  # type: ignore[return-value]

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Stop every worker: request shutdown in parallel, then reap.

        Idempotent.  Workers close their warehouses (releasing WAL
        handles) before exiting; stragglers are terminated.
        """
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            client.request_shutdown()
        for client in self._clients:
            client.reap()
