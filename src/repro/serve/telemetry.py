"""Per-request telemetry plumbing for the serving stack.

The server's observability plane (request IDs, sampled tracing, the
slow-query log, the ``/metrics`` endpoint) needs four small pieces that
belong to neither the protocol nor the metrics registry:

* :class:`RequestContext` — one request's telemetry state: its ID, the
  sampling decision with trace/span IDs, the queue-wait/execution split,
  per-shard time attribution, and the worker-side span records collected
  while it executed.
* A **thread-local context slot** (:func:`set_context` /
  :func:`current_context`).  Statements execute on reader-pool threads
  via ``loop.run_in_executor``, which does *not* propagate contextvars —
  so the server sets the thread-local inside the pooled callable, and the
  shard backends (:mod:`repro.serve.sharded`, :mod:`repro.serve.procpool`)
  read it to attribute time and, when sampled, attach trace context to
  their shard calls.  Unset, the lookup is one ``getattr`` returning
  ``None`` — the telemetry-off hot path stays branch-cheap.
* :class:`Sampler` — the probabilistic head sampler behind
  ``--trace-sample-rate`` (a per-request ``"trace": true`` field
  overrides it).
* :class:`SlowQueryLog` — the bounded ring behind ``--slow-ms`` and the
  ``slowlog`` op.
* :class:`MetricsHTTPServer` — the stdlib HTTP thread serving Prometheus
  text exposition on ``--metrics-port``.

Trace IDs are 128-bit and span IDs 64-bit, hex-encoded — the W3C
trace-context sizes, so traces correlate with external tooling if the
deployment forwards them.
"""

from __future__ import annotations

import os
import random
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional


def new_trace_id() -> str:
    """A fresh 128-bit trace ID, lowercase hex."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit span ID, lowercase hex."""
    return os.urandom(8).hex()


class RequestContext:
    """Telemetry state carried through one protocol request.

    Created per request by the server, installed in the executing
    thread's context slot for the duration of the statement, and read
    back when the response is built.  Mutations happen from the one
    thread executing the request's statement, so plain containers
    suffice.
    """

    __slots__ = ("request_id", "op", "sampled", "detail", "trace_id",
                 "span_id", "queue_s", "exec_s", "records",
                 "shard_seconds", "tql", "explain_args",
                 "mvcc_retries", "mvcc_fallbacks")

    def __init__(self, request_id: str, op: str) -> None:
        self.request_id = request_id
        self.op = op
        self.sampled = False
        #: Deep tracing (per-page worker spans) — set by the explicit
        #: per-request ``"trace": true`` override, never by the sampler.
        self.detail = False
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.queue_s = 0.0
        self.exec_s = 0.0
        #: Child span records (JSONL shape) from shard calls / workers.
        self.records: List[Dict[str, Any]] = []
        #: Execution seconds attributed to each shard touched.
        self.shard_seconds: Dict[int, float] = {}
        self.tql: Optional[str] = None
        #: ``(statement, as_of)`` when the statement was a plain SELECT
        #: aggregate — lets the slow-query log re-run it under EXPLAIN
        #: after the fact (resolution deferred off the hot path).
        self.explain_args: Optional[tuple] = None
        #: Optimistic-read conflicts this request absorbed (MVCC path).
        self.mvcc_retries = 0
        #: Reads that exhausted retries and took the read lock.
        self.mvcc_fallbacks = 0

    def begin_sampling(self, detail: bool = False) -> None:
        """Mark the request sampled and mint its trace/span IDs.

        ``detail=True`` (the per-request override) additionally asks the
        shard backends for deep page-level span trees; probabilistic
        samples stay light so sampling never taxes the steady state.
        """
        self.sampled = True
        self.detail = detail
        self.trace_id = new_trace_id()
        self.span_id = new_span_id()

    def add_record(self, record: Dict[str, Any]) -> None:
        """Attach one child span record (worker- or shard-side)."""
        self.records.append(record)

    def note_shard(self, index: int, seconds: float) -> None:
        """Attribute ``seconds`` of execution time to shard ``index``."""
        self.shard_seconds[index] = \
            self.shard_seconds.get(index, 0.0) + seconds

    def trace_context(self) -> Dict[str, Any]:
        """The propagation fields a shard call forwards to its worker."""
        return {"trace_id": self.trace_id, "parent_span_id": self.span_id,
                "detail": self.detail}


_local = threading.local()


def set_context(ctx: Optional[RequestContext]) -> None:
    """Install ``ctx`` as the executing thread's request context."""
    _local.ctx = ctx


def current_context() -> Optional[RequestContext]:
    """The executing thread's request context, or ``None``."""
    return getattr(_local, "ctx", None)


def clear_context() -> None:
    """Drop the executing thread's request context."""
    _local.ctx = None


class Sampler:
    """Head-based probabilistic sampling at a fixed rate in [0, 1].

    One shared PRNG behind a lock: the decision happens on the event
    loop, so contention is nil and determinism under a seeded ``rng``
    (tests) is preserved.
    """

    def __init__(self, rate: float,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self._rng = rng or random.Random()
        self._lock = threading.Lock()

    def sample(self) -> bool:
        """One sampling decision."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        with self._lock:
            return self._rng.random() < self.rate


class SlowQueryLog:
    """A bounded ring of slow-request entries (newest kept, oldest
    evicted), thread-safe.

    Entries are plain JSON-safe dicts assembled by the server: request
    ID, op, (truncated) TQL, latency and its queue/exec split, per-shard
    seconds, trace ID when sampled, and — filled in asynchronously — the
    EXPLAIN span tree with its cache outcome.
    """

    def __init__(self, capacity: int = 128) -> None:
        self._entries: deque = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self.total = 0

    def add(self, entry: Dict[str, Any]) -> None:
        """Record one slow request (evicting the oldest at capacity)."""
        with self._lock:
            self._entries.append(entry)
            self.total += 1

    def entries(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Slowest-recent entries, newest first."""
        with self._lock:
            rows = list(self._entries)
        rows.reverse()
        if limit is not None:
            rows = rows[:max(0, limit)]
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics -> the registry in Prometheus text exposition."""

    render: Callable[[], str]  # set by MetricsHTTPServer per subclass

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path not in ("/metrics", "/metrics/"):
            self.send_error(404, "only /metrics is served")
            return
        try:
            body = type(self).render().encode("utf-8")
        except Exception as exc:  # noqa: BLE001 — scrape must not kill serving
            self.send_error(500, f"metrics render failed: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; never spam the server's stdout


class MetricsHTTPServer:
    """The ``/metrics`` exposition endpoint, on its own daemon thread.

    ``render`` is called per scrape (from the HTTP thread) and must be
    thread-safe; the registry's exporters and the server's gauge
    publishers are.  Port 0 binds an ephemeral port, resolved in
    :attr:`port`.
    """

    def __init__(self, host: str, port: int,
                 render: Callable[[], str]) -> None:
        handler = type("BoundMetricsHandler", (_MetricsHandler,),
                       {"render": staticmethod(render)})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http",
            daemon=True)

    def start(self) -> None:
        """Begin serving scrapes."""
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(5.0)


def shard_record(name: str, shard: int, cpu_s: float,
                 ctx: RequestContext, **attrs: Any) -> Dict[str, Any]:
    """A schema-valid child record for one shard call (thread backend).

    The thread backend cannot attach a tracer to a *shared* warehouse
    (the span stack would race across reader threads), so sampled
    requests get these lightweight per-shard-call records instead: the
    trace lineage and timing without page-level children.
    """
    return {
        "name": name,
        "attrs": dict(attrs, shard=shard, trace_id=ctx.trace_id,
                      parent_span_id=ctx.span_id, span_id=new_span_id()),
        "reads": 0, "writes": 0, "logical_reads": 0,
        "cpu_s": cpu_s,
    }


_SLOW_TQL_LIMIT = 200


def clip_tql(tql: Optional[str]) -> Optional[str]:
    """Truncate statement text for slowlog / trace attributes."""
    if tql is None or len(tql) <= _SLOW_TQL_LIMIT:
        return tql
    return tql[:_SLOW_TQL_LIMIT] + "..."
