"""WAL-shipped read replicas: apply the primary's log, serve pinned reads.

Each cluster shard group owns one primary worker plus N replica workers.
Replication is *log shipping through the shared filesystem*: the primary
already writes every acknowledged update to its per-shard WAL before
acking (PR 3's durability contract), so a replica needs no new channel —
it tails the primary's log file with a
:class:`~repro.storage.wal.WALCursor` and applies each record to its own
in-memory copy of the warehouse.  The transport being the durable log
itself is what makes failover sound: anything a client was ever told is
durable is, by construction, visible to a replica that finishes draining
the file — even after the primary is SIGKILLed.

Why replica reads are exact
---------------------------
The MVSBT/MVBT are partially persistent: a version-pinned read at or
below a warehouse's clock touches only closed, immutable versions (the
core property of the source paper).  A replica that has applied the log
through sequence ``s`` is therefore *byte-identical* to the primary as
observed by any query pinned at or below the clock reached at ``s`` —
replay determinism is the same argument PR 3 used for crash recovery.
Read-your-writes is preserved by the router: every group read carries the
group's acked-write watermark (``min_seq``), and the replica blocks until
its applied sequence reaches it (or fails fast with ``REPLICA_LAG`` so
the router falls back to the primary).

Surviving checkpoint truncation
-------------------------------
The primary periodically checkpoints and truncates its WAL.  A caught-up
replica just sees the file shrink and keeps tailing.  A *lagging* replica
may lose records it never saw — the cursor detects the sequence gap (or
the stall is detected against the checkpoint's covered sequence) and the
applier **rebases**: it reloads the primary's current checkpoint (which
covers every truncated record) and resumes tailing from there.

Promotion
---------
When the primary dies and cannot be respawned, a replica is promoted:
it drains the log to the end, attaches the primary's WAL/checkpoint
directory as *writer* (continuing the unbroken sequence numbering), and
from then on serves the full warehouse method surface including writes.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import (
    QueryError,
    ReplicaLagError,
    ReproError,
    WALTruncatedError,
    error_payload,
)
from repro.serve.procpool import (
    _EXPLAIN_TRACE,
    _READ_METHODS,
    _REGISTRY,
    _SHUTDOWN,
    _STATS,
    _recv_request,
    _respond,
    _serve_explain_trace,
    _serve_one,
    _serve_registry,
)
from repro.storage.wal import WALCursor
from repro.workloads.generator import UpdateEvent

#: Replica-only control verbs (alongside the procpool ones).
_REPLICA_READ = "__replica_read__"
_SYNC = "__sync__"
_PROMOTE = "__promote__"

#: Read methods a replica serves; everything else is routed primary-only
#: by the cluster router (cache snapshots, invariant audits, ...).
REPLICA_READS = frozenset({
    "aggregate", "aggregate_all", "aggregate_batch",
    "sum", "count", "avg", "min", "max",
    "snapshot", "tuples_in", "history", "explain",
})


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything a replica worker needs to shadow one primary.

    The warehouse-shape fields mirror
    :class:`~repro.serve.procpool.ShardSpec` so a promoted replica builds
    the same structures the primary would; ``primary_dir`` is the durable
    directory whose checkpoint + WAL it ships from.
    """

    gid: int
    replica_id: int
    primary_dir: str
    key_space: Tuple[int, int]
    page_capacity: int = 32
    buffer_pages: int = 64
    strong_factor: float = 0.9
    start_time: int = 1
    buffer_policy: str = "lru"
    fsync: bool = False
    poll_interval: float = 0.02
    sync_timeout: float = 10.0

    @property
    def index(self) -> int:
        """Alias so :class:`~repro.serve.procpool.ShardClient` can label
        errors/process names uniformly for primaries and replicas."""
        return self.gid


class ReplicaApplier:
    """Checkpoint-load + WAL-tail state machine for one replica.

    Owns the replica's warehouse copy and the shipping cursor.  Not
    thread-safe — it lives inside the single-threaded replica worker.
    """

    def __init__(self, spec: ReplicaSpec) -> None:
        self.spec = spec
        self.primary_dir = spec.primary_dir
        self.warehouse = None
        #: Highest primary WAL sequence applied to :attr:`warehouse`.
        self.applied_seq = 0
        self._cursor: Optional[WALCursor] = None
        self._rebase()

    # -- checkpoint rebase -------------------------------------------------------------

    def _fresh_warehouse(self):
        from repro.core.warehouse import TemporalWarehouse

        spec = self.spec
        return TemporalWarehouse(
            key_space=spec.key_space, page_capacity=spec.page_capacity,
            buffer_pages=spec.buffer_pages,
            strong_factor=spec.strong_factor,
            start_time=spec.start_time, buffer_policy=spec.buffer_policy)

    def _rebase(self) -> None:
        """(Re)load the primary's current checkpoint and aim the cursor
        at its covered sequence.

        Retries a few times because checkpoint garbage collection on the
        primary can race the load: ``CURRENT`` may repoint (and the old
        directory vanish) between resolving and reading it — the retry
        simply picks up the newer checkpoint.
        """
        from repro.core.warehouse import TemporalWarehouse

        last_exc: Optional[BaseException] = None
        for _ in range(5):
            ckpt_dir, covered = TemporalWarehouse.current_checkpoint(
                self.primary_dir)
            try:
                if ckpt_dir is None:
                    warehouse = self._fresh_warehouse()
                else:
                    warehouse = TemporalWarehouse.load(
                        ckpt_dir, self.spec.buffer_pages)
            except (ReproError, OSError, ValueError) as exc:
                last_exc = exc
                time.sleep(0.01)
                continue
            self.warehouse = warehouse
            self.applied_seq = covered
            if self._cursor is None:
                self._cursor = WALCursor(self.primary_dir,
                                         after_seq=covered)
            else:
                self._cursor.rebase(covered)
            return
        raise WALTruncatedError(
            f"replica rebase failed against {self.primary_dir}: "
            f"{last_exc}")

    # -- log application ---------------------------------------------------------------

    def _apply(self, event: UpdateEvent) -> None:
        # The replica warehouse has no WAL attached, so nothing is
        # re-logged; write_epoch bumps keep its read caches honest.
        if event.op == "insert":
            self.warehouse.insert(event.key, event.value, event.time)
        else:
            self.warehouse.delete(event.key, event.time)

    def catch_up(self, min_seq: Optional[int] = None,
                 timeout: float = 5.0,
                 poll_interval: float = 0.01) -> int:
        """Apply newly shipped records; optionally wait for ``min_seq``.

        With ``min_seq=None`` this drains whatever is in the file and
        returns.  With a target, it polls until the applied sequence
        reaches it, rebasing from the primary's checkpoint if the needed
        records were truncated away, and raises
        :exc:`~repro.errors.ReplicaLagError` on timeout.
        Returns the applied sequence.
        """
        from repro.core.warehouse import TemporalWarehouse

        deadline = time.monotonic() + timeout
        while True:
            try:
                records = self._cursor.poll()
            except WALTruncatedError:
                self._rebase()
                continue
            for seq, event in records:
                self._apply(event)
                self.applied_seq = seq
            if records:
                continue  # drain until the file is quiet
            if min_seq is None or self.applied_seq >= min_seq:
                return self.applied_seq
            # Stalled short of the target: the records may have been
            # checkpointed + truncated away before this cursor saw them.
            _, covered = TemporalWarehouse.current_checkpoint(
                self.primary_dir)
            if covered > self.applied_seq:
                self._rebase()
                continue
            if time.monotonic() >= deadline:
                raise ReplicaLagError(
                    f"replica of group {self.spec.gid} is at seq "
                    f"{self.applied_seq}, needs {min_seq} "
                    f"(waited {timeout:.1f}s)")
            time.sleep(poll_interval)

    # -- promotion ---------------------------------------------------------------------

    def promote(self) -> int:
        """Drain the log to its end and take over as the durable writer.

        Complete lines in the log are a superset of everything ever
        acknowledged (the primary acked only after the buffered line
        write returned), so draining to EOF loses nothing a client was
        promised.  A torn final line was never acknowledged; attaching
        the WAL trims it before the first promoted append.
        """
        self.catch_up(min_seq=None, timeout=5.0)
        self.warehouse.attach_wal(self.primary_dir,
                                  fsync=self.spec.fsync,
                                  last_seq=self.applied_seq)
        return self.applied_seq


def _replica_main(conn, spec: ReplicaSpec) -> None:
    """Replica worker entry point (importable, for the spawn context).

    Same hello/request framing as
    :func:`~repro.serve.procpool._worker_main`.  Between requests the
    worker opportunistically drains the shipped log, so replicas track
    the primary even when nobody reads from them.  Verbs:

    * ``__replica_read__ (method, args, min_seq)`` — catch up to at
      least ``min_seq`` (read-your-writes fencing), then serve the read;
    * ``__sync__ (min_seq, timeout)`` — catch up and report the applied
      sequence (tests and the planner's lag gauge);
    * ``__promote__`` — drain to EOF, attach the WAL as writer; from
      then on the worker serves the full method surface like a primary.
    """
    try:
        applier = ReplicaApplier(spec)
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        try:
            conn.send(("fail", error_payload(exc)))
        finally:
            conn.close()
        return
    conn.send(("hello", os.getpid(), applier.warehouse.now))
    stats = {
        "requests": 0, "reads": 0, "writes": 0, "errors": 0,
        "shared_batches": 0, "batched_reads": 0, "load_bytes": 0,
    }
    promoted = False
    running = True
    while running:
        try:
            has_request = conn.poll(spec.poll_interval)
        except (EOFError, OSError):
            break
        if not has_request:
            if not promoted:
                try:
                    applier.catch_up(timeout=0.0)
                except ReproError:
                    pass  # mid-checkpoint flutter; next idle pass retries
            continue
        try:
            rid, method, args = _recv_request(conn)
        except (EOFError, OSError):
            break
        stats["requests"] += 1
        warehouse = applier.warehouse
        if method == _SHUTDOWN:
            warehouse.close()
            _respond(conn, rid, True, "closed", warehouse.now)
            running = False
        elif method == _STATS:
            payload = dict(stats, pid=os.getpid(), now=warehouse.now,
                           shard=spec.gid, replica=spec.replica_id,
                           applied_seq=applier.applied_seq,
                           promoted=promoted,
                           wal_seq=warehouse.wal_seq())
            _respond(conn, rid, True, payload, warehouse.now)
        elif method == _SYNC:
            min_seq, timeout = (tuple(args) + (None, None))[:2]
            try:
                seq = applier.catch_up(
                    min_seq=min_seq,
                    timeout=spec.sync_timeout if timeout is None
                    else timeout)
            except ReproError as exc:
                stats["errors"] += 1
                _respond(conn, rid, False, error_payload(exc),
                         applier.warehouse.now)
                continue
            _respond(conn, rid, True, seq, applier.warehouse.now)
        elif method == _PROMOTE:
            try:
                seq = applier.promote()
            except BaseException as exc:  # noqa: BLE001 — to the parent
                stats["errors"] += 1
                _respond(conn, rid, False, error_payload(exc),
                         applier.warehouse.now)
                continue
            promoted = True
            _respond(conn, rid, True,
                     {"applied_seq": seq, "pid": os.getpid()},
                     applier.warehouse.now)
        elif promoted:
            # Full primary surface after promotion.
            if method == _EXPLAIN_TRACE:
                _serve_explain_trace(conn, warehouse, rid, args, stats)
            elif method == _REGISTRY:
                _serve_registry(conn, warehouse, rid, stats)
            else:
                read = method in _READ_METHODS
                stats["reads" if read else "writes"] += 1
                if method == "load_events_packed" and args:
                    stats["load_bytes"] += len(args[0])
                _serve_one(conn, warehouse, rid, method, args, stats)
        elif method == _REPLICA_READ:
            inner_method, inner_args, min_seq = args
            try:
                applier.catch_up(min_seq=min_seq,
                                 timeout=spec.sync_timeout)
            except ReproError as exc:
                stats["errors"] += 1
                _respond(conn, rid, False, error_payload(exc),
                         applier.warehouse.now)
                continue
            if inner_method not in REPLICA_READS:
                stats["errors"] += 1
                _respond(conn, rid, False, error_payload(QueryError(
                    f"replica does not serve {inner_method!r}")),
                    applier.warehouse.now)
                continue
            stats["reads"] += 1
            _serve_one(conn, applier.warehouse, rid, inner_method,
                       inner_args, stats)
        elif method in REPLICA_READS:
            # Unfenced read (tests, ad-hoc inspection): serve whatever
            # version the replica has applied so far.
            stats["reads"] += 1
            _serve_one(conn, warehouse, rid, method, args, stats)
        else:
            stats["errors"] += 1
            _respond(conn, rid, False, error_payload(QueryError(
                f"replica of group {spec.gid} is read-only; "
                f"{method!r} must go to the primary")), warehouse.now)
    conn.close()
